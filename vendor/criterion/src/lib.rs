//! Offline stand-in for `criterion`: the `benchmark_group` /
//! `bench_function` / `Bencher::iter` API over a simple wall-clock
//! harness.
//!
//! No statistics engine — each benchmark is warmed up once, then timed
//! over enough iterations to fill a small measurement budget, and the
//! mean per-iteration time is printed in criterion's familiar
//! `group/function: time` shape. Honors `--bench`-style substring filter
//! arguments so `cargo bench -p <crate> -- <filter>` narrows the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle passed to every group function.
pub struct Criterion {
    filters: Vec<String>,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Everything after a `--` separator (already stripped by cargo)
        // that is not a flag acts as a name filter, like criterion.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 0,
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count hint (kept for API compatibility; the
    /// harness sizes runs by wall-clock budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let full = format!("{}/{}", self.name, name);
        let filters = &self.criterion.filters;
        if !filters.is_empty() && !filters.iter().any(|p| full.contains(p.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            budget: self.criterion.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        } else {
            0.0
        };
        println!(
            "{full}: {} ({} iterations)",
            format_ns(mean_ns),
            bencher.iters
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`, running it repeatedly until the measurement budget
    /// is spent (at least once).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration run.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed();
        let mut iters: u64 = 1;
        let mut elapsed = first;
        while elapsed < self.budget && iters < 1_000_000 {
            // Grow in batches so cheap closures aren't dominated by clock
            // reads; a batch never overshoots the budget by more than ~2x.
            let remaining = self.budget.saturating_sub(elapsed);
            let per_iter = elapsed.as_nanos().max(1) / iters as u128;
            let batch =
                (remaining.as_nanos() / per_iter.max(1)).clamp(1, iters.max(1) as u128 * 2) as u64;
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function from a list of benchmark
/// functions, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut c = Criterion {
            filters: Vec::new(),
            measurement: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn format_picks_units() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1.2e4), "12.000 us");
        assert_eq!(format_ns(1.2e7), "12.000 ms");
        assert_eq!(format_ns(1.2e10), "12.000 s");
    }
}
