//! Offline stand-in for `rand`: the seeding and sampling API subset this
//! workspace uses, over a deterministic xoshiro256++ generator.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors its own generator. Determinism is the only property the
//! simulation relies on (every seed is fixed by the experiment), and
//! xoshiro256++ passes the statistical tests that matter at this scale.
//! Streams differ from the real `rand` crate's `StdRng` — acceptable,
//! since no test asserts specific draws, only seed-reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// splitmix64 so similar seeds yield unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling from a generator.
pub trait RngExt {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { lo, hi_inclusive } = range.into();
        T::sample_inclusive(self, lo, hi_inclusive)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

/// A normalised inclusive range, the common currency of
/// [`RngExt::random_range`].
pub struct UniformRange<T> {
    lo: T,
    hi_inclusive: T,
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u128) - (lo as u128) + 1;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 128-bit intermediate is far below observability here.
                let r = ((rng.next_u64() as u128) * span) >> 64;
                lo + r as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad f64 range"
        );
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl<T: Copy> From<Range<T>> for UniformRange<T>
where
    T: HalfOpenEnd,
{
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi_inclusive: r.end.predecessor(),
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Converts a half-open range end into its inclusive predecessor.
pub trait HalfOpenEnd: Copy {
    /// The largest value strictly below `self` (for floats, `self` itself:
    /// the sampling formula already excludes the end with probability 1).
    fn predecessor(self) -> Self;
}

macro_rules! impl_half_open_int {
    ($($t:ty),*) => {$(
        impl HalfOpenEnd for $t {
            fn predecessor(self) -> Self {
                self.checked_sub(1).expect("empty sample range")
            }
        }
    )*};
}

impl_half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpenEnd for f64 {
    fn predecessor(self) -> Self {
        self
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = r.random_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }
}
