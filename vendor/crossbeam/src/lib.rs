//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module's `bounded`/`unbounded` constructors and the
//! blocking `send`/`recv` operations are provided — the subset the
//! workspace's TCP transport uses. Unlike `std::sync::mpsc`, crossbeam's
//! `Sender` is one clonable type for both flavours, so the stand-in wraps
//! the two std sender types behind an enum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam::channel` API subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; the
    /// unsent message is returned to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// Returns the value if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails once every sender has been dropped and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_round_trip() {
            let (tx, rx) = bounded(1);
            tx.send("hi").unwrap();
            assert_eq!(rx.recv(), Ok("hi"));
            drop(rx);
            assert_eq!(tx.send("bye"), Err(SendError("bye")));
        }
    }
}
