//! Offline stand-in for the `bytes` crate.
//!
//! The sandboxed build environment has no network access and no crates.io
//! mirror, so the workspace vendors the tiny API subset it actually uses:
//! [`Bytes`], a cheaply-cloneable immutable byte buffer. Static slices are
//! kept by reference (no allocation); owned data is shared behind an
//! `Arc`, so cloning a payload for fan-out never copies it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::new(data.to_vec())))
    }

    /// The buffer contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::new(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(&a[..2], b"ab");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
