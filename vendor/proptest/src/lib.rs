//! Offline stand-in for `proptest`: deterministic strategy-based property
//! testing implementing the subset of the real crate this workspace uses.
//!
//! Supported: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter_map`, integer range strategies, tuples of strategies,
//! [`Just`], `prop::collection::vec`, `prop::sample::{Index, select,
//! subsequence}`, `any::<T>()`, the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros, and `ProptestConfig`'s case
//! count.
//!
//! Not supported (by design): shrinking — a failing case panics with the
//! generated inputs printed, which is enough to reproduce since the
//! stream is a pure function of the test name and case index. Persisted
//! regression files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Strategy constructors, namespaced like the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::{select, subsequence, Index, Select, Subsequence};
    }
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Stable 64-bit hash of the test path, used to seed each property's
/// deterministic stream (FNV-1a).
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines deterministic property tests over strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let __strategies = ($($strat,)+);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        __seed ^ (u64::from(__case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let __value = $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __shown = format!("{:?}", &__value);
                    let ($($pat,)+) = __value;
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __config.cases, __msg, __shown,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs printed) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Uniform choice between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 3usize..12, v in prop::collection::vec(1u32..5, 2..6)) {
            prop_assert!((3..12).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
        }

        #[test]
        fn oneof_map_and_filter(
            tag in prop_oneof![Just(1u8), Just(2u8)],
            pair in (0u32..8, 0u32..8).prop_filter_map("distinct", |(a, b)| {
                (a != b).then_some((a, b))
            }),
            sized in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(any::<u8>(), n..n + 1))
            }),
        ) {
            prop_assert!(tag == 1 || tag == 2);
            prop_assert_ne!(pair.0, pair.1);
            prop_assert_eq!(sized.1.len(), sized.0);
        }

        #[test]
        fn samples(
            idx in any::<prop::sample::Index>(),
            pick in prop::sample::select(vec![10u64, 20, 30]),
            subseq in prop::sample::subsequence((0..9usize).collect::<Vec<_>>(), 2..=9),
        ) {
            prop_assert!(idx.index(7) < 7);
            prop_assert!(pick % 10 == 0);
            prop_assert!(subseq.len() >= 2);
            prop_assert!(subseq.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(9);
        let mut b = crate::TestRng::new(9);
        let s = (0u64..1000, prop::collection::vec(0u32..9, 0..6));
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
