//! The strategy engine: deterministic value generation from composable
//! strategies.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no shrinking: `generate` draws a value
/// directly, and a failing case is reported with its inputs printed.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _out: PhantomData,
        }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it; the standard way to make sizes and contents covary.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            f,
            _out: PhantomData,
        }
    }

    /// Keeps only values `f` maps to `Some`, retrying rejected draws.
    /// `whence` labels the filter in the panic raised if the rejection
    /// rate is pathological.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F, O>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence,
            f,
            _out: PhantomData,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F, O> {
    source: S,
    whence: &'static str,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for FilterMap<S, F, O>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map {:?} rejected 10000 consecutive draws",
            self.whence
        );
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between strategies of one value type; built by
/// `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// A union over the given branches; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union(branches)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (*self.start() as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// An inclusive size bound for collection strategies, converted from the
/// usual range forms.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice of one element from a non-empty list.
pub fn select<T: Clone + Debug>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select over an empty list");
    Select(choices)
}

/// See [`select`].
pub struct Select<T>(Vec<T>);

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// A random order-preserving subsequence of `values` with a length drawn
/// from `size`.
pub fn subsequence<T: Clone + Debug>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    let size = size.into();
    assert!(
        size.lo <= values.len(),
        "subsequence minimum length {} exceeds source length {}",
        size.lo,
        values.len()
    );
    Subsequence { values, size }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let hi = self.size.hi_inclusive.min(self.values.len());
        let mut want = self.size.lo + rng.below((hi - self.size.lo + 1) as u64) as usize;
        // Selection sampling: each element is kept with probability
        // want/left, which yields every k-subset with equal probability
        // while preserving source order.
        let mut out = Vec::with_capacity(want);
        let mut left = self.values.len();
        for v in &self.values {
            if want > 0 && rng.below(left as u64) < want as u64 {
                out.push(v.clone());
                want -= 1;
            }
            left -= 1;
        }
        out
    }
}

/// An abstract index, resolved against a concrete length with
/// [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// This index resolved into `[0, len)`; `len` must be positive.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index over an empty collection");
        self.0 % len
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64() as usize)
    }
}

/// The strategy generating any value of `T`; see [`Arbitrary`].
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequence_is_ordered_and_sized() {
        let src: Vec<usize> = (0..20).collect();
        let s = subsequence(src, 5..=20);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 5 && v.len() <= 20);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let u = Union::new(vec![
            Just(0u8).boxed(),
            Just(1u8).boxed(),
            Just(2u8).boxed(),
        ]);
        let mut rng = TestRng::new(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let i = Index::arbitrary(&mut rng);
            assert!(i.index(13) < 13);
        }
    }
}
