//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `lock()` / `read()` / `write()` API the
//! workspace uses. Poisoned std locks are recovered transparently
//! (`parking_lot` has no poisoning either, so this matches its
//! semantics: a panicking critical section leaves the data accessible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
