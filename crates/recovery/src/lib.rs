//! Epoch-based failure recovery for RDMC (paper §2.4, §4.2).
//!
//! RDMC itself stops at the *wedge*: a failed connection freezes the
//! group and the notice spreads epidemically until every survivor knows
//! (§3 property 6). The paper assumes an external membership service —
//! Derecho, in practice — then restarts interrupted transfers in a new
//! group. This crate is that restart logic: given each survivor's
//! wedge-time received-block bitmap, it renumbers the survivors into a
//! fresh epoch and plans, per interrupted message, a *resume schedule*
//! that retransmits exactly the missing blocks.
//!
//! Three shapes fall out of the bitmaps:
//!
//! - **Block-wise resume**: at least one copy of every block survived
//!   somewhere; holders forward only what others lack.
//! - **Sender-side re-multicast**: one member (typically the original
//!   sender, or a member that finished early) holds the whole message
//!   and nobody else holds anything — a fresh binomial pipeline over the
//!   survivors, rooted at the holder, is the optimal resume.
//! - **Unrecoverable**: the failed members took the only copy of some
//!   block with them (e.g. the original sender died before relaying
//!   block 0). The survivors must discard the message *consistently* —
//!   all-or-nothing across the group — which the planner signals so the
//!   membership layer can do so.
//!
//! Schedules come back as [`GlobalSchedule`]s over *new-epoch* ranks;
//! [`resume_transfers`] slices them into the per-member
//! [`ResumeTransfer`]s that [`GroupEngine::install_epoch`] consumes.
//!
//! [`GroupEngine::install_epoch`]: rdmc::engine::GroupEngine::install_epoch

#![forbid(unsafe_code)]

use std::collections::BTreeSet;

use rdmc::engine::ResumeTransfer;
use rdmc::schedule::{GlobalSchedule, GlobalTransfer};
use rdmc::{Algorithm, Rank};

/// How a message's resume schedule was derived (reported to stats and
/// benchmarks; the engines do not care).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResumeStrategy {
    /// Every survivor already holds every block; the schedule is empty
    /// (members may still owe the local delivery upcall).
    AlreadyComplete,
    /// Holders forward exactly the blocks others are missing.
    BlockResume,
    /// One full holder, everyone else empty, power-of-two survivor
    /// count: a fresh binomial pipeline rooted at the holder (the
    /// paper's sender-side re-multicast). Other survivor counts take
    /// [`ResumeStrategy::BlockResume`] to keep the strict per-step port
    /// budget.
    Remulticast,
}

/// The planner's verdict for one interrupted message.
#[derive(Clone, Debug)]
#[must_use = "the verdict decides whether survivors resume or discard; ignoring it loses the message"]
pub enum MessagePlan {
    /// The message can finish; run this schedule in the new epoch.
    Resume {
        /// Resume schedule over new-epoch ranks.
        schedule: GlobalSchedule,
        /// How the schedule was derived.
        strategy: ResumeStrategy,
    },
    /// Some block has no surviving copy: every survivor must discard the
    /// message (consistently — all or none).
    Unrecoverable,
}

/// Old ranks of the members surviving `failed`, ascending — the new
/// epoch's rank order (new rank = index into the returned vector). The
/// ordering is deterministic so every survivor derives the same map
/// locally.
pub fn survivor_map(num_nodes: u32, failed: &BTreeSet<Rank>) -> Vec<Rank> {
    (0..num_nodes).filter(|r| !failed.contains(r)).collect()
}

/// Plans the resumption of one interrupted message from the survivors'
/// wedge-time bitmaps. `holdings[r][b]` is true when new-epoch rank `r`
/// holds block `b`.
///
/// The returned schedule (when resumable) satisfies every invariant the
/// analyzer checks: each rank receives exactly its missing blocks,
/// exactly once; blocks are only sent by ranks that hold them at that
/// step; and no rank sends or receives more than one block per step
/// (RDMC's one-send-one-receive port budget, §4.3).
///
/// # Panics
///
/// Panics if `holdings` is empty or its bitmaps disagree in length.
pub fn plan_message_resume(holdings: &[Vec<bool>]) -> MessagePlan {
    let n = holdings.len();
    assert!(n >= 1, "need at least one survivor");
    let k = holdings[0].len();
    assert!(
        holdings.iter().all(|h| h.len() == k),
        "bitmap lengths disagree"
    );
    // Coverage: every block must survive somewhere.
    for b in 0..k {
        if !holdings.iter().any(|h| h[b]) {
            return MessagePlan::Unrecoverable;
        }
    }
    if holdings.iter().all(|h| h.iter().all(|&x| x)) {
        return MessagePlan::Resume {
            schedule: GlobalSchedule::from_custom_steps("resume", n as u32, k as u32, Vec::new()),
            strategy: ResumeStrategy::AlreadyComplete,
        };
    }
    // Sender-side re-multicast: one full holder, all others empty. Only
    // taken at power-of-two survivor counts, where the binomial pipeline
    // keeps the strict one-send-one-receive budget; elsewhere the
    // shadow-vertex relabeling would double mid-recovery port budgets,
    // so the greedy builder (always strict) covers it instead.
    let full: Vec<usize> = (0..n).filter(|&r| holdings[r].iter().all(|&x| x)).collect();
    let empty_elsewhere = (0..n)
        .filter(|r| !full.contains(r))
        .all(|r| holdings[r].iter().all(|&x| !x));
    if full.len() == 1 && empty_elsewhere && n > 1 && n.is_power_of_two() {
        return MessagePlan::Resume {
            schedule: remulticast_schedule(n as u32, k as u32, full[0] as Rank),
            strategy: ResumeStrategy::Remulticast,
        };
    }
    MessagePlan::Resume {
        schedule: block_resume_schedule(holdings),
        strategy: ResumeStrategy::BlockResume,
    }
}

/// A fresh binomial pipeline over `n` survivors, relabeled so `root`
/// (new-epoch rank of the full holder) plays the pipeline's rank 0.
fn remulticast_schedule(n: u32, k: u32, root: Rank) -> GlobalSchedule {
    let base = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
    // Virtual rank 0 -> root; the others keep their relative order.
    let mut vmap: Vec<Rank> = Vec::with_capacity(n as usize);
    vmap.push(root);
    vmap.extend((0..n).filter(|&r| r != root));
    let steps = (0..base.num_steps())
        .map(|j| {
            base.step(j)
                .iter()
                .map(|t| GlobalTransfer {
                    from: vmap[t.from as usize],
                    to: vmap[t.to as usize],
                    block: t.block,
                })
                .collect()
        })
        .collect();
    GlobalSchedule::from_custom_steps("re-multicast", n, k, steps)
}

/// Greedy step builder for the general case: per step, match needers to
/// holders under the one-send-one-receive budget; blocks received in a
/// step become forwardable in the next, exactly like the engine's
/// schedule-order relay discipline.
fn block_resume_schedule(holdings: &[Vec<bool>]) -> GlobalSchedule {
    let n = holdings.len();
    let k = holdings[0].len();
    let mut have: Vec<Vec<bool>> = holdings.to_vec();
    let mut send_load = vec![0u32; n];
    let mut steps: Vec<Vec<GlobalTransfer>> = Vec::new();
    loop {
        let done = (0..n).all(|r| have[r].iter().all(|&x| x));
        if done {
            break;
        }
        // Blocks usable this step are those held at its start.
        let snapshot = have.clone();
        let mut busy_send = vec![false; n];
        let mut step: Vec<GlobalTransfer> = Vec::new();
        // `needer` names a rank (schedule addressing), not just a row
        // index, so a range loop reads better than enumerate here.
        #[allow(clippy::needless_range_loop)]
        for needer in 0..n {
            // One receive per rank per step: pick this rank's lowest
            // missing block that an idle holder can source, preferring
            // the least-loaded holder so fan-in spreads.
            let mut choice: Option<(usize, usize)> = None;
            for b in 0..k {
                if have[needer][b] {
                    continue;
                }
                let sender = (0..n)
                    .filter(|&s| s != needer && snapshot[s][b] && !busy_send[s])
                    .min_by_key(|&s| (send_load[s], s));
                if let Some(s) = sender {
                    choice = Some((s, b));
                    break;
                }
            }
            if let Some((s, b)) = choice {
                busy_send[s] = true;
                send_load[s] += 1;
                have[needer][b] = true;
                step.push(GlobalTransfer {
                    from: s as Rank,
                    to: needer as Rank,
                    block: b as u32,
                });
            }
        }
        // Coverage was checked up front, so some needer always finds an
        // idle holder: every step makes progress and the loop terminates
        // within n*k transfers.
        assert!(!step.is_empty(), "planner stalled despite block coverage");
        steps.push(step);
    }
    GlobalSchedule::from_custom_steps("resume", n as u32, k as u32, steps)
}

/// Slices a resume plan into the per-member [`ResumeTransfer`]s that
/// `install_epoch` consumes. `delivered[r]` marks members that already
/// delivered the message pre-wedge (they re-seed peers but must not
/// deliver twice).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the schedule's group size.
pub fn resume_transfers(
    schedule: &GlobalSchedule,
    total_size: u64,
    holdings: &[Vec<bool>],
    delivered: &[bool],
) -> Vec<ResumeTransfer> {
    let n = schedule.num_nodes() as usize;
    assert_eq!(holdings.len(), n, "one bitmap per survivor");
    assert_eq!(delivered.len(), n, "one delivered flag per survivor");
    (0..n)
        .map(|r| ResumeTransfer {
            total_size,
            sched: schedule.for_rank(r as Rank),
            have: holdings[r].clone(),
            already_delivered: delivered[r],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Replays a resume schedule against the initial holdings and checks
    /// every invariant the analyzer enforces.
    fn check_plan(schedule: &GlobalSchedule, holdings: &[Vec<bool>]) {
        let n = holdings.len();
        let k = holdings[0].len();
        let mut have: Vec<Vec<bool>> = holdings.to_vec();
        for j in 0..schedule.num_steps() {
            let mut sends = vec![0u32; n];
            let mut recvs = vec![0u32; n];
            let snapshot = have.clone();
            for t in schedule.step(j) {
                assert!((t.from as usize) < n && (t.to as usize) < n && (t.block as usize) < k);
                assert_ne!(t.from, t.to, "self-send");
                sends[t.from as usize] += 1;
                recvs[t.to as usize] += 1;
                assert!(
                    snapshot[t.from as usize][t.block as usize],
                    "step {j}: rank {} sends block {} it does not hold",
                    t.from, t.block
                );
                assert!(
                    !have[t.to as usize][t.block as usize],
                    "step {j}: rank {} re-receives block {}",
                    t.to, t.block
                );
                have[t.to as usize][t.block as usize] = true;
            }
            for r in 0..n {
                assert!(sends[r] <= 1, "rank {r} sends twice in step {j}");
                assert!(recvs[r] <= 1, "rank {r} receives twice in step {j}");
            }
        }
        for (r, h) in have.iter().enumerate() {
            for (b, &x) in h.iter().enumerate() {
                assert!(x, "rank {r} never receives block {b}");
            }
        }
    }

    #[test]
    fn survivor_map_renumbers_in_order() {
        let failed: BTreeSet<Rank> = [1, 3].into_iter().collect();
        assert_eq!(survivor_map(5, &failed), vec![0, 2, 4]);
        assert_eq!(survivor_map(3, &BTreeSet::new()), vec![0, 1, 2]);
    }

    #[test]
    fn lost_block_is_unrecoverable() {
        // Nobody holds block 1: the failed sender took the only copy.
        let holdings = vec![vec![true, false], vec![true, false]];
        assert!(matches!(
            plan_message_resume(&holdings),
            MessagePlan::Unrecoverable
        ));
    }

    #[test]
    fn complete_holdings_need_no_transfers() {
        let holdings = vec![vec![true, true], vec![true, true]];
        match plan_message_resume(&holdings) {
            MessagePlan::Resume { schedule, strategy } => {
                assert_eq!(strategy, ResumeStrategy::AlreadyComplete);
                assert_eq!(schedule.num_transfers(), 0);
            }
            MessagePlan::Unrecoverable => panic!("fully held message is resumable"),
        }
    }

    #[test]
    fn lone_full_holder_triggers_remulticast() {
        // New rank 2 finished early; everyone else lost the race to the
        // wedge with nothing. Expect a binomial pipeline rooted at 2.
        let k = 4;
        let mut holdings = vec![vec![false; k]; 4];
        holdings[2] = vec![true; k];
        match plan_message_resume(&holdings) {
            MessagePlan::Resume { schedule, strategy } => {
                assert_eq!(strategy, ResumeStrategy::Remulticast);
                check_plan(&schedule, &holdings);
                // The holder only sends; it never receives.
                assert!(schedule.transfers().all(|(_, t)| t.to != 2));
            }
            MessagePlan::Unrecoverable => panic!("full holder exists"),
        }
    }

    #[test]
    fn lone_holder_at_odd_survivor_count_stays_strict() {
        // Three survivors: the pipeline's shadow-vertex relabeling would
        // double port budgets, so the planner falls back to the greedy
        // builder — still a full re-spread, still one-send-one-receive.
        let k = 3;
        let mut holdings = vec![vec![false; k]; 3];
        holdings[1] = vec![true; k];
        match plan_message_resume(&holdings) {
            MessagePlan::Resume { schedule, strategy } => {
                assert_eq!(strategy, ResumeStrategy::BlockResume);
                check_plan(&schedule, &holdings);
            }
            MessagePlan::Unrecoverable => panic!("full holder exists"),
        }
    }

    #[test]
    fn partial_holdings_resume_blockwise_with_exact_coverage() {
        let holdings = vec![
            vec![true, true, false, false],
            vec![false, false, true, true],
            vec![true, false, false, true],
        ];
        match plan_message_resume(&holdings) {
            MessagePlan::Resume { schedule, strategy } => {
                assert_eq!(strategy, ResumeStrategy::BlockResume);
                check_plan(&schedule, &holdings);
                // Exactly the missing blocks move: per-rank receive count
                // equals the number of holes in its bitmap.
                for (r, h) in holdings.iter().enumerate() {
                    let holes = h.iter().filter(|&&x| !x).count();
                    let recvs = schedule
                        .transfers()
                        .filter(|(_, t)| t.to as usize == r)
                        .count();
                    assert_eq!(recvs, holes, "rank {r}");
                }
            }
            MessagePlan::Unrecoverable => panic!("coverage holds"),
        }
    }

    #[test]
    fn singleton_survivor_is_trivially_complete_or_dead() {
        match plan_message_resume(&[vec![true, true]]) {
            MessagePlan::Resume { schedule, strategy } => {
                assert_eq!(strategy, ResumeStrategy::AlreadyComplete);
                assert_eq!(schedule.num_transfers(), 0);
            }
            MessagePlan::Unrecoverable => panic!("sole survivor holds all"),
        }
        assert!(matches!(
            plan_message_resume(&[vec![true, false]]),
            MessagePlan::Unrecoverable
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any covered holdings produce a valid resume schedule: exact
        /// missing-block coverage, causality, and port budgets.
        #[test]
        fn random_covered_holdings_always_resume(
            n in 1usize..=6,
            k in 1usize..=6,
            bits in prop::collection::vec(any::<bool>(), 36),
            fixup in prop::collection::vec(any::<prop::sample::Index>(), 6),
        ) {
            let mut holdings: Vec<Vec<bool>> = (0..n)
                .map(|r| (0..k).map(|b| bits[r * 6 + b]).collect())
                .collect();
            // Force coverage: give blocks nobody holds to some rank.
            for b in 0..k {
                if !holdings.iter().any(|h| h[b]) {
                    let r = fixup[b].index(n);
                    holdings[r][b] = true;
                }
            }
            match plan_message_resume(&holdings) {
                MessagePlan::Resume { schedule, .. } => check_plan(&schedule, &holdings),
                MessagePlan::Unrecoverable => prop_assert!(false, "coverage was forced"),
            }
        }
    }
}
