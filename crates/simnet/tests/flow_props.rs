//! Property-based tests of the max-min fair flow model: the invariants
//! every bandwidth allocation must satisfy, under random topologies,
//! flow sets, and event interleavings.

use proptest::prelude::*;
use simnet::{FlowNet, SimDuration, SimTime, Topology};

/// A random flat topology and a set of random flows on it.
fn arb_case() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (3usize..12).prop_flat_map(|n| {
        let flows = prop::collection::vec(
            (0..n, 0..n, 1u32..2_000_000).prop_filter_map("distinct endpoints", |(a, b, kb)| {
                (a != b).then_some((a, b, kb))
            }),
            1..24,
        );
        (Just(n), flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rates are positive and no link's capacity is exceeded.
    #[test]
    fn rates_respect_link_capacities((n, flows) in arb_case()) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
        let ids: Vec<_> = flows
            .iter()
            .map(|&(a, b, bytes)| net.start_flow(SimTime::ZERO, topo.path(a, b), bytes as f64))
            .collect();
        // Per-link rate sums.
        let mut tx = vec![0.0f64; n];
        let mut rx = vec![0.0f64; n];
        for (&id, &(a, b, _)) in ids.iter().zip(&flows) {
            let r = net.flow_rate_bps(id).expect("active flow has a rate");
            prop_assert!(r > 0.0, "zero rate");
            tx[a] += r;
            rx[b] += r;
        }
        for i in 0..n {
            prop_assert!(tx[i] <= 10e9 * (1.0 + 1e-9), "tx[{i}] over capacity: {}", tx[i]);
            prop_assert!(rx[i] <= 10e9 * (1.0 + 1e-9), "rx[{i}] over capacity: {}", rx[i]);
        }
    }

    /// Work conservation: every flow is bottlenecked somewhere — some link
    /// on its path is (near-)fully utilised.
    #[test]
    fn every_flow_has_a_saturated_link((n, flows) in arb_case()) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
        let ids: Vec<_> = flows
            .iter()
            .map(|&(a, b, bytes)| net.start_flow(SimTime::ZERO, topo.path(a, b), bytes as f64))
            .collect();
        let mut tx = vec![0.0f64; n];
        let mut rx = vec![0.0f64; n];
        for (&id, &(a, b, _)) in ids.iter().zip(&flows) {
            let r = net.flow_rate_bps(id).expect("rate");
            tx[a] += r;
            rx[b] += r;
        }
        for &(a, b, _) in &flows {
            let saturated = tx[a] >= 10e9 * (1.0 - 1e-9) || rx[b] >= 10e9 * (1.0 - 1e-9);
            prop_assert!(saturated, "flow {a}->{b} not bottlenecked: tx {} rx {}", tx[a], rx[b]);
        }
    }

    /// Max-min property: you cannot raise any flow's rate without lowering
    /// a flow of equal-or-smaller rate. Check the standard certificate:
    /// every flow crosses a saturated link on which it has the maximum
    /// rate.
    #[test]
    fn max_min_certificate((n, flows) in arb_case()) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
        let ids: Vec<_> = flows
            .iter()
            .map(|&(a, b, bytes)| net.start_flow(SimTime::ZERO, topo.path(a, b), bytes as f64))
            .collect();
        let rates: Vec<f64> = ids
            .iter()
            .map(|&id| net.flow_rate_bps(id).expect("rate"))
            .collect();
        let rate = |i: usize| rates[i];
        // For each flow: find a link (tx a / rx b) that is saturated and on
        // which this flow's rate is maximal.
        for (i, &(a, b, _)) in flows.iter().enumerate() {
            let mut certified = false;
            for side in 0..2 {
                let mut sum = 0.0;
                let mut max_other: f64 = 0.0;
                for (j, &(a2, b2, _)) in flows.iter().enumerate() {
                    let on_link = if side == 0 { a2 == a } else { b2 == b };
                    if on_link {
                        sum += rate(j);
                        if j != i {
                            max_other = max_other.max(rate(j));
                        }
                    }
                }
                if sum >= 10e9 * (1.0 - 1e-9) && rate(i) >= max_other * (1.0 - 1e-9) {
                    certified = true;
                    break;
                }
            }
            prop_assert!(certified, "flow {i} has no bottleneck certificate");
        }
    }

    /// Completing flows in event order always terminates, delivers every
    /// byte, and never moves time backwards.
    #[test]
    fn all_flows_complete_in_order((n, flows) in arb_case()) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
        let total_bytes: f64 = flows.iter().map(|&(_, _, b)| b as f64).sum();
        for &(a, b, bytes) in &flows {
            net.start_flow(SimTime::ZERO, topo.path(a, b), bytes as f64);
        }
        let mut done = 0usize;
        let mut last = SimTime::ZERO;
        while let Some((t, f)) = net.next_completion() {
            prop_assert!(t >= last, "completion time went backwards");
            last = t;
            net.complete_flow(t, f);
            done += 1;
            prop_assert!(done <= flows.len(), "more completions than flows");
        }
        prop_assert_eq!(done, flows.len());
        prop_assert_eq!(net.num_flows(), 0);
        // Conservation: rx-side links carried the payload bytes, up to the
        // nanosecond quantisation of each flow's completion instant (each
        // flow may under-count by a rate x sub-ns sliver).
        let carried: f64 = (0..n).map(|i| net.bytes_carried(topo.rx_link(i))).sum();
        let tolerance = 4.0 * flows.len() as f64 + total_bytes * 1e-9;
        prop_assert!((carried - total_bytes).abs() < tolerance,
            "bytes carried {} vs sent {}", carried, total_bytes);
    }

    /// Determinism: the same flow set yields bit-identical completion
    /// schedules.
    #[test]
    fn allocation_is_deterministic((n, flows) in arb_case()) {
        let run = || {
            let mut net = FlowNet::new();
            let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
            for &(a, b, bytes) in &flows {
                net.start_flow(SimTime::ZERO, topo.path(a, b), bytes as f64);
            }
            let mut times = Vec::new();
            while let Some((t, f)) = net.next_completion() {
                net.complete_flow(t, f);
                times.push(t.as_nanos());
            }
            times
        };
        prop_assert_eq!(run(), run());
    }
}

/// First rate disagreement between the live (incrementally maintained)
/// allocation and a from-scratch progressive filling, if any.
fn rate_mismatch(net: &mut FlowNet) -> Option<String> {
    for (id, want) in net.max_min_reference() {
        let got = net.flow_rate_bps(id).expect("oracle lists live flows");
        if (got - want).abs() > want.abs() * 1e-6 {
            return Some(format!(
                "flow {id:?}: incremental {got} vs full water-filling {want}"
            ));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential test of the ripple-set allocator: after every random
    /// arrival, completion, and abort, every live flow's rate equals the
    /// one a full from-scratch water-filling assigns. (The two code paths
    /// share no allocation state, so this catches any case where an
    /// incremental update fails to reach a flow it should have re-rated.)
    #[test]
    fn incremental_allocator_matches_full_oracle(
        (n, flows) in arb_case(),
        ops in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            4..48,
        ),
    ) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 10.0, SimDuration::from_micros(1));
        let mut pending = flows.iter();
        let mut active = Vec::new();
        let mut now = SimTime::ZERO;
        for (what, which) in ops {
            // Stagger events so flows accumulate progress between rate
            // boundaries (exercising lazy materialization).
            now += SimDuration::from_micros(10);
            match what.index(3) {
                0 => {
                    let Some(&(a, b, bytes)) = pending.next() else { continue };
                    active.push(net.start_flow(now, topo.path(a, b), bytes as f64));
                }
                1 => {
                    let Some((t, f)) = net.next_completion() else { continue };
                    now = now.max(t);
                    net.complete_flow(t, f);
                    active.retain(|&id| id != f);
                }
                _ => {
                    if active.is_empty() {
                        continue;
                    }
                    let id = active.swap_remove(which.index(active.len()));
                    net.abort_flow(now, id);
                }
            }
            let mismatch = rate_mismatch(&mut net);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        }
        // Drain whatever is left; the allocation must stay max-min at
        // every completion along the way.
        while let Some((t, f)) = net.next_completion() {
            net.complete_flow(t, f);
            let mismatch = rate_mismatch(&mut net);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        }
        prop_assert_eq!(net.num_flows(), 0);
    }
}

/// Builds one of the three topology profiles the scaled kernel must
/// stay exact on: flat, oversubscribed TOR, and the fat-tree whose
/// aggregation tier is transparent to the allocator.
fn build_profile(net: &mut FlowNet, profile: u8, pods: usize, per_pod: usize) -> Topology {
    let lat = SimDuration::from_micros(1);
    match profile {
        0 => Topology::flat(net, pods * per_pod, 10.0, lat),
        1 => Topology::oversubscribed_tor(net, pods, per_pod, 10.0, 10.0, lat),
        _ => Topology::fat_tree(net, pods, per_pod, 10.0, lat),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential test of the hierarchy-aware kernel: on every
    /// topology profile, with and without flow-set interning, random
    /// churn (arrivals, completions, aborts — duplicate paths and rate
    /// ties included) must leave every live rate equal to the textbook
    /// from-scratch water-filling, which treats transparent aggregation
    /// links as ordinary capacity-constrained links. Passing on the
    /// fat-tree therefore proves the transparent tier is
    /// allocation-neutral, not merely skipped.
    #[test]
    fn hierarchical_allocator_matches_oracle_on_all_profiles(
        profile in 0u8..3,
        interned in any::<bool>(),
        pods in 2usize..5,
        per_pod in 2usize..5,
        flows in prop::collection::vec(
            (
                any::<prop::sample::Index>(),
                any::<prop::sample::Index>(),
                // Half the draws share one size so completion ties and
                // equal-share plateaus are common.
                prop_oneof![Just(262_144u32), 1u32..2_000_000],
            ),
            1..24,
        ),
        ops in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            4..48,
        ),
    ) {
        let mut net = FlowNet::new();
        if interned {
            net.set_interning(true);
        }
        let topo = build_profile(&mut net, profile, pods, per_pod);
        let n = topo.num_nodes();
        let flows: Vec<(usize, usize, u32)> = flows
            .iter()
            .filter_map(|(a, b, bytes)| {
                let a = a.index(n);
                let b = b.index(n);
                (a != b).then_some((a, b, *bytes))
            })
            .collect();
        let mut pending = flows.iter();
        let mut active = Vec::new();
        let mut now = SimTime::ZERO;
        for (what, which) in ops {
            now += SimDuration::from_micros(10);
            match what.index(3) {
                0 => {
                    let Some(&(a, b, bytes)) = pending.next() else { continue };
                    active.push(net.start_flow(now, topo.path(a, b), bytes as f64));
                }
                1 => {
                    let Some((t, f)) = net.next_completion() else { continue };
                    now = now.max(t);
                    net.complete_flow(t, f);
                    active.retain(|&id| id != f);
                }
                _ => {
                    if active.is_empty() {
                        continue;
                    }
                    let id = active.swap_remove(which.index(active.len()));
                    net.abort_flow(now, id);
                }
            }
            let mismatch = rate_mismatch(&mut net);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        }
        while let Some((t, f)) = net.next_completion() {
            net.complete_flow(t, f);
            let mismatch = rate_mismatch(&mut net);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        }
        prop_assert_eq!(net.num_flows(), 0);
    }
}
