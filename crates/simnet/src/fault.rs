//! Link fault models: independent loss, Gilbert–Elliott burst loss, and
//! payload corruption — all deterministic under a caller-supplied seed.
//!
//! The RDMC paper (§2.2) assumes a lossless RDMA fabric, so the kernel's
//! default is exactly that: no [`FaultProfile`] attached, zero cost, zero
//! behavioural difference. SDR-RDMA argues that planetary-scale RDMA has
//! to treat loss as a software concern instead; this module supplies the
//! fabric side of that argument. A [`FaultProfile`] maps links to
//! [`LinkFault`] models and is consulted once per completed flow
//! traversal: each link on the path may independently drop the payload
//! (Bernoulli loss and/or a two-state Gilbert–Elliott burst channel) or
//! corrupt it (checksum failure at the receiver). Latency heterogeneity
//! needs no machinery here — every link already carries its own
//! propagation delay, so WAN topologies simply add slow links (see
//! [`crate::Topology::multi_datacenter`]).
//!
//! Sampling uses a single SplitMix64 stream per profile, advanced in
//! path order, so identical event sequences produce identical fault
//! sequences — chaos reruns stay bit-for-bit reproducible.

use crate::flow::LinkId;
use std::collections::BTreeMap;

/// What the fault model decided for one delivered payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The payload arrives intact.
    Deliver,
    /// The payload is lost on the wire: the receiver sees nothing.
    Drop,
    /// The payload arrives, but fails its integrity check at the
    /// receiver (the NIC surfaces bits, software must discard them).
    Corrupt,
}

/// The two-state Gilbert–Elliott burst-loss channel: a Markov chain over
/// {Good, Bad} states with a per-state loss probability. The classic
/// model for correlated (bursty) loss on WAN paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Probability of transitioning Good → Bad per traversal.
    pub p_good_to_bad: f64,
    /// Probability of transitioning Bad → Good per traversal.
    pub p_bad_to_good: f64,
    /// Loss probability while in the Good state (usually ~0).
    pub loss_good: f64,
    /// Loss probability while in the Bad state (usually high).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A mild WAN burst profile averaging roughly `mean_loss` overall:
    /// long good periods with rare bad bursts that lose half their
    /// traversals.
    #[must_use]
    pub fn bursty(mean_loss: f64) -> Self {
        // Stationary Bad probability = p_gb / (p_gb + p_bg); with
        // loss_bad = 0.5 and loss_good = 0, mean loss = 0.5 * P(Bad).
        let p_bad = (2.0 * mean_loss).min(0.9);
        let p_bad_to_good = 0.2;
        let p_good_to_bad = p_bad_to_good * p_bad / (1.0 - p_bad);
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad: 0.5,
        }
    }
}

/// Fault model for one link: independent loss, optional burst channel,
/// and corruption probability. All probabilities are per traversal of
/// the link by one payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Independent (Bernoulli) loss probability.
    pub loss: f64,
    /// Optional correlated-loss channel, sampled in addition to `loss`.
    pub burst: Option<GilbertElliott>,
    /// Probability the payload arrives corrupted (only consulted when it
    /// was not dropped).
    pub corrupt: f64,
}

impl LinkFault {
    /// Independent loss only.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        LinkFault {
            loss,
            burst: None,
            corrupt: 0.0,
        }
    }

    /// True when every probability is zero — indistinguishable from no
    /// fault model at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0 && self.corrupt == 0.0 && self.burst.is_none()
    }
}

/// SplitMix64 — the same tiny deterministic generator the exploration
/// and chaos harnesses use.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-link Gilbert–Elliott chain state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GeState {
    Good,
    Bad,
}

/// A seeded fault model over a set of links.
///
/// Links without an entry (and no default) are perfect — the common
/// case, so a profile targeting only WAN links leaves LAN traffic
/// untouched.
///
/// # Examples
///
/// ```
/// use simnet::{FaultOutcome, FaultProfile, FlowNet, LinkFault, SimDuration, Topology};
///
/// let mut net = FlowNet::new();
/// let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
/// let mut faults = FaultProfile::new(7);
/// faults.set_link(topo.tx_link(0), LinkFault::lossy(1.0));
/// assert_eq!(faults.sample(&topo.path(0, 1)), FaultOutcome::Drop);
/// assert_eq!(faults.sample(&topo.path(1, 0)), FaultOutcome::Deliver);
/// ```
#[derive(Clone, Debug)]
pub struct FaultProfile {
    rng: SplitMix64,
    default: Option<LinkFault>,
    // Keyed by link index; BTreeMap for deterministic Debug output (the
    // map is only ever point-queried during sampling).
    per_link: BTreeMap<u32, LinkFault>,
    ge_states: BTreeMap<u32, GeState>,
    drops: u64,
    corruptions: u64,
}

impl FaultProfile {
    /// An empty profile (all links perfect) with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            rng: SplitMix64(seed),
            default: None,
            per_link: BTreeMap::new(),
            ge_states: BTreeMap::new(),
            drops: 0,
            corruptions: 0,
        }
    }

    /// Applies `fault` to every link that has no explicit entry.
    pub fn set_default(&mut self, fault: LinkFault) {
        self.default = Some(fault);
    }

    /// Sets (or replaces) the fault model for one link.
    pub fn set_link(&mut self, link: LinkId, fault: LinkFault) {
        self.per_link.insert(link.0, fault);
    }

    /// True when no link can ever drop or corrupt — sampling such a
    /// profile always returns [`FaultOutcome::Deliver`] without touching
    /// the RNG, so an all-clean profile is behaviourally identical to no
    /// profile.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.default.as_ref().is_none_or(LinkFault::is_clean)
            && self.per_link.values().all(LinkFault::is_clean)
    }

    /// Payloads dropped so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Payloads corrupted so far.
    #[must_use]
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Samples the fate of one payload that traversed `path`, advancing
    /// burst-channel states on every faulted link. Loss on any link
    /// dominates corruption (a dropped payload never reaches the
    /// receiver's checksum).
    pub fn sample(&mut self, path: &[LinkId]) -> FaultOutcome {
        if self.default.is_none() && self.per_link.is_empty() {
            return FaultOutcome::Deliver;
        }
        let mut outcome = FaultOutcome::Deliver;
        for link in path {
            let Some(fault) = self.per_link.get(&link.0).or(self.default.as_ref()) else {
                continue;
            };
            let fault = *fault;
            if fault.is_clean() {
                continue;
            }
            let mut dropped = fault.loss > 0.0 && self.rng.next_f64() < fault.loss;
            if let Some(ge) = fault.burst {
                let state = self.ge_states.entry(link.0).or_insert(GeState::Good);
                let flip = match *state {
                    GeState::Good => ge.p_good_to_bad,
                    GeState::Bad => ge.p_bad_to_good,
                };
                if self.rng.next_f64() < flip {
                    *state = match *state {
                        GeState::Good => GeState::Bad,
                        GeState::Bad => GeState::Good,
                    };
                }
                let loss = match *state {
                    GeState::Good => ge.loss_good,
                    GeState::Bad => ge.loss_bad,
                };
                dropped |= loss > 0.0 && self.rng.next_f64() < loss;
            }
            if dropped {
                self.drops += 1;
                return FaultOutcome::Drop;
            }
            if outcome == FaultOutcome::Deliver
                && fault.corrupt > 0.0
                && self.rng.next_f64() < fault.corrupt
            {
                self.corruptions += 1;
                outcome = FaultOutcome::Corrupt;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::{FlowNet, Topology};

    fn two_node() -> (FlowNet, Topology) {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
        (net, topo)
    }

    #[test]
    fn empty_profile_always_delivers() {
        let (_net, topo) = two_node();
        let mut p = FaultProfile::new(1);
        assert!(p.is_clean());
        for _ in 0..100 {
            assert_eq!(p.sample(&topo.path(0, 1)), FaultOutcome::Deliver);
        }
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (_net, topo) = two_node();
        let run = |seed| {
            let mut p = FaultProfile::new(seed);
            p.set_default(LinkFault {
                loss: 0.3,
                burst: Some(GilbertElliott::bursty(0.05)),
                corrupt: 0.1,
            });
            (0..200)
                .map(|_| p.sample(&topo.path(0, 1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn loss_rate_tracks_configuration() {
        let (_net, topo) = two_node();
        let mut p = FaultProfile::new(9);
        p.set_default(LinkFault::lossy(0.01));
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| p.sample(&topo.path(0, 1)) == FaultOutcome::Drop)
            .count();
        // Two faulted links per path => ~2% end-to-end.
        let rate = drops as f64 / n as f64;
        assert!((0.012..0.028).contains(&rate), "rate {rate}");
        assert_eq!(p.drops(), drops as u64);
    }

    #[test]
    fn burst_loss_is_correlated() {
        let (_net, topo) = two_node();
        let mut p = FaultProfile::new(5);
        p.set_default(LinkFault {
            loss: 0.0,
            burst: Some(GilbertElliott::bursty(0.05)),
            corrupt: 0.0,
        });
        let fates: Vec<bool> = (0..50_000)
            .map(|_| p.sample(&topo.path(0, 1)) == FaultOutcome::Drop)
            .collect();
        let losses = fates.iter().filter(|&&d| d).count() as f64;
        let rate = losses / fates.len() as f64;
        // Conditional loss-after-loss probability should exceed the
        // marginal rate by a wide margin — the definition of bursty.
        let pairs = fates.windows(2).filter(|w| w[0]).count() as f64;
        let after_loss = fates.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        assert!(rate > 0.02 && rate < 0.2, "marginal {rate}");
        assert!(after_loss / pairs > 2.0 * rate, "not bursty");
    }

    #[test]
    fn corruption_is_reported_separately() {
        let (_net, topo) = two_node();
        let mut p = FaultProfile::new(3);
        p.set_default(LinkFault {
            loss: 0.0,
            burst: None,
            corrupt: 1.0,
        });
        assert_eq!(p.sample(&topo.path(0, 1)), FaultOutcome::Corrupt);
        assert_eq!(p.corruptions(), 1);
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn per_link_override_targets_one_direction() {
        let (_net, topo) = two_node();
        let mut p = FaultProfile::new(7);
        p.set_link(topo.tx_link(0), LinkFault::lossy(1.0));
        assert_eq!(p.sample(&topo.path(0, 1)), FaultOutcome::Drop);
        assert_eq!(p.sample(&topo.path(1, 0)), FaultOutcome::Deliver);
    }
}
