//! # simnet — deterministic datacenter network simulation
//!
//! The substrate underneath the RDMC reproduction: a discrete-event kernel
//! with virtual nanosecond time, a flow-level network model with max-min
//! fair bandwidth sharing, datacenter topologies (full-bisection switch,
//! oversubscribed top-of-rack, two-tier fabric), and host-side cost models
//! (software overheads, scheduling jitter, CPU accounting).
//!
//! The RDMC paper evaluated on real RDMA clusters (Fractus, Sierra,
//! Stampede, Apt). This crate stands in for those fabrics: it reproduces
//! the properties the paper's results actually depend on — who shares
//! which link, full-duplex NICs, fair sharing, TOR oversubscription, and
//! occasional multi-microsecond software stalls — while remaining fully
//! deterministic and fast enough to sweep hundreds of configurations.
//!
//! ## Example
//!
//! ```
//! use simnet::{FlowNet, SimDuration, SimTime, Topology};
//!
//! // Four nodes on a 100 Gb/s switch; node 0 sends 1 MB to node 1.
//! let mut net = FlowNet::new();
//! let topo = Topology::flat(&mut net, 4, 100.0, SimDuration::from_micros(2));
//! let flow = net.start_flow(SimTime::ZERO, topo.path(0, 1), 1_000_000.0);
//! let (done_at, id) = net.next_completion().unwrap();
//! assert_eq!(id, flow);
//! assert_eq!(done_at.as_nanos(), 80_000); // 8 Mb at 100 Gb/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod fault;
mod flow;
mod host;
mod time;
mod topology;

pub use event::{EventQueue, EventToken};
pub use fault::{FaultOutcome, FaultProfile, GilbertElliott, LinkFault};
pub use flow::{FlowId, FlowNet, LinkId, ReallocStats};
pub use host::{CpuMeter, HostProfile, JitterModel};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
