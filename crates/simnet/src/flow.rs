//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! A [`Flow`] is a bulk transfer of a known size across a path of
//! [`Link`]s. Whenever the set of active flows changes, every flow's rate
//! is recomputed by *progressive filling*: repeatedly find the most
//! contended link, freeze all its flows at that link's fair share, remove
//! the frozen bandwidth, and continue. This is the classical max-min fair
//! allocation, and it is exactly the behaviour the RDMC paper attributes to
//! RDMA hardware ("RDMA apportions bandwidth fairly if there are several
//! active transfers in one NIC", §3) and to the oversubscribed Apt
//! top-of-rack switch (§5.2.2).
//!
//! The model deliberately ignores packetization: RDMC moves hundreds of
//! kilobytes to megabytes per block, so per-packet effects wash out, while
//! who-shares-which-link entirely determines the results the paper reports.
//!
//! [`FlowNet`] does not own a clock. The caller advances it explicitly and
//! asks for the next flow completion, which makes it easy to embed in any
//! event loop (see the `verbs` crate).

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Index of a link in a [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) u32);

/// Identifier of an active flow (slot index + generation, so stale ids
/// never alias a reused slot).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

impl FlowId {
    fn new(slot: u32, generation: u32) -> Self {
        FlowId(u64::from(generation) << 32 | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A unidirectional link with a capacity and a propagation latency.
#[derive(Clone, Debug)]
struct Link {
    /// Capacity in bits per second.
    capacity_bps: f64,
    /// One-way propagation latency contributed by this hop.
    latency: SimDuration,
    /// Total payload bytes that have traversed this link (for reporting).
    bytes_carried: f64,
}

/// An active transfer.
#[derive(Clone, Debug)]
struct Flow {
    path: Vec<LinkId>,
    remaining_bytes: f64,
    /// Current max-min fair rate in bits per second.
    rate_bps: f64,
}

/// Remaining bytes below this threshold count as "done" (absorbs float
/// rounding from rate changes).
const COMPLETION_EPSILON_BYTES: f64 = 1e-6;

/// A set of links plus the active flows crossing them.
///
/// # Examples
///
/// ```
/// use simnet::{FlowNet, SimTime};
///
/// let mut net = FlowNet::new();
/// let l = net.add_link(10.0, simnet::SimDuration::from_micros(1)); // 10 Gb/s
/// let f = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0); // 1.25 MB
/// // Alone on a 10 Gb/s link, 1.25 MB takes 1 ms.
/// let (t, done) = net.next_completion().unwrap();
/// assert_eq!(done, f);
/// assert_eq!(t.as_nanos(), 1_000_000);
/// ```
pub struct FlowNet {
    links: Vec<Link>,
    /// Slab of flow slots; `None` = free. Slot reuse is disambiguated by
    /// the generation embedded in [`FlowId`].
    slots: Vec<Option<Flow>>,
    generations: Vec<u32>,
    free_slots: Vec<u32>,
    active_flows: usize,
    /// Instant the flow `remaining_bytes` values were last brought current.
    last_update: SimTime,
    realloc_count: u64,
    realloc_nanos: u64,
    /// (sum of flows, sum of heap pushes) across reallocations.
    pub(crate) realloc_work: (u64, u64),
    /// Reusable per-link scratch for [`FlowNet::reallocate`] (avoids
    /// re-allocating on every rate recomputation).
    scratch: ReallocScratch,
}

#[derive(Default)]
struct ReallocScratch {
    residual: Vec<f64>,
    count: Vec<u32>,
    version: Vec<u32>,
    flows_on: Vec<Vec<FlowId>>,
    /// Links touched by the previous reallocation (to reset sparsely).
    touched: Vec<u32>,
    /// Recycled backing storage for the bottleneck min-heap.
    heap_buf: Vec<std::cmp::Reverse<(u64, u32, u32)>>,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            slots: Vec::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            active_flows: 0,
            last_update: SimTime::ZERO,
            realloc_count: 0,
            realloc_nanos: 0,
            realloc_work: (0, 0),
            scratch: ReallocScratch::default(),
        }
    }

    /// Adds a unidirectional link of `capacity_gbps` gigabits per second
    /// with the given one-way propagation latency, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_gbps` is not strictly positive and finite.
    pub fn add_link(&mut self, capacity_gbps: f64, latency: SimDuration) -> LinkId {
        assert!(
            capacity_gbps.is_finite() && capacity_gbps > 0.0,
            "link capacity must be positive, got {capacity_gbps}"
        );
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link {
            capacity_bps: capacity_gbps * 1e9,
            latency,
            bytes_carried: 0.0,
        });
        id
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of active flows.
    pub fn num_flows(&self) -> usize {
        self.active_flows
    }

    fn get(&self, id: FlowId) -> Option<&Flow> {
        let slot = id.slot();
        if slot < self.slots.len() && self.generations[slot] == id.generation() {
            self.slots[slot].as_ref()
        } else {
            None
        }
    }

    /// Iterates `(id, flow)` over active flows in slot order
    /// (deterministic for a given event history).
    fn iter_flows(&self) -> impl Iterator<Item = (FlowId, &Flow)> {
        self.slots.iter().enumerate().filter_map(|(i, f)| {
            f.as_ref()
                .map(|f| (FlowId::new(i as u32, self.generations[i]), f))
        })
    }

    /// Sum of one-way propagation latencies along `path`.
    ///
    /// # Panics
    ///
    /// Panics if any link id is out of range.
    pub fn path_latency(&self, path: &[LinkId]) -> SimDuration {
        path.iter().fold(SimDuration::ZERO, |acc, l| {
            acc + self.links[l.0 as usize].latency
        })
    }

    /// Total payload bytes carried by `link` so far.
    pub fn bytes_carried(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].bytes_carried
    }

    /// Starts a flow of `bytes` across `path` at time `now` and returns its
    /// id. All rates are recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty, `bytes` is negative, or `now` precedes a
    /// previous update (time must move forward).
    pub fn start_flow(&mut self, now: SimTime, path: Vec<LinkId>, bytes: f64) -> FlowId {
        assert!(!path.is_empty(), "flow path must contain at least one link");
        assert!(bytes >= 0.0, "flow size must be non-negative, got {bytes}");
        for l in &path {
            assert!((l.0 as usize) < self.links.len(), "unknown link {l:?}");
        }
        self.advance_to(now);
        let flow = Flow {
            path,
            remaining_bytes: bytes.max(COMPLETION_EPSILON_BYTES / 2.0),
            rate_bps: 0.0,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(flow);
                s
            }
            None => {
                self.slots.push(Some(flow));
                self.generations.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.active_flows += 1;
        let id = FlowId::new(slot, self.generations[slot as usize]);
        self.reallocate();
        id
    }

    /// Current max-min rate of `flow` in bits per second, or `None` if the
    /// flow is finished/unknown.
    pub fn flow_rate_bps(&self, flow: FlowId) -> Option<f64> {
        self.get(flow).map(|f| f.rate_bps)
    }

    /// The earliest `(time, flow)` completion under current rates, if any
    /// flows are active.
    ///
    /// The returned time is rounded up to a whole nanosecond strictly after
    /// `last_update` when any bytes remain, guaranteeing forward progress.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (id, f) in self.iter_flows() {
            debug_assert!(f.rate_bps > 0.0, "active flow with zero rate");
            let secs = (f.remaining_bytes * 8.0) / f.rate_bps;
            let mut at = self.last_update + SimDuration::from_secs_f64(secs);
            if f.remaining_bytes > COMPLETION_EPSILON_BYTES && at == self.last_update {
                at += SimDuration::from_nanos(1);
            }
            match best {
                Some((t, _)) if t <= at => {}
                _ => best = Some((at, id)),
            }
        }
        best
    }

    /// Marks `flow` complete at time `now`, removes it, and recomputes the
    /// remaining flows' rates. Returns the flow's path (useful for
    /// latency lookups by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist or if a non-negligible number of
    /// bytes would still be outstanding at `now` (i.e. the caller completed
    /// it too early — a scheduling bug).
    pub fn complete_flow(&mut self, now: SimTime, flow: FlowId) -> Vec<LinkId> {
        self.advance_to(now);
        let f = self.remove(flow).expect("completing unknown flow");
        // Tolerance scales with rate: one microsecond of transfer at the
        // flow's final rate absorbs the rounding of the ns-quantized clock.
        let tolerance = (f.rate_bps / 8.0) * 1e-6 + COMPLETION_EPSILON_BYTES;
        assert!(
            f.remaining_bytes <= tolerance,
            "flow {flow:?} completed early: {} bytes remaining (tolerance {tolerance})",
            f.remaining_bytes
        );
        self.reallocate();
        f.path
    }

    /// Aborts `flow` at time `now` without requiring it to have finished
    /// (e.g. the sending endpoint crashed). Progress up to `now` still
    /// counts toward link byte totals. Unknown flows are a silent no-op so
    /// callers don't need to track completion races.
    pub fn abort_flow(&mut self, now: SimTime, flow: FlowId) {
        self.advance_to(now);
        if self.remove(flow).is_some() {
            self.reallocate();
        }
    }

    fn remove(&mut self, id: FlowId) -> Option<Flow> {
        let slot = id.slot();
        if slot >= self.slots.len() || self.generations[slot] != id.generation() {
            return None;
        }
        let f = self.slots[slot].take()?;
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.free_slots.push(slot as u32);
        self.active_flows -= 1;
        Some(f)
    }

    /// Advances all flow progress to `now` (monotone; `now` may equal the
    /// previous update instant).
    pub fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "FlowNet time moved backwards: {now:?} < {:?}",
            self.last_update
        );
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            for f in self.slots.iter_mut().flatten() {
                let moved = (f.rate_bps / 8.0 * dt).min(f.remaining_bytes);
                f.remaining_bytes -= moved;
                for l in &f.path {
                    self.links[l.0 as usize].bytes_carried += moved;
                }
            }
        }
        self.last_update = now;
    }

    /// Number of reallocations performed (performance counter).
    pub fn realloc_count(&self) -> u64 {
        self.realloc_count
    }

    /// Wall-clock nanoseconds spent reallocating (performance counter).
    pub fn realloc_nanos(&self) -> u64 {
        self.realloc_nanos
    }

    /// (total flows visited, total heap pushes) across reallocations.
    pub fn realloc_work(&self) -> (u64, u64) {
        self.realloc_work
    }

    /// Recomputes all flow rates by progressive filling (max-min
    /// fairness), implemented as heap-based water-filling.
    ///
    /// A min-heap tracks each active link's fair share with lazy
    /// invalidation: freezing the bottleneck's flows only *raises* the
    /// shares of the links they crossed (the removed flows took no more
    /// than the bottleneck share), so stale heap entries are always
    /// lower bounds and can be skipped by version check. Total work is
    /// `O(total path length * log links)` instead of `O(rounds * links)`.
    fn reallocate(&mut self) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let t0 = std::time::Instant::now();
        self.realloc_count += 1;
        self.realloc_work.0 += self.active_flows as u64;
        if self.active_flows == 0 {
            return;
        }
        // Dense per-link scratch state: residual capacity, unfrozen-flow
        // count, version for lazy heap invalidation, and the unfrozen
        // flows on each link. Buffers are reused across reallocations and
        // reset sparsely via the previous run's touched-link list.
        let num_links = self.links.len();
        let mut scratch_owned = std::mem::take(&mut self.scratch);
        let scratch = &mut scratch_owned;
        if scratch.count.len() < num_links {
            scratch.residual.resize(num_links, 0.0);
            scratch.count.resize(num_links, 0);
            scratch.version.resize(num_links, 0);
            scratch.flows_on.resize_with(num_links, Vec::new);
        }
        for &i in &scratch.touched {
            let i = i as usize;
            scratch.count[i] = 0;
            scratch.version[i] = 0;
            scratch.flows_on[i].clear();
        }
        scratch.touched.clear();
        let residual = &mut scratch.residual;
        let count = &mut scratch.count;
        let version = &mut scratch.version;
        let flows_on = &mut scratch.flows_on;
        for (slot, f) in self.slots.iter().enumerate() {
            let Some(f) = f else { continue };
            let id = FlowId::new(slot as u32, self.generations[slot]);
            for &l in &f.path {
                let i = l.0 as usize;
                if count[i] == 0 {
                    residual[i] = self.links[i].capacity_bps;
                    scratch.touched.push(l.0);
                }
                count[i] += 1;
                flows_on[i].push(id);
            }
        }
        // Flows are marked unfrozen by a negative rate; no side set needed.
        for f in self.slots.iter_mut().flatten() {
            f.rate_bps = -1.0;
        }
        // f64 shares ordered through their bit pattern (finite,
        // non-negative values compare correctly as u64s).
        let share_key = |s: f64| -> u64 { s.to_bits() };
        let mut heap_buf = std::mem::take(&mut scratch.heap_buf);
        heap_buf.clear();
        for i in 0..num_links {
            if count[i] > 0 {
                heap_buf.push(Reverse((
                    share_key(residual[i] / count[i] as f64),
                    i as u32,
                    version[i],
                )));
            }
        }
        let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::from(heap_buf);
        let mut work_pushes: u64 = 0;
        let mut remaining = self.active_flows;
        while remaining > 0 {
            let Reverse((_, link, ver)) = heap.pop().expect("unfrozen flows but empty heap");
            let i = link as usize;
            if version[i] != ver || count[i] == 0 {
                continue; // stale entry
            }
            let share = residual[i] / count[i] as f64;
            // Freeze every unfrozen flow crossing the bottleneck. The
            // link's list is drained in place (it is reset next run).
            let mut on_link = std::mem::take(&mut flows_on[i]);
            for &id in &on_link {
                let f = self.slots[id.slot()].as_mut().expect("flow disappeared");
                if f.rate_bps >= 0.0 {
                    continue; // frozen via another link
                }
                f.rate_bps = share;
                remaining -= 1;
                for &l in &f.path {
                    let j = l.0 as usize;
                    residual[j] = (residual[j] - share).max(0.0);
                    count[j] -= 1;
                    version[j] += 1;
                    if count[j] > 0 && j != i {
                        work_pushes += 1;
                        heap.push(Reverse((
                            share_key(residual[j] / count[j] as f64),
                            j as u32,
                            version[j],
                        )));
                    }
                }
            }
            // Hand the (now consumed) buffer back so its capacity is
            // reused next time.
            on_link.clear();
            flows_on[i] = on_link;
        }
        scratch_owned.heap_buf = heap.into_vec();
        self.scratch = scratch_owned;
        self.realloc_work.1 += work_pushes;
        self.realloc_nanos += t0.elapsed().as_nanos() as u64;
    }
}

impl fmt::Debug for FlowNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowNet")
            .field("links", &self.links.len())
            .field("flows", &self.active_flows)
            .field("last_update", &self.last_update)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(net: &mut FlowNet, cap: f64) -> LinkId {
        net.add_link(cap, SimDuration::from_micros(1))
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 100.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 125_000_000.0); // 125 MB = 1 Gb... at 100Gb/s -> 10ms
        assert_eq!(net.flow_rate_bps(f), Some(100e9));
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t.as_nanos(), 10_000_000);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        let b = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        assert_eq!(net.flow_rate_bps(a), Some(5e9));
        assert_eq!(net.flow_rate_bps(b), Some(5e9));
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0); // 1 ms at 10 Gb/s alone
        let b = net.start_flow(SimTime::ZERO, vec![l], 12_500_000.0);
        let (t1, first) = net.next_completion().unwrap();
        assert_eq!(first, a); // equal shares; a is smaller so finishes first
        net.complete_flow(t1, a);
        assert_eq!(net.flow_rate_bps(b), Some(10e9));
        let (t2, second) = net.next_completion().unwrap();
        assert_eq!(second, b);
        net.complete_flow(t2, b);
        assert_eq!(net.num_flows(), 0);
        // a: 2 ms at half rate. b: 1.25 MB moved in those 2 ms, remaining
        // 11.25 MB at full rate = 9 ms; total 11 ms.
        assert_eq!(t1.as_nanos(), 2_000_000);
        assert_eq!(t2.as_nanos(), 11_000_000);
    }

    #[test]
    fn max_min_is_not_just_equal_split() {
        // Flow A crosses a narrow link; flows B, C share a wide link with A's
        // exit. Max-min: A limited to 1 Gb/s by the narrow link; B and C
        // split the remainder of the wide link (4.5 each), not 10/3 each.
        let mut net = FlowNet::new();
        let narrow = gb(&mut net, 1.0);
        let wide = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![narrow, wide], 1e9);
        let b = net.start_flow(SimTime::ZERO, vec![wide], 1e9);
        let c = net.start_flow(SimTime::ZERO, vec![wide], 1e9);
        assert_eq!(net.flow_rate_bps(a), Some(1e9));
        assert_eq!(net.flow_rate_bps(b), Some(4.5e9));
        assert_eq!(net.flow_rate_bps(c), Some(4.5e9));
    }

    #[test]
    fn bytes_carried_accumulates() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0);
        let (t, _) = net.next_completion().unwrap();
        net.complete_flow(t, f);
        assert!((net.bytes_carried(l) - 1_250_000.0).abs() < 1.0);
    }

    #[test]
    fn path_latency_sums_hops() {
        let mut net = FlowNet::new();
        let a = net.add_link(10.0, SimDuration::from_micros(2));
        let b = net.add_link(10.0, SimDuration::from_nanos(500));
        assert_eq!(net.path_latency(&[a, b]), SimDuration::from_nanos(2_500));
    }

    #[test]
    fn zero_byte_flow_completes_immediately_but_monotonically() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::from_nanos(100), vec![l], 0.0);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!(t >= SimTime::from_nanos(100));
        net.complete_flow(t, f);
    }

    #[test]
    #[should_panic(expected = "path must contain")]
    fn empty_path_rejected() {
        let mut net = FlowNet::new();
        net.start_flow(SimTime::ZERO, vec![], 10.0);
    }

    #[test]
    #[should_panic(expected = "completed early")]
    fn early_completion_is_a_bug() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 1e9);
        net.complete_flow(SimTime::from_nanos(10), f);
    }

    #[test]
    fn staggered_arrivals_update_progress_correctly() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 8.0); // 1 GB/s
        let a = net.start_flow(SimTime::ZERO, vec![l], 3_000_000.0); // 3 ms alone
                                                                     // After 1 ms, 1 MB moved; 2 MB left. Second flow arrives.
        let b = net.start_flow(SimTime::from_nanos(1_000_000), vec![l], 10_000_000.0);
        let _ = b;
        // a now runs at 0.5 GB/s: 2 MB takes 4 ms more -> completes at 5 ms.
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, a);
        assert_eq!(t.as_nanos(), 5_000_000);
    }
}
