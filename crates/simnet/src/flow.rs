//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! A [`Flow`] is a bulk transfer of a known size across a path of
//! [`Link`]s. Whenever the set of active flows changes, affected flows'
//! rates are recomputed by *progressive filling*: repeatedly find the most
//! contended link, freeze all its flows at that link's fair share, remove
//! the frozen bandwidth, and continue. This is the classical max-min fair
//! allocation, and it is exactly the behaviour the RDMC paper attributes to
//! RDMA hardware ("RDMA apportions bandwidth fairly if there are several
//! active transfers in one NIC", §3) and to the oversubscribed Apt
//! top-of-rack switch (§5.2.2).
//!
//! The model deliberately ignores packetization: RDMC moves hundreds of
//! kilobytes to megabytes per block, so per-packet effects wash out, while
//! who-shares-which-link entirely determines the results the paper reports.
//!
//! # Performance model
//!
//! Three structural properties keep per-event cost sublinear in the number
//! of active flows:
//!
//! * **Ripple-set reallocation.** Max-min allocations decompose over
//!   connected components of the flow/link sharing graph: a link either
//!   carries only component flows or none, so water-filling restricted to
//!   the component reachable from the changed flow is *exact*, not an
//!   approximation. [`FlowNet::start_flow`] / [`FlowNet::complete_flow`] /
//!   [`FlowNet::abort_flow`] therefore re-run progressive filling only over
//!   that component, falling back to a full recomputation when the ripple
//!   covers most of the active flows (the traversal would not pay for
//!   itself).
//! * **Completion heap.** Projected completion times live in a lazily
//!   invalidated min-heap keyed by `(time, slot, epoch)`. A flow's
//!   projected *absolute* completion instant is invariant while its rate is
//!   unchanged, so only flows whose rate actually changed in the last
//!   reallocation get a fresh entry; stale entries are skipped by a
//!   per-slot epoch check. [`FlowNet::next_completion`] is `O(log flows)`
//!   amortized instead of a scan of every active flow.
//! * **Boundary byte accounting.** Per-flow progress and per-link byte
//!   counters are materialized only at rate-change boundaries (each flow
//!   carries a `synced_at` watermark), making [`FlowNet::advance_to`] O(1).
//!
//! [`FlowNet`] does not own a clock. The caller advances it explicitly and
//! asks for the next flow completion, which makes it easy to embed in any
//! event loop (see the `verbs` crate).

use std::cmp::Reverse;
// `InternState::classes` is a pure interning table (get-or-insert by
// path, never iterated), so hash order cannot reach behavior.
#[allow(clippy::disallowed_types)]
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Index of a link in a [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) u32);

/// Identifier of an active flow (slot index + generation, so stale ids
/// never alias a reused slot).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

impl FlowId {
    fn new(slot: u32, generation: u32) -> Self {
        FlowId(u64::from(generation) << 32 | u64::from(slot))
    }

    /// The raw id, for correlating with flow events in a trace.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A unidirectional link with a capacity and a propagation latency.
#[derive(Clone, Debug)]
struct Link {
    /// Capacity in bits per second.
    capacity_bps: f64,
    /// One-way propagation latency contributed by this hop.
    latency: SimDuration,
    /// Payload bytes credited to this link at materialization boundaries.
    /// [`FlowNet::bytes_carried`] adds the still-unmaterialized progress of
    /// live flows on top of this.
    bytes_carried: f64,
    /// The link is a full-bisection aggregation hop that can never be the
    /// binding bottleneck; the allocator skips it during ripple traversal
    /// and water-filling. See [`FlowNet::set_link_transparent`].
    transparent: bool,
}

/// An active transfer.
#[derive(Clone, Debug)]
struct Flow {
    path: Vec<LinkId>,
    /// Bytes left as of `synced_at` (not as of `FlowNet::last_update`;
    /// progress between the two is implied by `rate_bps`).
    remaining_bytes: f64,
    /// Current max-min fair rate in bits per second.
    rate_bps: f64,
    /// Instant `remaining_bytes` was last materialized. Always a rate
    /// boundary: flows are materialized exactly when their rate changes.
    synced_at: SimTime,
}

/// Remaining bytes below this threshold count as "done" (absorbs float
/// rounding from rate changes).
const COMPLETION_EPSILON_BYTES: f64 = 1e-6;

/// Reallocation performance counters; see [`FlowNet::realloc_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReallocStats {
    /// Reallocations performed.
    pub count: u64,
    /// Reallocations that fell back to recomputing every flow because the
    /// ripple component covered most of the network.
    pub full: u64,
    /// Wall-clock nanoseconds spent reallocating.
    pub nanos: u64,
    /// Flows visited (size of each ripple component, summed).
    pub flows_visited: u64,
    /// Bottleneck-heap pushes performed while water-filling.
    pub heap_pushes: u64,
    /// Flows whose rate actually changed (each one costs a completion-heap
    /// push; the rest keep their projected completion time).
    pub rate_changes: u64,
    /// Links visited by ripple traversals and full scans, summed — the
    /// "ripple link-visits" figure the scale benchmarks track per event.
    pub link_visits: u64,
    /// Flow starts/removals that piggybacked on an already-pending
    /// deferred reallocation (same-instant coalescing): each one is a
    /// recomputation that never ran.
    pub coalesced: u64,
    /// Projection-heap compactions (sweeps of stale completion entries).
    pub heap_compactions: u64,
}

/// A set of links plus the active flows crossing them.
///
/// # Examples
///
/// ```
/// use simnet::{FlowNet, SimTime};
///
/// let mut net = FlowNet::new();
/// let l = net.add_link(10.0, simnet::SimDuration::from_micros(1)); // 10 Gb/s
/// let f = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0); // 1.25 MB
/// // Alone on a 10 Gb/s link, 1.25 MB takes 1 ms.
/// let (t, done) = net.next_completion().unwrap();
/// assert_eq!(done, f);
/// assert_eq!(t.as_nanos(), 1_000_000);
/// ```
pub struct FlowNet {
    links: Vec<Link>,
    /// Slab of flow slots; `None` = free. Slot reuse is disambiguated by
    /// the generation embedded in [`FlowId`].
    slots: Vec<Option<Flow>>,
    generations: Vec<u32>,
    free_slots: Vec<u32>,
    active_flows: usize,
    /// Instant the network clock last advanced to.
    last_update: SimTime,
    /// Per-link list of `(slot, generation)` of flows crossing it.
    /// Entries of removed flows go stale rather than being unlinked
    /// eagerly; they are compacted when a ripple traversal visits the
    /// link, or at removal time once stale entries outnumber live ones.
    link_flows: Vec<Vec<(u32, u32)>>,
    /// Per-link count of live flows, maintained incrementally at flow
    /// start/removal. Lets the full-recompute path skip adjacency
    /// traversal entirely and bounds `link_flows` staleness.
    link_live: Vec<u32>,
    /// Recent recomputations rippled across (nearly) the whole network,
    /// so the traversal is skipped in favor of a linear scan over slots
    /// and links. Re-probed with a real traversal every 64th
    /// reallocation, which flips the mode back off if components
    /// shrank.
    full_mode: bool,
    /// Min-heap of projected completions `(time_ns, slot, epoch)` with
    /// lazy invalidation: an entry is live iff the slot is occupied and
    /// its epoch matches `rate_epoch[slot]`. Exactly one live entry
    /// exists per active flow.
    completions: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Bumped whenever a slot's rate changes or the slot is freed,
    /// invalidating its completion-heap entries.
    rate_epoch: Vec<u32>,
    stats: ReallocStats,
    /// Reusable traversal + water-filling scratch (avoids re-allocating
    /// on every rate recomputation).
    scratch: ReallocScratch,
    /// A reallocation is pending for the links accumulated in
    /// `scratch.frontier`. Same-instant starts and removals coalesce into
    /// one recomputation, flushed before anything observes a rate or the
    /// clock moves (rates are exact piecewise between instants either
    /// way, since no time passes while changes are pending).
    dirty: bool,
    /// The pending changes include an added flow. Added contention can
    /// only lower rates, so stale completion projections may be too
    /// early and [`FlowNet::next_due`] must flush before answering.
    dirty_start: bool,
    /// Flight recorder for flow start/rate-change/finish events;
    /// disabled (a single branch per event) by default.
    recorder: trace::Recorder,
    /// Flow-set interning state; `None` (the default) runs the per-flow
    /// allocator. See [`FlowNet::set_interning`].
    intern: Option<InternState>,
}

/// Flow-set interning: flows with byte-identical paths share one node
/// ("class") in the allocator's sharing graph. A multicast step that
/// launches k same-path transfers then costs O(1) class work per
/// reallocation instead of O(k) flow work: traversal, freezing, and
/// residual subtraction all happen once per class, scaled by its live
/// count. Classes are append-only (one entry per distinct path ever
/// seen); a class with no live flows contributes nothing and is skipped.
#[derive(Default)]
struct InternState {
    /// Path → class id. Lookup-only (never iterated); see the import
    /// note.
    #[allow(clippy::disallowed_types)]
    classes: HashMap<Vec<LinkId>, u32>,
    /// Per-class path (the interned key, shared by every member).
    class_path: Vec<Vec<LinkId>>,
    /// Per-class `(slot, generation)` members; entries of removed flows go
    /// stale in place and are compacted once they outnumber live ones.
    class_members: Vec<Vec<(u32, u32)>>,
    /// Per-class live-member count.
    class_live: Vec<u32>,
    /// Epoch-stamped traversal marks, indexed by class.
    class_mark: Vec<u32>,
    /// Epoch-stamped "frozen in the current fill" marks, indexed by class.
    class_frozen: Vec<u32>,
    /// Per-slot class id (meaningful while the slot is occupied).
    class_of: Vec<u32>,
    /// Per-link list of classes whose path crosses it. Each class appears
    /// at most once per link, pushed exactly once at class creation.
    link_classes: Vec<Vec<u32>>,
}

#[derive(Default)]
struct ReallocScratch {
    /// Per-link residual capacity while water-filling.
    residual: Vec<f64>,
    /// Per-link unfrozen-flow count while water-filling.
    count: Vec<u32>,
    /// Links in the current ripple component (to reset sparsely).
    touched: Vec<u32>,
    /// Recycled storage for the sorted `(share key, link)` bottleneck
    /// candidates.
    sorted_buf: Vec<(u64, u32)>,
    /// Recycled backing storage for the stale-requeue min-heap.
    requeue_buf: Vec<Reverse<(u64, u32)>>,
    /// Epoch-stamped visited marks for the ripple traversal.
    link_mark: Vec<u32>,
    flow_mark: Vec<u32>,
    mark: u32,
    /// BFS frontier of link indices; callers seed it with the changed
    /// flow's path before invoking `reallocate`.
    frontier: Vec<u32>,
    /// Component flow slots in discovery order.
    comp: Vec<u32>,
    /// Epoch-stamped "frozen in the current fill" marks, indexed by slot.
    frozen_mark: Vec<u32>,
    /// Slots whose rate actually changed in the current fill.
    changed: Vec<u32>,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

/// Brings `slot`'s progress current to `now`, crediting the moved bytes to
/// every link on its path. Free function over split borrows so callers can
/// hold other `FlowNet` fields.
fn materialize_slot(slots: &mut [Option<Flow>], links: &mut [Link], now: SimTime, slot: usize) {
    let f = slots[slot].as_mut().expect("materializing a free slot");
    let dt = now.since(f.synced_at).as_secs_f64();
    if dt > 0.0 {
        let moved = (f.rate_bps / 8.0 * dt).min(f.remaining_bytes);
        f.remaining_bytes -= moved;
        for l in &f.path {
            links[l.0 as usize].bytes_carried += moved;
        }
    }
    f.synced_at = now;
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            slots: Vec::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            active_flows: 0,
            last_update: SimTime::ZERO,
            link_flows: Vec::new(),
            link_live: Vec::new(),
            full_mode: false,
            completions: BinaryHeap::new(),
            rate_epoch: Vec::new(),
            stats: ReallocStats::default(),
            scratch: ReallocScratch::default(),
            dirty: false,
            dirty_start: false,
            recorder: trace::Recorder::disabled(),
            intern: None,
        }
    }

    /// Attaches a flight recorder; flow starts, rate changes, and
    /// completions are recorded from then on.
    pub fn set_recorder(&mut self, recorder: trace::Recorder) {
        self.recorder = recorder;
    }

    /// Enables flow-set (path) interning: flows sharing a byte-identical
    /// path share one node in the allocator's sharing graph, so a
    /// multicast step with k same-path transfers costs O(1) class work
    /// per reallocation instead of O(k). Opt-in because grouping fuses
    /// the per-flow residual subtractions of the fill into one
    /// `share * live` step, which changes the floating-point summation
    /// order: rates may differ from the default kernel in the last ulps.
    /// Enable it for scale experiments, not for golden-trace runs.
    ///
    /// # Panics
    ///
    /// Panics if a flow has ever been started on this network.
    pub fn set_interning(&mut self, on: bool) {
        assert!(
            self.slots.is_empty(),
            "interning must be configured before the first flow starts"
        );
        self.intern = on.then(|| InternState {
            link_classes: vec![Vec::new(); self.links.len()],
            ..InternState::default()
        });
    }

    /// Marks `link` as a *transparent* aggregation hop: the caller
    /// guarantees its capacity is at least the sum of the capacities of
    /// the edge links feeding flows into it (full bisection), so it can
    /// never be the strictly binding bottleneck of a max-min allocation.
    /// The allocator then skips it during ripple traversal and
    /// water-filling — a rate change on one edge link no longer ripples
    /// through the aggregation tier into disjoint pods. The exclusion is
    /// exact, not an approximation: a never-binding link's fair share is
    /// always at least the minimum share of its feeders, and in the tie
    /// case every involved share is equal, so progressive filling with or
    /// without the link assigns identical rates.
    ///
    /// Latency and byte accounting are unaffected: the link still
    /// contributes to [`FlowNet::path_latency`] and
    /// [`FlowNet::bytes_carried`], and the differential oracle
    /// ([`FlowNet::max_min_reference`]) keeps filling over it, so the
    /// equivalence is continuously tested.
    ///
    /// # Panics
    ///
    /// Panics if flows already cross the link (mark topology up front).
    pub fn set_link_transparent(&mut self, link: LinkId) {
        let i = link.0 as usize;
        assert_eq!(
            self.link_live[i], 0,
            "cannot make a loaded link transparent"
        );
        self.links[i].transparent = true;
    }

    /// Runs the deferred reallocation, if one is pending.
    fn flush(&mut self) {
        if self.dirty {
            self.dirty = false;
            self.dirty_start = false;
            self.reallocate();
        }
    }

    /// Adds a unidirectional link of `capacity_gbps` gigabits per second
    /// with the given one-way propagation latency, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_gbps` is not strictly positive and finite.
    pub fn add_link(&mut self, capacity_gbps: f64, latency: SimDuration) -> LinkId {
        assert!(
            capacity_gbps.is_finite() && capacity_gbps > 0.0,
            "link capacity must be positive, got {capacity_gbps}"
        );
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link {
            capacity_bps: capacity_gbps * 1e9,
            latency,
            bytes_carried: 0.0,
            transparent: false,
        });
        self.link_flows.push(Vec::new());
        self.link_live.push(0);
        if let Some(intern) = &mut self.intern {
            intern.link_classes.push(Vec::new());
        }
        id
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of active flows.
    pub fn num_flows(&self) -> usize {
        self.active_flows
    }

    fn get(&self, id: FlowId) -> Option<&Flow> {
        let slot = id.slot();
        if slot < self.slots.len() && self.generations[slot] == id.generation() {
            self.slots[slot].as_ref()
        } else {
            None
        }
    }

    /// Sum of one-way propagation latencies along `path`.
    ///
    /// # Panics
    ///
    /// Panics if any link id is out of range.
    pub fn path_latency(&self, path: &[LinkId]) -> SimDuration {
        path.iter().fold(SimDuration::ZERO, |acc, l| {
            acc + self.links[l.0 as usize].latency
        })
    }

    /// Total payload bytes carried by `link` up to the current instant,
    /// including the not-yet-materialized progress of live flows.
    pub fn bytes_carried(&self, link: LinkId) -> f64 {
        let i = link.0 as usize;
        let mut total = self.links[i].bytes_carried;
        let unmaterialized = |slot: u32, generation: u32| -> f64 {
            let s = slot as usize;
            if self.generations[s] != generation {
                return 0.0; // stale entry of a removed flow
            }
            match &self.slots[s] {
                Some(f) => {
                    let dt = self.last_update.since(f.synced_at).as_secs_f64();
                    (f.rate_bps / 8.0 * dt).min(f.remaining_bytes)
                }
                None => 0.0,
            }
        };
        if let Some(intern) = &self.intern {
            for &cid in &intern.link_classes[i] {
                for &(slot, generation) in &intern.class_members[cid as usize] {
                    total += unmaterialized(slot, generation);
                }
            }
        } else {
            for &(slot, generation) in &self.link_flows[i] {
                total += unmaterialized(slot, generation);
            }
        }
        total
    }

    /// Starts a flow of `bytes` across `path` at time `now` and returns its
    /// id. Rates are recomputed for the flow's ripple component.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty, `bytes` is negative, or `now` precedes a
    /// previous update (time must move forward).
    pub fn start_flow(&mut self, now: SimTime, path: Vec<LinkId>, bytes: f64) -> FlowId {
        assert!(!path.is_empty(), "flow path must contain at least one link");
        assert!(bytes >= 0.0, "flow size must be non-negative, got {bytes}");
        for l in &path {
            assert!((l.0 as usize) < self.links.len(), "unknown link {l:?}");
        }
        assert!(
            path.iter().any(|l| !self.links[l.0 as usize].transparent),
            "flow path must cross at least one non-transparent link"
        );
        self.advance_to(now);
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.rate_epoch.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.active_flows += 1;
        let generation = self.generations[slot as usize];
        let id = FlowId::new(slot, generation);
        if self.dirty {
            self.stats.coalesced += 1;
        }
        let mut frontier = std::mem::take(&mut self.scratch.frontier);
        for l in &path {
            let li = l.0 as usize;
            self.link_live[li] += 1;
            if !self.links[li].transparent {
                frontier.push(l.0);
            }
        }
        if let Some(intern) = &mut self.intern {
            let cid = match intern.classes.get(&path) {
                Some(&c) => c,
                None => {
                    let c = u32::try_from(intern.class_path.len()).expect("too many classes");
                    intern.classes.insert(path.clone(), c);
                    intern.class_path.push(path.clone());
                    intern.class_members.push(Vec::new());
                    intern.class_live.push(0);
                    intern.class_mark.push(0);
                    intern.class_frozen.push(0);
                    for l in &path {
                        intern.link_classes[l.0 as usize].push(c);
                    }
                    c
                }
            };
            intern.class_live[cid as usize] += 1;
            intern.class_members[cid as usize].push((slot, generation));
            if intern.class_of.len() <= slot as usize {
                intern.class_of.resize(slot as usize + 1, 0);
            }
            intern.class_of[slot as usize] = cid;
        } else {
            for l in &path {
                self.link_flows[l.0 as usize].push((slot, generation));
            }
        }
        self.slots[slot as usize] = Some(Flow {
            path,
            remaining_bytes: bytes.max(COMPLETION_EPSILON_BYTES / 2.0),
            rate_bps: 0.0,
            synced_at: now,
        });
        self.scratch.frontier = frontier;
        // Defer the recomputation: the new flow carries nothing until the
        // flush, which happens before any rate is observed or time moves.
        self.dirty = true;
        self.dirty_start = true;
        self.recorder
            .record_at(now.as_nanos(), trace::Scope::none(), || {
                trace::EventKind::FlowStarted {
                    flow: id.as_u64(),
                    bytes: bytes as u64,
                }
            });
        id
    }

    /// Current max-min rate of `flow` in bits per second, or `None` if the
    /// flow is finished/unknown. Flushes any deferred reallocation first.
    pub fn flow_rate_bps(&mut self, flow: FlowId) -> Option<f64> {
        self.flush();
        self.get(flow).map(|f| f.rate_bps)
    }

    /// The earliest `(time, flow)` completion under current rates, if any
    /// flows are active.
    ///
    /// Peeks the projected-completion heap, discarding entries invalidated
    /// by rate changes or flow removal. The returned time is rounded up to
    /// a whole nanosecond strictly after the current instant when any
    /// bytes remain, guaranteeing forward progress.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        self.flush();
        self.peek_completion()
    }

    /// The earliest completion due at or before `now`, or `None` if no
    /// flow is due yet.
    ///
    /// Unlike [`FlowNet::next_completion`] this tolerates a deferred
    /// reallocation made up purely of removals: removals only *raise* the
    /// surviving rates, so the stale projections are upper bounds and an
    /// entry already due under them is certainly due under the exact
    /// rates. (Flows that only *became* due surface once the caller
    /// flushes, e.g. via `next_completion` — at the same instant, so
    /// nothing completes late.) Pending added flows force the flush,
    /// since extra contention could make a stale projection too early.
    pub fn next_due(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        if self.dirty_start {
            self.flush();
        }
        let (t, id) = self.peek_completion()?;
        (t <= now).then_some((t, id))
    }

    fn peek_completion(&mut self) -> Option<(SimTime, FlowId)> {
        loop {
            let &Reverse((time_ns, slot, epoch)) = self.completions.peek()?;
            let s = slot as usize;
            let Some(f) = self.slots[s].as_ref() else {
                self.completions.pop();
                continue;
            };
            if self.rate_epoch[s] != epoch {
                self.completions.pop();
                continue;
            }
            let id = FlowId::new(slot, self.generations[s]);
            let mut at = SimTime::from_nanos(time_ns).max(self.last_update);
            let elapsed = self.last_update.since(f.synced_at).as_secs_f64();
            let remaining_now = f.remaining_bytes - f.rate_bps / 8.0 * elapsed;
            if remaining_now > COMPLETION_EPSILON_BYTES && at == self.last_update {
                at += SimDuration::from_nanos(1);
            }
            return Some((at, id));
        }
    }

    /// Marks `flow` complete at time `now`, removes it, and recomputes the
    /// rates of its ripple component. Returns the flow's path (useful for
    /// latency lookups by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist or if a non-negligible number of
    /// bytes would still be outstanding at `now` (i.e. the caller completed
    /// it too early — a scheduling bug).
    pub fn complete_flow(&mut self, now: SimTime, flow: FlowId) -> Vec<LinkId> {
        self.advance_to(now);
        assert!(self.get(flow).is_some(), "completing unknown flow");
        materialize_slot(&mut self.slots, &mut self.links, now, flow.slot());
        let f = self.remove(flow).expect("completing unknown flow");
        // Tolerance scales with rate: one microsecond of transfer at the
        // flow's final rate absorbs the rounding of the ns-quantized clock.
        let tolerance = (f.rate_bps / 8.0) * 1e-6 + COMPLETION_EPSILON_BYTES;
        assert!(
            f.remaining_bytes <= tolerance,
            "flow {flow:?} completed early: {} bytes remaining (tolerance {tolerance})",
            f.remaining_bytes
        );
        self.reallocate_after_removal(&f.path);
        self.recorder
            .record_at(now.as_nanos(), trace::Scope::none(), || {
                trace::EventKind::FlowFinished {
                    flow: flow.as_u64(),
                    aborted: false,
                }
            });
        f.path
    }

    /// Aborts `flow` at time `now` without requiring it to have finished
    /// (e.g. the sending endpoint crashed). Progress up to `now` still
    /// counts toward link byte totals. Unknown flows are a silent no-op so
    /// callers don't need to track completion races.
    pub fn abort_flow(&mut self, now: SimTime, flow: FlowId) {
        self.advance_to(now);
        if self.get(flow).is_none() {
            return;
        }
        materialize_slot(&mut self.slots, &mut self.links, now, flow.slot());
        let f = self.remove(flow).expect("checked above");
        self.reallocate_after_removal(&f.path);
        self.recorder
            .record_at(now.as_nanos(), trace::Scope::none(), || {
                trace::EventKind::FlowFinished {
                    flow: flow.as_u64(),
                    aborted: true,
                }
            });
    }

    fn reallocate_after_removal(&mut self, path: &[LinkId]) {
        if self.dirty {
            self.stats.coalesced += 1;
        }
        let links = &self.links;
        self.scratch.frontier.extend(
            path.iter()
                .filter(|l| !links[l.0 as usize].transparent)
                .map(|l| l.0),
        );
        self.dirty = true;
    }

    fn remove(&mut self, id: FlowId) -> Option<Flow> {
        let slot = id.slot();
        if slot >= self.slots.len() || self.generations[slot] != id.generation() {
            return None;
        }
        let f = self.slots[slot].take()?;
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.rate_epoch[slot] = self.rate_epoch[slot].wrapping_add(1);
        self.free_slots.push(slot as u32);
        self.active_flows -= 1;
        if let Some(intern) = &mut self.intern {
            for l in &f.path {
                self.link_live[l.0 as usize] -= 1;
            }
            // The member entry goes stale in place; compact the class once
            // stale entries outnumber live ones (amortized O(1)).
            let cid = intern.class_of[slot] as usize;
            intern.class_live[cid] -= 1;
            if intern.class_members[cid].len() > 2 * intern.class_live[cid] as usize + 8 {
                let generations = &self.generations;
                intern.class_members[cid].retain(|&(s, g)| generations[s as usize] == g);
            }
        } else {
            // The adjacency entries go stale in place; compact a list once
            // its stale entries outnumber the live ones (amortized O(1) per
            // removal), so full-mode reallocations — which skip the
            // compacting traversal — still iterate mostly-live lists.
            for l in &f.path {
                let li = l.0 as usize;
                self.link_live[li] -= 1;
                if self.link_flows[li].len() > 2 * self.link_live[li] as usize + 8 {
                    let generations = &self.generations;
                    self.link_flows[li].retain(|&(s, g)| generations[s as usize] == g);
                }
            }
        }
        Some(f)
    }

    /// Advances the network clock to `now` (monotone; `now` may equal the
    /// previous update instant). O(1) when nothing is pending: flow
    /// progress and link byte totals are implied by rates and
    /// materialized lazily at rate boundaries. A deferred reallocation is
    /// flushed at the *old* instant first, so the exact rates govern the
    /// whole interval being skipped over.
    pub fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "FlowNet time moved backwards: {now:?} < {:?}",
            self.last_update
        );
        if now > self.last_update {
            self.flush();
            self.last_update = now;
        }
    }

    /// Number of reallocations performed (performance counter).
    pub fn realloc_count(&self) -> u64 {
        self.stats.count
    }

    /// Wall-clock nanoseconds spent reallocating (performance counter).
    pub fn realloc_nanos(&self) -> u64 {
        self.stats.nanos
    }

    /// (total flows visited, total heap pushes) across reallocations.
    pub fn realloc_work(&self) -> (u64, u64) {
        (self.stats.flows_visited, self.stats.heap_pushes)
    }

    /// All reallocation performance counters.
    pub fn realloc_stats(&self) -> ReallocStats {
        self.stats
    }

    /// Reference max-min allocation, recomputed from scratch by textbook
    /// progressive filling over the whole network, in flow-slot order.
    ///
    /// This is the oracle the incremental allocator is differentially
    /// tested against; it shares no state or code with
    /// [`FlowNet::start_flow`]'s ripple reallocation. O(rounds × links ×
    /// flows) and allocating — test/diagnostic use only.
    pub fn max_min_reference(&self) -> Vec<(FlowId, f64)> {
        let n_links = self.links.len();
        let mut residual: Vec<f64> = self.links.iter().map(|l| l.capacity_bps).collect();
        let mut frozen: Vec<bool> = vec![false; self.slots.len()];
        let mut rates: Vec<f64> = vec![0.0; self.slots.len()];
        let mut unfrozen = self.active_flows;
        while unfrozen > 0 {
            // Fair share of each link over its unfrozen flows.
            let mut counts = vec![0u32; n_links];
            for (s, f) in self.slots.iter().enumerate() {
                let Some(f) = f else { continue };
                if frozen[s] {
                    continue;
                }
                for l in &f.path {
                    counts[l.0 as usize] += 1;
                }
            }
            let bottleneck = (0..n_links)
                .filter(|&i| counts[i] > 0)
                .min_by(|&a, &b| {
                    let sa = residual[a] / counts[a] as f64;
                    let sb = residual[b] / counts[b] as f64;
                    sa.partial_cmp(&sb).expect("finite shares").then(a.cmp(&b))
                })
                .expect("unfrozen flows but no loaded link");
            let share = residual[bottleneck] / counts[bottleneck] as f64;
            for (s, f) in self.slots.iter().enumerate() {
                let Some(f) = f else { continue };
                if frozen[s] || !f.path.iter().any(|l| l.0 as usize == bottleneck) {
                    continue;
                }
                frozen[s] = true;
                rates[s] = share;
                unfrozen -= 1;
                for l in &f.path {
                    let j = l.0 as usize;
                    residual[j] = (residual[j] - share).max(0.0);
                }
            }
        }
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, f)| {
                f.as_ref()
                    .map(|_| (FlowId::new(s as u32, self.generations[s]), rates[s]))
            })
            .collect()
    }

    /// Ripple traversal: visit every link reachable from the seed
    /// frontier through shared flows, compacting each link's flow list
    /// and building the water-filling state (residual capacity, unfrozen
    /// count) as a side effect. After compaction the visited per-link
    /// adjacency lists hold exactly the live flows.
    ///
    /// If the resulting component covers most active flows the traversal
    /// degenerates to a full recomputation (counted in
    /// [`ReallocStats::full`]).
    fn ripple_traversal(&mut self, scratch: &mut ReallocScratch, mark: u32) {
        let mut qi = 0;
        while qi < scratch.frontier.len() {
            let li = scratch.frontier[qi] as usize;
            qi += 1;
            if scratch.link_mark[li] == mark {
                continue;
            }
            scratch.link_mark[li] = mark;
            scratch.touched.push(li as u32);
            scratch.residual[li] = self.links[li].capacity_bps;
            scratch.count[li] = 0;
            // Compact the adjacency list in place while enumerating it.
            let mut list = std::mem::take(&mut self.link_flows[li]);
            list.retain(|&(slot, generation)| {
                let s = slot as usize;
                // A matching generation implies the slot is occupied by
                // this very flow: removal always bumps the generation.
                if self.generations[s] != generation {
                    return false; // stale: flow since removed
                }
                debug_assert!(self.slots[s].is_some(), "live generation, empty slot");
                scratch.count[li] += 1;
                if scratch.flow_mark[s] != mark {
                    scratch.flow_mark[s] = mark;
                    scratch.comp.push(slot);
                    for l in &self.slots[s].as_ref().expect("live flow").path {
                        let j = l.0 as usize;
                        if !self.links[j].transparent && scratch.link_mark[j] != mark {
                            scratch.frontier.push(l.0);
                        }
                    }
                }
                true
            });
            self.link_flows[li] = list;
        }

        // Fallback: a ripple covering most of the network does the same
        // work as a full recomputation plus traversal overhead, so extend
        // it to everything (and count it, for the perf report).
        if scratch.comp.len() * 4 > self.active_flows * 3 && scratch.comp.len() < self.active_flows
        {
            self.stats.full += 1;
            for (s, f) in self.slots.iter().enumerate() {
                let Some(f) = f else { continue };
                if scratch.flow_mark[s] == mark {
                    continue;
                }
                scratch.flow_mark[s] = mark;
                scratch.comp.push(s as u32);
                for l in &f.path {
                    let j = l.0 as usize;
                    if !self.links[j].transparent && scratch.link_mark[j] != mark {
                        scratch.frontier.push(l.0);
                    }
                }
            }
            // Drain the extended frontier with the same loop body.
            while qi < scratch.frontier.len() {
                let li = scratch.frontier[qi] as usize;
                qi += 1;
                if scratch.link_mark[li] == mark {
                    continue;
                }
                scratch.link_mark[li] = mark;
                scratch.touched.push(li as u32);
                scratch.residual[li] = self.links[li].capacity_bps;
                scratch.count[li] = 0;
                let mut list = std::mem::take(&mut self.link_flows[li]);
                list.retain(|&(slot, generation)| {
                    let s = slot as usize;
                    if self.generations[s] != generation {
                        return false;
                    }
                    scratch.count[li] += 1;
                    debug_assert_eq!(
                        scratch.flow_mark[s], mark,
                        "full fallback visited a link with an unmarked flow"
                    );
                    true
                });
                self.link_flows[li] = list;
            }
        }
        scratch.frontier.clear();
    }

    /// Interned variant of [`FlowNet::ripple_traversal`]: walks the
    /// class/link sharing graph instead of the flow/link graph, so a link
    /// carrying k same-path flows is expanded through once. `comp`
    /// collects class ids; per-link unfrozen counts are still *flow*
    /// counts (fair shares divide by flows, not classes). Returns the
    /// number of live flows in the component.
    fn ripple_traversal_interned(
        &mut self,
        intern: &mut InternState,
        scratch: &mut ReallocScratch,
        mark: u32,
    ) -> usize {
        let mut remaining = 0usize;
        let mut qi = 0;
        while qi < scratch.frontier.len() {
            let li = scratch.frontier[qi] as usize;
            qi += 1;
            if scratch.link_mark[li] == mark {
                continue;
            }
            scratch.link_mark[li] = mark;
            scratch.touched.push(li as u32);
            scratch.residual[li] = self.links[li].capacity_bps;
            scratch.count[li] = 0;
            for &cid in &intern.link_classes[li] {
                let c = cid as usize;
                let live = intern.class_live[c];
                if live == 0 {
                    continue; // a path no live flow currently uses
                }
                scratch.count[li] += live;
                if intern.class_mark[c] != mark {
                    intern.class_mark[c] = mark;
                    scratch.comp.push(cid);
                    remaining += live as usize;
                    for l in &intern.class_path[c] {
                        let j = l.0 as usize;
                        if !self.links[j].transparent && scratch.link_mark[j] != mark {
                            scratch.frontier.push(l.0);
                        }
                    }
                }
            }
        }
        scratch.frontier.clear();
        remaining
    }

    /// Recomputes rates by progressive filling (max-min fairness) over the
    /// ripple component seeded from `scratch.frontier`, implemented as
    /// heap-based water-filling.
    ///
    /// The traversal walks the flow/link sharing graph from the seed links
    /// and collects the connected component; restricting water-filling to
    /// it is exact because no bandwidth crosses component boundaries. If
    /// the component covers most active flows the traversal degenerates to
    /// a full recomputation (counted in [`ReallocStats::full`]), and once
    /// that becomes the norm the allocator flips into full mode: the
    /// traversal is skipped outright in favor of linear scans over the
    /// slot table and the incrementally-maintained per-link live counts.
    /// A full recomputation is always exact, so the mode switch is purely
    /// a performance decision and cannot change the allocation.
    ///
    /// Within the fill, bottleneck candidates are consumed in ascending
    /// `(fair share, link)` order from a pre-sorted array, with lazy
    /// invalidation: freezing the bottleneck's flows only *raises* the
    /// shares of the links they crossed, so a stale (too-low) entry is
    /// detected on consumption and requeued at its current share via a
    /// small overflow heap. Total work is `O(component path length +
    /// links log links)` per recomputation.
    ///
    /// Flows whose rate actually changed get a fresh projected-completion
    /// entry; unchanged flows keep theirs (their absolute completion
    /// instant is rate- and progress-invariant between rate boundaries).
    fn reallocate(&mut self) {
        let t0 = std::time::Instant::now();
        self.stats.count += 1;
        let num_links = self.links.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        if scratch.count.len() < num_links {
            scratch.residual.resize(num_links, 0.0);
            scratch.count.resize(num_links, 0);
            scratch.link_mark.resize(num_links, 0);
        }
        if scratch.flow_mark.len() < self.slots.len() {
            scratch.flow_mark.resize(self.slots.len(), 0);
            scratch.frozen_mark.resize(self.slots.len(), 0);
        }
        if scratch.mark == u32::MAX {
            scratch.link_mark.fill(0);
            scratch.flow_mark.fill(0);
            scratch.frozen_mark.fill(0);
            scratch.mark = 0;
        }
        scratch.mark += 1;
        let mark = scratch.mark;
        scratch.comp.clear();
        scratch.changed.clear();
        scratch.touched.clear();

        // Phase 1: build the component and the water-filling state
        // (residual capacity, unfrozen count per link).
        //
        // In full mode the recent ripples covered (nearly) every flow, so
        // the traversal would just rediscover the whole network; instead
        // the component is a linear scan of the slot table, and the link
        // state comes straight from the incrementally-maintained per-link
        // live counts — no adjacency iteration at all. A real traversal
        // still runs every 64th reallocation to detect when components
        // shrink back below the threshold.
        let mut intern = self.intern.take();
        let probe = self.stats.count.is_multiple_of(64);
        let mut remaining;
        if let Some(intern) = intern.as_mut() {
            // Interned mode traverses the class graph; components stay
            // small by construction (transparent links don't connect
            // pods), so there is no full-mode shortcut to maintain.
            remaining = self.ripple_traversal_interned(intern, &mut scratch, mark);
            self.stats.flows_visited += remaining as u64;
        } else if self.full_mode && !probe {
            self.stats.full += 1;
            scratch.frontier.clear();
            for (s, f) in self.slots.iter().enumerate() {
                if f.is_some() {
                    scratch.comp.push(s as u32);
                }
            }
            for li in 0..num_links {
                if self.link_live[li] > 0 && !self.links[li].transparent {
                    scratch.link_mark[li] = mark;
                    scratch.touched.push(li as u32);
                    scratch.residual[li] = self.links[li].capacity_bps;
                    scratch.count[li] = self.link_live[li];
                }
            }
            remaining = scratch.comp.len();
            self.stats.flows_visited += scratch.comp.len() as u64;
        } else {
            self.ripple_traversal(&mut scratch, mark);
            // Stay in (or enter) full mode while ripples keep covering
            // most of the network. The absolute floor keeps tiny
            // components — which trivially cover "most" of a near-idle
            // network — from latching the mode on ahead of a ramp-up of
            // many independent small components.
            self.full_mode =
                scratch.comp.len() >= 128 && scratch.comp.len() * 4 > self.active_flows * 3;
            remaining = scratch.comp.len();
            self.stats.flows_visited += scratch.comp.len() as u64;
        }
        self.stats.link_visits += scratch.touched.len() as u64;

        // Phase 2: heap-based water-filling over the component. f64 shares
        // are ordered through their bit pattern (finite, non-negative
        // values compare correctly as u64s). Freezing a bottleneck's flows
        // only *raises* the shares of the other links they crossed, so
        // every queued key is a lower bound on its link's current share:
        // instead of eagerly re-pushing each affected link per freeze
        // (O(flows x path) heap traffic), a popped entry is checked
        // against the authoritative share and lazily re-queued once if it
        // went stale.
        let share_key = |s: f64| -> u64 { s.to_bits() };
        let mut sorted = std::mem::take(&mut scratch.sorted_buf);
        sorted.clear();
        for &li in &scratch.touched {
            let i = li as usize;
            if scratch.count[i] > 0 {
                sorted.push((share_key(scratch.residual[i] / scratch.count[i] as f64), li));
            }
        }
        // One sort beats heapifying + popping: the initial candidates are
        // consumed in `(key, link)` order with O(1) advances, and only the
        // few entries that go stale pay for real heap operations. The
        // merged consumption order is identical to a single min-heap's, so
        // the freeze order (and tie-breaking) is unchanged.
        sorted.sort_unstable();
        let mut requeue_buf = std::mem::take(&mut scratch.requeue_buf);
        requeue_buf.clear();
        let mut requeue: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::from(requeue_buf);
        let mut idx = 0;
        let mut work_pushes: u64 = 0;
        while remaining > 0 {
            let (key, link) = match (sorted.get(idx), requeue.peek()) {
                (Some(&s), Some(&Reverse(r))) if s <= r => {
                    idx += 1;
                    s
                }
                (_, Some(&Reverse(r))) => {
                    requeue.pop();
                    r
                }
                (Some(&s), None) => {
                    idx += 1;
                    s
                }
                (None, None) => unreachable!("unfrozen flows but no bottleneck candidates"),
            };
            let i = link as usize;
            if scratch.count[i] == 0 {
                continue; // every flow on it froze via other bottlenecks
            }
            let share = scratch.residual[i] / scratch.count[i] as f64;
            let current = share_key(share);
            if current > key {
                // The share rose after this entry was queued; re-queue at
                // the current value and keep looking for the true minimum.
                work_pushes += 1;
                requeue.push(Reverse((current, link)));
                continue;
            }
            if let Some(intern) = intern.as_mut() {
                // Freeze whole classes: every member shares the path, so
                // max-min gives them identical rates and they all freeze
                // at the same bottleneck instant.
                let on_link = std::mem::take(&mut intern.link_classes[i]);
                for &cid in &on_link {
                    let c = cid as usize;
                    let live = intern.class_live[c];
                    if live == 0 || intern.class_frozen[c] == mark {
                        continue; // dead path, or frozen via another link
                    }
                    intern.class_frozen[c] = mark;
                    remaining -= live as usize;
                    let members = std::mem::take(&mut intern.class_members[c]);
                    for &(slot, generation) in &members {
                        let s = slot as usize;
                        if self.generations[s] != generation {
                            continue; // stale member of a removed flow
                        }
                        let f = self.slots[s].as_ref().expect("live member");
                        if f.rate_bps.to_bits() != share.to_bits() {
                            materialize_slot(&mut self.slots, &mut self.links, self.last_update, s);
                            self.slots[s].as_mut().expect("live member").rate_bps = share;
                            scratch.changed.push(slot);
                        }
                    }
                    intern.class_members[c] = members;
                    // One fused subtraction per class instead of one per
                    // member flow.
                    for l in &intern.class_path[c] {
                        let j = l.0 as usize;
                        if self.links[j].transparent {
                            continue;
                        }
                        debug_assert_eq!(
                            scratch.link_mark[j], mark,
                            "component class crosses an unvisited link"
                        );
                        scratch.residual[j] = (scratch.residual[j] - share * live as f64).max(0.0);
                        scratch.count[j] -= live;
                    }
                }
                intern.link_classes[i] = on_link;
                continue;
            }
            // Freeze every unfrozen flow crossing the bottleneck,
            // straight off the adjacency list (the generation check skips
            // entries of removed flows, which full mode leaves in place).
            // Flows keep their prior rate until actually frozen, so a flow
            // whose allocation is unchanged is never written at all: no
            // materialization, no new completion projection.
            let on_link = std::mem::take(&mut self.link_flows[i]);
            for &(slot, generation) in &on_link {
                let s = slot as usize;
                if self.generations[s] != generation || scratch.frozen_mark[s] == mark {
                    continue; // stale entry, or frozen via another link
                }
                scratch.frozen_mark[s] = mark;
                remaining -= 1;
                let f = self.slots[s].as_ref().expect("flow disappeared");
                if f.rate_bps.to_bits() != share.to_bits() {
                    // The rate switches at this boundary: bank the bytes
                    // moved at the old rate before overwriting it.
                    materialize_slot(&mut self.slots, &mut self.links, self.last_update, s);
                    self.slots[s].as_mut().expect("flow disappeared").rate_bps = share;
                    scratch.changed.push(slot);
                }
                let f = self.slots[s].as_ref().expect("flow disappeared");
                for &l in &f.path {
                    let j = l.0 as usize;
                    if self.links[j].transparent {
                        continue; // never part of the fill
                    }
                    debug_assert_eq!(
                        scratch.link_mark[j], mark,
                        "component flow crosses an unvisited link"
                    );
                    scratch.residual[j] = (scratch.residual[j] - share).max(0.0);
                    scratch.count[j] -= 1;
                }
            }
            self.link_flows[i] = on_link;
        }
        scratch.sorted_buf = sorted;
        scratch.requeue_buf = requeue.into_vec();
        self.stats.heap_pushes += work_pushes;

        // Phase 3: re-project completions for the flows whose rate
        // changed (materialized at the boundary during the fill, so the
        // projection runs from exact remaining bytes). Unchanged flows
        // keep their heap entry: with the same rate and linearly
        // decreasing remaining bytes, the projected absolute completion
        // instant is identical.
        for &slot in &scratch.changed {
            let s = slot as usize;
            let f = self.slots[s].as_ref().expect("live flow");
            self.stats.rate_changes += 1;
            if self.recorder.is_enabled() {
                let flow = FlowId::new(slot, self.generations[s]).as_u64();
                let gbps = f.rate_bps / 1e9;
                self.recorder
                    .record_at(self.last_update.as_nanos(), trace::Scope::none(), || {
                        trace::EventKind::FlowRateChanged { flow, gbps }
                    });
            }
            self.rate_epoch[s] = self.rate_epoch[s].wrapping_add(1);
            let secs = (f.remaining_bytes * 8.0) / f.rate_bps;
            let mut at = self.last_update + SimDuration::from_secs_f64(secs);
            if f.remaining_bytes > COMPLETION_EPSILON_BYTES && at == self.last_update {
                at += SimDuration::from_nanos(1);
            }
            self.completions
                .push(Reverse((at.as_nanos(), slot, self.rate_epoch[s])));
        }

        // Compact the projection heap once stale entries dominate. Rate
        // churn leaves one dead entry per re-projection, and popping them
        // lazily from a heap much larger than the live flow set costs a
        // cache miss per sift-down level; filtering keeps the heap
        // O(active flows) for amortized O(1) per push (a rebuild costs
        // one pass over entries that each paid for themselves on insert).
        if self.completions.len() > 4 * self.active_flows + 64 {
            self.stats.heap_compactions += 1;
            let mut entries = std::mem::take(&mut self.completions).into_vec();
            entries.retain(|&Reverse((_, slot, epoch))| {
                let s = slot as usize;
                self.rate_epoch[s] == epoch && self.slots[s].is_some()
            });
            self.completions = BinaryHeap::from(entries);
        }

        self.intern = intern;
        self.scratch = scratch;
        self.stats.nanos += t0.elapsed().as_nanos() as u64;
    }
}

impl fmt::Debug for FlowNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowNet")
            .field("links", &self.links.len())
            .field("flows", &self.active_flows)
            .field("last_update", &self.last_update)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(net: &mut FlowNet, cap: f64) -> LinkId {
        net.add_link(cap, SimDuration::from_micros(1))
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 100.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 125_000_000.0); // 125 MB = 1 Gb... at 100Gb/s -> 10ms
        assert_eq!(net.flow_rate_bps(f), Some(100e9));
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t.as_nanos(), 10_000_000);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        let b = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        assert_eq!(net.flow_rate_bps(a), Some(5e9));
        assert_eq!(net.flow_rate_bps(b), Some(5e9));
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0); // 1 ms at 10 Gb/s alone
        let b = net.start_flow(SimTime::ZERO, vec![l], 12_500_000.0);
        let (t1, first) = net.next_completion().unwrap();
        assert_eq!(first, a); // equal shares; a is smaller so finishes first
        net.complete_flow(t1, a);
        assert_eq!(net.flow_rate_bps(b), Some(10e9));
        let (t2, second) = net.next_completion().unwrap();
        assert_eq!(second, b);
        net.complete_flow(t2, b);
        assert_eq!(net.num_flows(), 0);
        // a: 2 ms at half rate. b: 1.25 MB moved in those 2 ms, remaining
        // 11.25 MB at full rate = 9 ms; total 11 ms.
        assert_eq!(t1.as_nanos(), 2_000_000);
        assert_eq!(t2.as_nanos(), 11_000_000);
    }

    #[test]
    fn max_min_is_not_just_equal_split() {
        // Flow A crosses a narrow link; flows B, C share a wide link with A's
        // exit. Max-min: A limited to 1 Gb/s by the narrow link; B and C
        // split the remainder of the wide link (4.5 each), not 10/3 each.
        let mut net = FlowNet::new();
        let narrow = gb(&mut net, 1.0);
        let wide = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![narrow, wide], 1e9);
        let b = net.start_flow(SimTime::ZERO, vec![wide], 1e9);
        let c = net.start_flow(SimTime::ZERO, vec![wide], 1e9);
        assert_eq!(net.flow_rate_bps(a), Some(1e9));
        assert_eq!(net.flow_rate_bps(b), Some(4.5e9));
        assert_eq!(net.flow_rate_bps(c), Some(4.5e9));
    }

    #[test]
    fn bytes_carried_accumulates() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0);
        let (t, _) = net.next_completion().unwrap();
        net.complete_flow(t, f);
        assert!((net.bytes_carried(l) - 1_250_000.0).abs() < 1.0);
    }

    #[test]
    fn bytes_carried_includes_unmaterialized_progress() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 8.0); // 1 GB/s
        let _f = net.start_flow(SimTime::ZERO, vec![l], 10_000_000.0);
        net.advance_to(SimTime::from_nanos(2_000_000)); // 2 ms -> 2 MB moved
        assert!((net.bytes_carried(l) - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn path_latency_sums_hops() {
        let mut net = FlowNet::new();
        let a = net.add_link(10.0, SimDuration::from_micros(2));
        let b = net.add_link(10.0, SimDuration::from_nanos(500));
        assert_eq!(net.path_latency(&[a, b]), SimDuration::from_nanos(2_500));
    }

    #[test]
    fn zero_byte_flow_completes_immediately_but_monotonically() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::from_nanos(100), vec![l], 0.0);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!(t >= SimTime::from_nanos(100));
        net.complete_flow(t, f);
    }

    #[test]
    #[should_panic(expected = "path must contain")]
    fn empty_path_rejected() {
        let mut net = FlowNet::new();
        net.start_flow(SimTime::ZERO, vec![], 10.0);
    }

    #[test]
    #[should_panic(expected = "completed early")]
    fn early_completion_is_a_bug() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let f = net.start_flow(SimTime::ZERO, vec![l], 1e9);
        net.complete_flow(SimTime::from_nanos(10), f);
    }

    #[test]
    fn staggered_arrivals_update_progress_correctly() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 8.0); // 1 GB/s
        let a = net.start_flow(SimTime::ZERO, vec![l], 3_000_000.0); // 3 ms alone
                                                                     // After 1 ms, 1 MB moved; 2 MB left. Second flow arrives.
        let b = net.start_flow(SimTime::from_nanos(1_000_000), vec![l], 10_000_000.0);
        let _ = b;
        // a now runs at 0.5 GB/s: 2 MB takes 4 ms more -> completes at 5 ms.
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, a);
        assert_eq!(t.as_nanos(), 5_000_000);
    }

    #[test]
    fn ripple_reallocation_leaves_disjoint_flows_untouched() {
        // Two flows on link X, one on disjoint link Y. Churn on X must not
        // change Y's flow rate (nor its rate epoch, i.e. no heap churn).
        let mut net = FlowNet::new();
        let x = gb(&mut net, 10.0);
        let y = gb(&mut net, 10.0);
        let fy = net.start_flow(SimTime::ZERO, vec![y], 1e8);
        let changes_after_y = net.realloc_stats().rate_changes;
        let fx1 = net.start_flow(SimTime::ZERO, vec![x], 1e6);
        let _fx2 = net.start_flow(SimTime::ZERO, vec![x], 1e6);
        assert_eq!(net.flow_rate_bps(fy), Some(10e9));
        assert_eq!(net.flow_rate_bps(fx1), Some(5e9));
        net.abort_flow(SimTime::from_nanos(100), fx1);
        assert_eq!(net.flow_rate_bps(fy), Some(10e9));
        // Only X-side flows changed rate across the churn: fx1 alone at
        // 10e9, then fx1+fx2 at 5e9 each, then fx2 back to 10e9 on the
        // abort. fy never re-rates.
        assert_eq!(net.realloc_stats().rate_changes - changes_after_y, 4);
    }

    #[test]
    fn incremental_rates_match_reference_after_churn() {
        // Overlapping paths through a shared middle link, with staggered
        // arrivals and one abort: incremental rates must equal a fresh
        // full progressive filling at every step.
        let mut net = FlowNet::new();
        let l0 = gb(&mut net, 4.0);
        let mid = gb(&mut net, 10.0);
        let l2 = gb(&mut net, 6.0);
        let l3 = gb(&mut net, 3.0);
        let mut flows = vec![
            net.start_flow(SimTime::ZERO, vec![l0, mid], 1e9),
            net.start_flow(SimTime::ZERO, vec![mid, l2], 1e9),
            net.start_flow(SimTime::ZERO, vec![l3], 1e9),
        ];
        flows.push(net.start_flow(SimTime::from_nanos(50), vec![mid], 1e9));
        net.abort_flow(SimTime::from_nanos(90), flows[1]);
        flows.push(net.start_flow(SimTime::from_nanos(120), vec![l2, mid, l0], 1e9));
        for (id, want) in net.max_min_reference() {
            let got = net.flow_rate_bps(id).expect("oracle lists live flows");
            assert!(
                (got - want).abs() <= want * 1e-9,
                "flow {id:?}: incremental {got} vs reference {want}"
            );
        }
    }

    #[test]
    fn completion_heap_survives_slot_reuse() {
        // Abort a flow, reuse its slot for a different-size flow, and make
        // sure the stale projection never surfaces.
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1_250_000.0); // would finish at 1 ms
        net.abort_flow(SimTime::from_nanos(10), a);
        let b = net.start_flow(SimTime::from_nanos(10), vec![l], 12_500_000.0);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, b);
        assert_eq!(t.as_nanos(), 10_000_010);
        assert_eq!(net.flow_rate_bps(a), None);
    }

    #[test]
    fn next_completion_is_idempotent() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let _a = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        let _b = net.start_flow(SimTime::ZERO, vec![l], 2e6);
        let first = net.next_completion();
        assert_eq!(first, net.next_completion());
        assert_eq!(first, net.next_completion());
    }

    #[test]
    fn transparent_uplink_is_allocation_neutral() {
        // Two hosts feed a full-bisection uplink (capacity = sum of the
        // feeders): excluding it from the fill must not change any rate,
        // including the exact-tie case where the uplink saturates.
        let rates = |transparent: bool| {
            let mut net = FlowNet::new();
            let tx0 = gb(&mut net, 10.0);
            let tx1 = gb(&mut net, 10.0);
            let up = gb(&mut net, 20.0);
            if transparent {
                net.set_link_transparent(up);
            }
            let ids = [
                net.start_flow(SimTime::ZERO, vec![tx0, up], 1e6),
                net.start_flow(SimTime::ZERO, vec![tx1, up], 2e6),
                net.start_flow(SimTime::ZERO, vec![tx1, up], 3e6),
            ];
            ids.map(|id| net.flow_rate_bps(id).unwrap())
        };
        assert_eq!(rates(true), rates(false));
    }

    #[test]
    fn transparent_link_ripple_stays_in_its_pod() {
        // Hosts a, b share an uplink but no edge link: with the uplink
        // transparent, churn on a's side must not re-rate b's flow.
        let mut net = FlowNet::new();
        let a_tx = gb(&mut net, 10.0);
        let b_tx = gb(&mut net, 10.0);
        let up = gb(&mut net, 20.0);
        net.set_link_transparent(up);
        let fb = net.start_flow(SimTime::ZERO, vec![b_tx, up], 1e8);
        let changes_after_b = net.realloc_stats().rate_changes;
        let fa1 = net.start_flow(SimTime::ZERO, vec![a_tx, up], 1e6);
        let _fa2 = net.start_flow(SimTime::ZERO, vec![a_tx, up], 1e6);
        assert_eq!(net.flow_rate_bps(fb), Some(10e9));
        assert_eq!(net.flow_rate_bps(fa1), Some(5e9));
        net.abort_flow(SimTime::from_nanos(100), fa1);
        assert_eq!(net.flow_rate_bps(fb), Some(10e9));
        // Only a's flows re-rated; b never did.
        assert_eq!(net.realloc_stats().rate_changes - changes_after_b, 4);
    }

    #[test]
    fn transparent_link_still_counts_latency_and_bytes() {
        let mut net = FlowNet::new();
        let tx = net.add_link(8.0, SimDuration::from_micros(1)); // 1 GB/s
        let up = net.add_link(16.0, SimDuration::from_micros(3));
        net.set_link_transparent(up);
        assert_eq!(
            net.path_latency(&[tx, up]),
            SimDuration::from_micros(4),
            "latency must include transparent hops"
        );
        let f = net.start_flow(SimTime::ZERO, vec![tx, up], 2_000_000.0);
        net.advance_to(SimTime::from_nanos(1_000_000)); // 1 ms -> 1 MB
        assert!((net.bytes_carried(up) - 1_000_000.0).abs() < 1.0);
        let (t, _) = net.next_completion().unwrap();
        net.complete_flow(t, f);
        assert!((net.bytes_carried(up) - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn interned_rates_match_reference_through_churn() {
        // Same churn script as `incremental_rates_match_reference_after_churn`
        // but with path interning on (including two identical-path flows):
        // rates must still match the textbook oracle.
        let mut net = FlowNet::new();
        net.set_interning(true);
        let l0 = gb(&mut net, 4.0);
        let mid = gb(&mut net, 10.0);
        let l2 = gb(&mut net, 6.0);
        let l3 = gb(&mut net, 3.0);
        let mut flows = vec![
            net.start_flow(SimTime::ZERO, vec![l0, mid], 1e9),
            net.start_flow(SimTime::ZERO, vec![mid, l2], 1e9),
            net.start_flow(SimTime::ZERO, vec![mid, l2], 2e9), // same path as above
            net.start_flow(SimTime::ZERO, vec![l3], 1e9),
        ];
        flows.push(net.start_flow(SimTime::from_nanos(50), vec![mid], 1e9));
        net.abort_flow(SimTime::from_nanos(90), flows[1]);
        flows.push(net.start_flow(SimTime::from_nanos(120), vec![l2, mid, l0], 1e9));
        for (id, want) in net.max_min_reference() {
            let got = net.flow_rate_bps(id).expect("oracle lists live flows");
            assert!(
                (got - want).abs() <= want * 1e-9,
                "flow {id:?}: interned {got} vs reference {want}"
            );
        }
        // Drain to empty: completions must all surface despite class
        // bookkeeping.
        while let Some((t, f)) = net.next_completion() {
            net.complete_flow(t, f);
        }
        assert_eq!(net.num_flows(), 0);
    }

    #[test]
    fn interned_identical_paths_share_one_class_visit() {
        // k same-path flows: each reallocation visits one class, so
        // flows_visited grows by k (members re-rated) but the traversal
        // is O(1) in k — link_visits per realloc stays at the path length.
        let mut net = FlowNet::new();
        net.set_interning(true);
        let a = gb(&mut net, 10.0);
        let b = gb(&mut net, 10.0);
        for _ in 0..16 {
            let _ = net.start_flow(SimTime::ZERO, vec![a, b], 1e6);
        }
        let _ = net.next_completion();
        let s = net.realloc_stats();
        assert_eq!(s.count, 1, "same-instant starts coalesce into one fill");
        assert_eq!(s.coalesced, 15);
        assert_eq!(s.link_visits, 2, "one visit per path link, not per flow");
    }

    #[test]
    fn same_instant_churn_coalesces_into_one_reallocation() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let _a = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        let _b = net.start_flow(SimTime::ZERO, vec![l], 2e6);
        let _c = net.start_flow(SimTime::ZERO, vec![l], 3e6);
        let _ = net.next_completion();
        let s = net.realloc_stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.coalesced, 2);
    }

    #[test]
    #[should_panic(expected = "non-transparent")]
    fn all_transparent_path_rejected() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        net.set_link_transparent(l);
        net.start_flow(SimTime::ZERO, vec![l], 1e6);
    }

    #[test]
    #[should_panic(expected = "before the first flow")]
    fn interning_after_flows_rejected() {
        let mut net = FlowNet::new();
        let l = gb(&mut net, 10.0);
        let _ = net.start_flow(SimTime::ZERO, vec![l], 1e6);
        net.set_interning(true);
    }
}
