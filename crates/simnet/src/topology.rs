//! Datacenter topologies, mapped onto [`FlowNet`] links.
//!
//! Every node gets a dedicated transmit link (host → fabric) and receive
//! link (fabric → host), making NICs full-duplex exactly as the paper
//! emphasises ("a 100Gbps NIC can potentially send and receive 100Gbps
//! concurrently", §4.3). Three shapes cover the paper's clusters:
//!
//! - [`Topology::flat`] — single non-blocking switch, full bisection
//!   bandwidth (Fractus: 16 nodes, 100 Gb/s; Stampede-like: 40 Gb/s).
//! - [`Topology::oversubscribed_tor`] — racks whose top-of-rack uplinks are
//!   slower than the sum of their hosts (Apt: heavy cross-rack load
//!   degrades to ~16 Gb/s per host).
//! - [`Topology::two_tier`] — a two-stage fabric with per-pod uplinks,
//!   standing in for Sierra's federated fat-tree.

use crate::flow::{FlowNet, LinkId};
use crate::time::SimDuration;

/// Per-node link endpoints.
#[derive(Clone, Copy, Debug)]
struct NodePorts {
    tx: LinkId,
    rx: LinkId,
    rack: u32,
}

/// Per-rack aggregation links (absent in flat topologies).
#[derive(Clone, Copy, Debug)]
struct RackPorts {
    up: LinkId,
    down: LinkId,
}

/// A named topology over a [`FlowNet`].
///
/// # Examples
///
/// ```
/// use simnet::{FlowNet, Topology, SimDuration};
///
/// let mut net = FlowNet::new();
/// let topo = Topology::flat(&mut net, 4, 100.0, SimDuration::from_micros(1));
/// let path = topo.path(0, 3);
/// assert_eq!(path.len(), 2); // sender uplink + receiver downlink
/// ```
#[derive(Debug)]
pub struct Topology {
    nodes: Vec<NodePorts>,
    racks: Vec<RackPorts>,
}

impl Topology {
    /// A single non-blocking switch: every pair of nodes has a one-hop path
    /// and the fabric has full bisection bandwidth.
    pub fn flat(net: &mut FlowNet, nodes: usize, link_gbps: f64, latency: SimDuration) -> Self {
        assert!(nodes >= 1, "topology needs at least one node");
        // Split the one-hop latency across the two links of a path.
        let half = SimDuration::from_nanos(latency.as_nanos() / 2);
        let nodes = (0..nodes)
            .map(|_| NodePorts {
                tx: net.add_link(link_gbps, half),
                rx: net.add_link(link_gbps, half),
                rack: 0,
            })
            .collect();
        Topology {
            nodes,
            racks: Vec::new(),
        }
    }

    /// Like [`Topology::flat`], but with an individual link speed per node
    /// — used to study one slow NIC dragging on a multicast (paper §4.5
    /// item 2).
    pub fn flat_per_node(net: &mut FlowNet, gbps: &[f64], latency: SimDuration) -> Self {
        assert!(!gbps.is_empty(), "topology needs at least one node");
        let half = SimDuration::from_nanos(latency.as_nanos() / 2);
        let nodes = gbps
            .iter()
            .map(|&g| NodePorts {
                tx: net.add_link(g, half),
                rx: net.add_link(g, half),
                rack: 0,
            })
            .collect();
        Topology {
            nodes,
            racks: Vec::new(),
        }
    }

    /// Racks of `per_rack` hosts behind an oversubscribed top-of-rack
    /// uplink of `uplink_gbps` (each direction). Intra-rack traffic never
    /// touches the uplink.
    pub fn oversubscribed_tor(
        net: &mut FlowNet,
        racks: usize,
        per_rack: usize,
        host_gbps: f64,
        uplink_gbps: f64,
        latency: SimDuration,
    ) -> Self {
        assert!(
            racks >= 1 && per_rack >= 1,
            "need at least one rack and host"
        );
        let half = SimDuration::from_nanos(latency.as_nanos() / 2);
        let mut nodes = Vec::with_capacity(racks * per_rack);
        let mut rack_ports = Vec::with_capacity(racks);
        for r in 0..racks {
            rack_ports.push(RackPorts {
                up: net.add_link(uplink_gbps, half),
                down: net.add_link(uplink_gbps, half),
            });
            for _ in 0..per_rack {
                nodes.push(NodePorts {
                    tx: net.add_link(host_gbps, half),
                    rx: net.add_link(host_gbps, half),
                    rack: r as u32,
                });
            }
        }
        Topology {
            nodes,
            racks: rack_ports,
        }
    }

    /// A two-stage fabric: pods with generous (possibly full-bisection)
    /// uplinks. Structurally identical to [`Topology::oversubscribed_tor`];
    /// the distinction is intent — pass `uplink_gbps >= per_pod * host_gbps`
    /// for a non-blocking fat-tree stand-in.
    pub fn two_tier(
        net: &mut FlowNet,
        pods: usize,
        per_pod: usize,
        host_gbps: f64,
        uplink_gbps: f64,
        latency: SimDuration,
    ) -> Self {
        Self::oversubscribed_tor(net, pods, per_pod, host_gbps, uplink_gbps, latency)
    }

    /// A non-blocking (full-bisection) fat-tree: pods of `per_pod` hosts
    /// whose aggregation links are provisioned at exactly
    /// `per_pod * host_gbps` per direction and *declared transparent* to
    /// the allocator ([`FlowNet::set_link_transparent`]). The aggregation
    /// tier can then never be a max-min bottleneck, so rate churn on a
    /// host edge link never ripples across pod boundaries — the
    /// structural fact the datacenter-scale kernel exploits. Paths,
    /// latencies, and byte accounting are identical to
    /// [`Topology::two_tier`] with the same uplink capacity.
    pub fn fat_tree(
        net: &mut FlowNet,
        pods: usize,
        per_pod: usize,
        host_gbps: f64,
        latency: SimDuration,
    ) -> Self {
        let uplink_gbps = host_gbps * per_pod as f64;
        let topo = Self::oversubscribed_tor(net, pods, per_pod, host_gbps, uplink_gbps, latency);
        for rack in &topo.racks {
            net.set_link_transparent(rack.up);
            net.set_link_transparent(rack.down);
        }
        topo
    }

    /// A geo-replicated deployment: `sites` datacenters of `per_site`
    /// hosts each, every site behind a pair of WAN links (one per
    /// direction) of `wan_gbps`. Intra-site paths see `lan_latency`
    /// end to end; cross-site paths see `wan_latency` — the honest
    /// multi-millisecond RTTs that make geo-replication a different
    /// regime from the paper's single-cluster fabrics (§2.2 assumes a
    /// lossless local fabric; SDR-RDMA's planetary-scale argument does
    /// not). WAN links are deliberately *not* transparent: they are
    /// real, oversubscribable bottlenecks, and [`Topology::wan_links`]
    /// exposes them so a fault profile can target exactly the lossy
    /// wide-area segment.
    ///
    /// # Panics
    ///
    /// Panics if `wan_latency < lan_latency` — the WAN hop cannot make
    /// a path faster than its LAN segments.
    pub fn multi_datacenter(
        net: &mut FlowNet,
        sites: usize,
        per_site: usize,
        host_gbps: f64,
        wan_gbps: f64,
        lan_latency: SimDuration,
        wan_latency: SimDuration,
    ) -> Self {
        assert!(
            sites >= 1 && per_site >= 1,
            "need at least one site and host"
        );
        assert!(
            wan_latency.as_nanos() >= lan_latency.as_nanos(),
            "WAN latency below LAN latency"
        );
        let lan_half = SimDuration::from_nanos(lan_latency.as_nanos() / 2);
        // Cross-site paths traverse tx + up + down + rx; the two host
        // links already contribute a full LAN latency, so the WAN pair
        // carries the remainder.
        let wan_half =
            SimDuration::from_nanos((wan_latency.as_nanos() - lan_latency.as_nanos()) / 2);
        let mut nodes = Vec::with_capacity(sites * per_site);
        let mut site_ports = Vec::with_capacity(sites);
        for s in 0..sites {
            site_ports.push(RackPorts {
                up: net.add_link(wan_gbps, wan_half),
                down: net.add_link(wan_gbps, wan_half),
            });
            for _ in 0..per_site {
                nodes.push(NodePorts {
                    tx: net.add_link(host_gbps, lan_half),
                    rx: net.add_link(host_gbps, lan_half),
                    rack: s as u32,
                });
            }
        }
        Topology {
            nodes,
            racks: site_ports,
        }
    }

    /// Every inter-site (WAN) link of a [`Topology::multi_datacenter`]
    /// fabric, in site order (up then down per site) — the links a
    /// lossy-WAN fault profile should target. Empty for single-site
    /// topologies; for rack/pod fabrics these are the aggregation links.
    pub fn wan_links(&self) -> Vec<LinkId> {
        self.racks.iter().flat_map(|r| [r.up, r.down]).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The rack (pod) index a node belongs to; 0 for flat topologies.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rack_of(&self, node: usize) -> usize {
        self.nodes[node].rack as usize
    }

    /// The sequence of links a transfer from `from` to `to` occupies.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or if `from == to` (local
    /// copies don't traverse the network; model them as CPU time instead).
    pub fn path(&self, from: usize, to: usize) -> Vec<LinkId> {
        assert_ne!(from, to, "no network path from a node to itself");
        let a = &self.nodes[from];
        let b = &self.nodes[to];
        if self.racks.is_empty() || a.rack == b.rack {
            vec![a.tx, b.rx]
        } else {
            vec![
                a.tx,
                self.racks[a.rack as usize].up,
                self.racks[b.rack as usize].down,
                b.rx,
            ]
        }
    }

    /// The node's transmit-side link (useful for per-NIC I/O accounting).
    pub fn tx_link(&self, node: usize) -> LinkId {
        self.nodes[node].tx
    }

    /// The node's receive-side link.
    pub fn rx_link(&self, node: usize) -> LinkId {
        self.nodes[node].rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn flat_paths_are_two_hops() {
        let mut net = FlowNet::new();
        let t = Topology::flat(&mut net, 8, 100.0, SimDuration::from_micros(2));
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    let p = t.path(a, b);
                    assert_eq!(p.len(), 2);
                    assert_eq!(p[0], t.tx_link(a));
                    assert_eq!(p[1], t.rx_link(b));
                    assert_eq!(net.path_latency(&p), SimDuration::from_micros(2));
                }
            }
        }
    }

    #[test]
    fn tor_separates_intra_and_inter_rack() {
        let mut net = FlowNet::new();
        let t =
            Topology::oversubscribed_tor(&mut net, 2, 4, 56.0, 32.0, SimDuration::from_micros(2));
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(7), 1);
        assert_eq!(t.path(0, 3).len(), 2); // same rack
        assert_eq!(t.path(0, 4).len(), 4); // cross rack
    }

    #[test]
    fn oversubscription_throttles_cross_rack_aggregate() {
        // 4 hosts per rack at 56 Gb/s, but a 64 Gb/s uplink: four concurrent
        // cross-rack flows get 16 Gb/s each — the Apt behaviour.
        let mut net = FlowNet::new();
        let t =
            Topology::oversubscribed_tor(&mut net, 2, 4, 56.0, 64.0, SimDuration::from_micros(2));
        let mut flows = Vec::new();
        for i in 0..4 {
            flows.push(net.start_flow(SimTime::ZERO, t.path(i, 4 + i), 1e9));
        }
        for f in &flows {
            let r = net.flow_rate_bps(*f).unwrap();
            assert!((r - 16e9).abs() < 1e3, "expected 16 Gb/s, got {r}");
        }
    }

    #[test]
    fn intra_rack_traffic_avoids_uplink() {
        let mut net = FlowNet::new();
        let t =
            Topology::oversubscribed_tor(&mut net, 2, 2, 56.0, 10.0, SimDuration::from_micros(2));
        let f = net.start_flow(SimTime::ZERO, t.path(0, 1), 1e9);
        assert_eq!(net.flow_rate_bps(f), Some(56e9));
    }

    #[test]
    fn fat_tree_matches_two_tier_rates() {
        // The transparent aggregation tier must be allocation-neutral:
        // every flow rate equals the same scenario on a two_tier fabric
        // with participating (but never-binding) uplinks.
        let run = |fat: bool| {
            let mut net = FlowNet::new();
            let t = if fat {
                Topology::fat_tree(&mut net, 3, 4, 25.0, SimDuration::from_micros(2))
            } else {
                Topology::two_tier(&mut net, 3, 4, 25.0, 100.0, SimDuration::from_micros(2))
            };
            // Cross-pod fan-out from pod 0 plus intra-pod traffic in pod 1.
            let mut flows = vec![
                net.start_flow(SimTime::ZERO, t.path(0, 4), 1e9),
                net.start_flow(SimTime::ZERO, t.path(0, 8), 1e9),
                net.start_flow(SimTime::ZERO, t.path(1, 4), 1e9),
                net.start_flow(SimTime::ZERO, t.path(5, 6), 1e9),
            ];
            flows.push(net.start_flow(SimTime::from_nanos(100), t.path(2, 9), 1e9));
            flows
                .into_iter()
                .map(|f| net.flow_rate_bps(f).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fat_tree_cross_pod_gets_full_host_rate() {
        let mut net = FlowNet::new();
        let t = Topology::fat_tree(&mut net, 2, 4, 25.0, SimDuration::from_micros(2));
        // All four hosts of pod 0 send cross-pod at once: full bisection
        // means every flow still gets the full host rate.
        let flows: Vec<_> = (0..4)
            .map(|i| net.start_flow(SimTime::ZERO, t.path(i, 4 + i), 1e9))
            .collect();
        for f in flows {
            assert_eq!(net.flow_rate_bps(f), Some(25e9));
        }
    }

    #[test]
    fn multi_datacenter_latencies_split_lan_and_wan() {
        let mut net = FlowNet::new();
        let t = Topology::multi_datacenter(
            &mut net,
            2,
            4,
            100.0,
            10.0,
            SimDuration::from_micros(2),
            SimDuration::from_millis(50),
        );
        assert_eq!(t.num_nodes(), 8);
        // Intra-site: plain LAN latency, two hops.
        let lan = t.path(0, 1);
        assert_eq!(lan.len(), 2);
        assert_eq!(net.path_latency(&lan), SimDuration::from_micros(2));
        // Cross-site: the full WAN latency, through the site uplinks.
        let wan = t.path(0, 4);
        assert_eq!(wan.len(), 4);
        assert_eq!(net.path_latency(&wan), SimDuration::from_millis(50));
        // Every WAN link is exposed for fault targeting and really is
        // on the cross-site path but not the intra-site one.
        let wan_links = t.wan_links();
        assert_eq!(wan_links.len(), 4);
        assert!(wan.iter().filter(|l| wan_links.contains(l)).count() == 2);
        assert!(lan.iter().all(|l| !wan_links.contains(l)));
    }

    #[test]
    fn multi_datacenter_wan_is_the_bottleneck() {
        // Four hosts per site at 100 Gb/s behind a 10 Gb/s WAN pair:
        // four concurrent cross-site flows share the uplink at 2.5 Gb/s.
        let mut net = FlowNet::new();
        let t = Topology::multi_datacenter(
            &mut net,
            2,
            4,
            100.0,
            10.0,
            SimDuration::from_micros(2),
            SimDuration::from_millis(50),
        );
        let flows: Vec<_> = (0..4)
            .map(|i| net.start_flow(SimTime::ZERO, t.path(i, 4 + i), 1e9))
            .collect();
        for f in flows {
            let r = net.flow_rate_bps(f).unwrap();
            assert!((r - 2.5e9).abs() < 1e3, "expected 2.5 Gb/s, got {r}");
        }
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_path_rejected() {
        let mut net = FlowNet::new();
        let t = Topology::flat(&mut net, 2, 100.0, SimDuration::ZERO);
        t.path(1, 1);
    }
}
