//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence number)`: events scheduled
//! for the same instant pop in the order they were scheduled, which makes
//! every simulation run bit-for-bit reproducible regardless of payload
//! type. Events can be cancelled cheaply by token.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventToken(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of timed events carrying payloads of
/// type `E`.
///
/// The queue also tracks the current virtual time: [`EventQueue::pop`]
/// advances the clock to the popped event's timestamp. Scheduling an event
/// in the past is a bug and panics.
///
/// # Examples
///
/// ```
/// use simnet::{EventQueue, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_micros(5), "late");
/// q.schedule_in(SimDuration::from_micros(1), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(ev, "early");
/// assert_eq!(t.as_nanos(), 1_000);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    /// Tokens of cancelled-but-unfired events. Membership-only (insert,
    /// contains, remove; never iterated), so hash order cannot reach
    /// behavior.
    #[allow(clippy::disallowed_types)]
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            #[allow(clippy::disallowed_types)]
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// The current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .count()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current virtual time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?}, now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventToken(seq)
    }

    /// Schedules `payload` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventToken {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled) is a silent no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.drop_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// All pending events due at the earliest timestamp, as `(seq,
    /// payload)` pairs sorted by sequence number (the default pop
    /// order). The sequence numbers are stable identifiers: an entry
    /// keeps its seq until popped, so callers can enumerate a
    /// same-instant burst, decide an order, and retrieve specific
    /// events with [`EventQueue::pop_seq`].
    ///
    /// Returns an empty vector when the queue is empty.
    pub fn peek_due(&mut self) -> Vec<(u64, &E)> {
        self.drop_cancelled();
        let Some(head) = self.heap.peek().map(|e| e.time) else {
            return Vec::new();
        };
        let mut due: Vec<(u64, &E)> = self
            .heap
            .iter()
            .filter(|e| e.time == head && !self.cancelled.contains(&e.seq))
            .map(|e| (e.seq, &e.payload))
            .collect();
        due.sort_by_key(|&(seq, _)| seq);
        due
    }

    /// Pops the event with the given sequence number, which must be due
    /// at the earliest pending timestamp (i.e. one of the entries
    /// reported by [`EventQueue::peek_due`]). Advances the clock to its
    /// timestamp. Other same-instant entries keep their original
    /// sequence numbers, so the residual pop order is unchanged.
    ///
    /// Returns `None` if no due event carries `seq`.
    pub fn pop_seq(&mut self, seq: u64) -> Option<(SimTime, E)> {
        self.drop_cancelled();
        let head = self.heap.peek().map(|e| e.time)?;
        let mut displaced = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            if entry.time != head {
                // Ran past the due instant without finding `seq`.
                displaced.push(entry);
                break;
            }
            if entry.seq == seq {
                found = Some(entry);
                break;
            }
            displaced.push(entry);
        }
        for entry in displaced {
            self.heap.push(entry);
        }
        let entry = found?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    fn drop_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        q.schedule_at(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_micros(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_nanos(2_000));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_nanos(1), "keep");
        let drop = q.schedule_at(SimTime::from_nanos(2), "drop");
        let _ = keep;
        q.cancel(drop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "keep");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.schedule_at(SimTime::from_nanos(1), ());
        q.pop().unwrap();
        q.cancel(tok);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_due_reports_same_instant_burst() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        q.schedule_at(SimTime::from_nanos(9), "later");
        let due: Vec<(u64, &&str)> = q.peek_due();
        assert_eq!(due.len(), 2);
        assert_eq!(*due[0].1, "a");
        assert_eq!(*due[1].1, "b");
        assert!(due[0].0 < due[1].0);
    }

    #[test]
    fn pop_seq_reorders_without_disturbing_rest() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        q.schedule_at(t, "c");
        let due = q.peek_due();
        let b_seq = due[1].0;
        assert_eq!(q.pop_seq(b_seq).unwrap().1, "b");
        // Remaining events keep their original relative order.
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn pop_seq_skips_cancelled_and_misses_later_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        let tok = q.schedule_at(t, "cancelled");
        q.schedule_at(t, "live");
        let late = q.schedule_at(SimTime::from_nanos(9), "late");
        q.cancel(tok);
        // Seqs of events beyond the due instant are not poppable.
        assert!(q.pop_seq(late.0).is_none());
        let live_seq = {
            let due = q.peek_due();
            assert_eq!(due.len(), 1);
            due[0].0
        };
        assert_eq!(q.pop_seq(live_seq).unwrap().1, "live");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let early = q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(9), ());
        q.cancel(early);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }
}
