//! Virtual time.
//!
//! All simulation time is tracked as integer nanoseconds in a [`SimTime`]
//! newtype so it can never be confused with durations expressed in other
//! units. Arithmetic is saturating on the lower end and panics on overflow
//! (an overflow at u64 nanoseconds is ~584 years of simulated time, which
//! always indicates a bug).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since the simulation epoch, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// causality bug in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later `earlier` instant"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a float second count, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "duration overflows u64 nanoseconds");
        SimDuration(ns.round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as float seconds (for reporting and rate math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration as float microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scales the duration by a float factor, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated more than ~584 years"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_000);
        let t2 = t + SimDuration::from_micros(3);
        assert_eq!(t2.as_nanos(), 4_000);
        assert_eq!(t2.since(t), SimDuration::from_nanos(3_000));
    }

    #[test]
    #[should_panic(expected = "later")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_nanos(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros(7).as_micros_f64(), 7.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
