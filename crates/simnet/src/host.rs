//! Host-side cost models: software overheads, CPU accounting, and
//! scheduling-jitter injection.
//!
//! RDMC is a user-space library, so every block relay involves a little
//! software: reap a completion, decide the next transfer, post a work
//! request. The paper's Table 1 shows those overheads are ~1% of a large
//! transfer but are what the CORE-Direct offload (Fig. 12) removes, and
//! its Fig. 5 shows a ~100 µs OS preemption stalling the whole pipeline.
//! [`HostProfile`] captures the constants; [`JitterModel`] injects
//! preemptions deterministically; [`CpuMeter`] accumulates busy time so
//! polling-vs-interrupt CPU load (Fig. 11) can be reported.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// Software and memory-system cost constants for one host.
#[derive(Clone, Debug, PartialEq)]
pub struct HostProfile {
    /// CPU time to post one work request (send/recv/write).
    pub post_overhead: SimDuration,
    /// CPU time to reap and dispatch one completion.
    pub completion_overhead: SimDuration,
    /// Extra latency from interrupt-driven completion delivery (the cost
    /// the paper's hybrid scheme avoids while polling).
    pub interrupt_wakeup: SimDuration,
    /// How long the completion thread keeps polling after the last event
    /// before re-arming interrupts (50 ms in the paper, §4.2).
    pub poll_window: SimDuration,
    /// Local memory copy bandwidth in gigabytes per second (used for the
    /// first-block copy, Table 1's "Copy Time").
    pub memcpy_gbps: f64,
    /// Latency of the receive-path `malloc` (paper §4.6: allocation happens
    /// on the critical path when the first block arrives).
    pub malloc_latency: SimDuration,
}

impl Default for HostProfile {
    fn default() -> Self {
        HostProfile {
            post_overhead: SimDuration::from_nanos(700),
            completion_overhead: SimDuration::from_nanos(500),
            interrupt_wakeup: SimDuration::from_micros(4),
            poll_window: SimDuration::from_millis(50),
            memcpy_gbps: 5.0,
            malloc_latency: SimDuration::from_micros(3),
        }
    }
}

impl HostProfile {
    /// Time to copy `bytes` through the host memory system.
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.memcpy_gbps * 1e9))
    }
}

/// Deterministic injector of OS scheduling delays.
///
/// Each call to [`JitterModel::sample`] represents one software action that
/// the OS could preempt; with probability `prob` the action is delayed by a
/// uniformly random duration in `[min_delay, max_delay]`.
///
/// # Examples
///
/// ```
/// use simnet::{JitterModel, SimDuration};
///
/// let mut quiet = JitterModel::none();
/// assert_eq!(quiet.sample(), SimDuration::ZERO);
///
/// let mut noisy = JitterModel::new(7, 1.0, SimDuration::from_micros(100),
///                                  SimDuration::from_micros(100));
/// assert_eq!(noisy.sample(), SimDuration::from_micros(100));
/// ```
#[derive(Debug)]
pub struct JitterModel {
    prob: f64,
    min_delay: SimDuration,
    max_delay: SimDuration,
    rng: StdRng,
}

impl JitterModel {
    /// A model that injects a delay with probability `prob` per sampled
    /// action, uniform in `[min_delay, max_delay]`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `min_delay > max_delay`.
    pub fn new(seed: u64, prob: f64, min_delay: SimDuration, max_delay: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        assert!(min_delay <= max_delay, "min_delay must be <= max_delay");
        JitterModel {
            prob,
            min_delay,
            max_delay,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A model that never delays.
    pub fn none() -> Self {
        JitterModel::new(0, 0.0, SimDuration::ZERO, SimDuration::ZERO)
    }

    /// Samples the scheduling delay for one software action.
    pub fn sample(&mut self) -> SimDuration {
        if self.prob > 0.0 && self.rng.random_bool(self.prob) {
            let lo = self.min_delay.as_nanos();
            let hi = self.max_delay.as_nanos();
            SimDuration::from_nanos(if lo == hi {
                lo
            } else {
                self.rng.random_range(lo..=hi)
            })
        } else {
            SimDuration::ZERO
        }
    }
}

/// Accumulates CPU busy time for one host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuMeter {
    busy: SimDuration,
}

impl CpuMeter {
    /// A meter with no recorded time.
    pub fn new() -> Self {
        CpuMeter::default()
    }

    /// Records `d` of CPU work.
    pub fn record(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Total busy time recorded.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction of a wall-clock interval, clamped to `[0, 1]`.
    pub fn load(&self, wall: SimDuration) -> f64 {
        if wall == SimDuration::ZERO {
            0.0
        } else {
            (self.busy.as_secs_f64() / wall.as_secs_f64()).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_sane() {
        let p = HostProfile::default();
        assert!(p.post_overhead < SimDuration::from_micros(5));
        assert_eq!(p.poll_window, SimDuration::from_millis(50));
    }

    #[test]
    fn memcpy_time_scales_with_size() {
        let p = HostProfile {
            memcpy_gbps: 5.0,
            ..HostProfile::default()
        };
        // 1 MB at 5 GB/s = 200 us.
        assert_eq!(p.memcpy_time(1_000_000), SimDuration::from_micros(200));
    }

    #[test]
    fn jitter_none_is_always_zero() {
        let mut j = JitterModel::none();
        for _ in 0..100 {
            assert_eq!(j.sample(), SimDuration::ZERO);
        }
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let sample = |seed| {
            let mut j = JitterModel::new(
                seed,
                0.5,
                SimDuration::from_micros(10),
                SimDuration::from_micros(200),
            );
            (0..32).map(|_| j.sample().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    fn jitter_respects_bounds() {
        let mut j = JitterModel::new(
            1,
            1.0,
            SimDuration::from_micros(50),
            SimDuration::from_micros(150),
        );
        for _ in 0..100 {
            let d = j.sample();
            assert!(d >= SimDuration::from_micros(50));
            assert!(d <= SimDuration::from_micros(150));
        }
    }

    #[test]
    fn cpu_meter_accumulates_and_reports_load() {
        let mut m = CpuMeter::new();
        m.record(SimDuration::from_millis(25));
        m.record(SimDuration::from_millis(25));
        assert_eq!(m.busy(), SimDuration::from_millis(50));
        assert!((m.load(SimDuration::from_millis(100)) - 0.5).abs() < 1e-12);
        assert_eq!(m.load(SimDuration::ZERO), 0.0);
        // Load clamps at 1 even if over-recorded.
        m.record(SimDuration::from_secs(10));
        assert_eq!(m.load(SimDuration::from_millis(1)), 1.0);
    }
}
