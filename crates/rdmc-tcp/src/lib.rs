//! # rdmc-tcp — RDMC over real TCP sockets
//!
//! The paper's §5.3 observes that the binomial pipeline's slack should
//! make RDMC "work surprisingly well over high speed datacenter TCP (with
//! no RDMA)". This crate is that port: the same sans-IO protocol engine
//! as the simulator, driven by a full mesh of real TCP connections, and
//! exposing exactly the Fig. 1 library interface:
//!
//! - [`RdmcNode::create_group`] with an `incoming_message_callback`
//!   (buffer supplier) and a `message_completion_callback`;
//! - [`RdmcNode::send`] (root only);
//! - [`RdmcNode::destroy_group`] — a close barrier whose success proves
//!   every message reached every destination (§4.6).
//!
//! TCP provides what RDMC needs from RDMA's reliable connections: ordered
//! exactly-once delivery per connection and failure reporting on break. A
//! blocking `write` stands in for the hardware send completion.
//!
//! ## Example (in-process three-node cluster)
//!
//! ```
//! use std::sync::mpsc;
//! use rdmc_tcp::{GroupConfig, LocalCluster};
//!
//! let cluster = LocalCluster::launch(3)?;
//! let (tx, rx) = mpsc::channel();
//! for node in cluster.nodes() {
//!     let tx = tx.clone();
//!     node.create_group(
//!         7,
//!         GroupConfig::new(vec![0, 1, 2]),
//!         Box::new(|size| vec![0; size as usize]),
//!         Box::new(move |data| tx.send(data.to_vec()).unwrap()),
//!     );
//! }
//! assert!(cluster.nodes()[0].send(7, b"hello, multicast".to_vec()));
//! // Three completion upcalls: two receivers + the root.
//! for _ in 0..3 {
//!     assert_eq!(rx.recv()?, b"hello, multicast");
//! }
//! for node in cluster.nodes() {
//!     assert!(node.destroy_group(7));
//! }
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod transfer;
mod wire;

pub use node::{CompletionCallback, GroupConfig, IncomingCallback, NodeId, RdmcNode};
pub use transfer::{checksum, CastFile, FileCast, FileCastSession};
pub use wire::Frame;

use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;

/// Convenience launcher for an in-process cluster on loopback ephemeral
/// ports — how the tests, examples, and quick experiments run.
#[derive(Debug)]
pub struct LocalCluster {
    nodes: Vec<RdmcNode>,
}

impl LocalCluster {
    /// Binds `n` loopback listeners, wires the full mesh, and returns the
    /// node handles (node id = index).
    ///
    /// # Errors
    ///
    /// Any socket error during bring-up.
    pub fn launch(n: usize) -> io::Result<LocalCluster> {
        assert!(n >= 1, "cluster needs at least one node");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let peers: BTreeMap<NodeId, std::net::SocketAddr> = listeners
            .iter()
            .enumerate()
            .map(|(i, l)| Ok((i as NodeId, l.local_addr()?)))
            .collect::<io::Result<_>>()?;
        // Start all nodes concurrently: the mesh handshake requires every
        // side to be dialing/accepting at once.
        let handles: Vec<std::thread::JoinHandle<io::Result<RdmcNode>>> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let peers = peers.clone();
                std::thread::spawn(move || RdmcNode::start(i as NodeId, listener, &peers))
            })
            .collect();
        let nodes = handles
            .into_iter()
            .map(|h| h.join().expect("node start thread panicked"))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(LocalCluster { nodes })
    }

    /// The node handles, indexed by node id.
    pub fn nodes(&self) -> &[RdmcNode] {
        &self.nodes
    }

    /// Stops every node.
    pub fn shutdown(&self) {
        for node in &self.nodes {
            node.shutdown();
        }
    }
}
