//! # rdmc-tcp — RDMC over real TCP sockets
//!
//! The paper's §5.3 observes that the binomial pipeline's slack should
//! make RDMC "work surprisingly well over high speed datacenter TCP
//! (with no RDMA)". This crate is that port, rebuilt as a
//! [`verbs::Transport`] backend: a **single nonblocking event loop**
//! (readiness-driven reads, scatter-gather `write_vectored` flushes,
//! per-connection buffer reuse — no thread per peer) that carries the
//! *entire* `rdmc-sim` orchestration stack unchanged. One public API,
//! two transports: everything built on
//! [`rdmc_sim::ClusterBuilder`] — groups, pacer
//! admission, epoch recovery, per-group reliability policies, the
//! flight recorder, the §4.6 close barrier — runs identically over the
//! simulated verbs fabric and over this backend, and the standing
//! `transport_equivalence` gate holds the two to bit-identical engine
//! event logs and delivery digests.
//!
//! TCP provides what RDMC needs from RDMA's reliable connections:
//! in-order exactly-once delivery per connection and failure reporting
//! on break. The mapping:
//!
//! - a two-sided `post_send` becomes a framed write whose "hardware
//!   completion" ([`verbs::Delivery::SendDone`]) fires when the frame
//!   is fully flushed to the socket;
//! - a one-sided `post_write` becomes a framed write surfacing at the
//!   peer as [`verbs::Delivery::WriteArrived`];
//! - posted receives are a per-connection queue consumed in arrival
//!   order — a data frame that finds no posted receive is held and
//!   counted in [`verbs::FabricStats::rnr_arms`], keeping the §4.2
//!   zero-RNR discipline observable on real sockets too;
//! - a crashed node goes silent; peers detect it after the
//!   failure-detect interval and see their connections flush and break,
//!   exactly like the simulated NIC.
//!
//! All nodes live in one process (hundreds fit comfortably — the event
//! loop is O(connections) per poll with no thread switches), so tests
//! and benches launch whole clusters as a value:
//!
//! ```
//! use rdmc::Algorithm;
//! use rdmc_sim::GroupSpec;
//!
//! let mut cluster = rdmc_tcp::builder(4)?.build();
//! let group = cluster.create_group(GroupSpec {
//!     members: vec![0, 1, 2, 3],
//!     algorithm: Algorithm::BinomialPipeline,
//!     block_size: 64 << 10,
//!     ready_window: 2,
//!     max_outstanding_sends: 2,
//! });
//! cluster.submit_send(group, 256 << 10);
//! cluster.run();
//! assert!(cluster.destroy_group(group), "close barrier certifies delivery");
//! rdmc_tcp::shutdown(cluster)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rdmc_sim::{Cluster, ClusterBuilder};
use simnet::{HostProfile, SimDuration, SimTime};
use verbs::{
    CpuReport, Delivery, FabricStats, NodeId, PostingSnapshot, QpHandle, Transport, VerbsError,
    WaitSpec, WrId,
};

/// An RDMC cluster over the TCP backend (all nodes in one process).
pub type TcpCluster = Cluster<TcpFabric>;

/// Frame header: length (u32) + kind (u8) + wr_id (u64) + imm/tag (u64).
const HDR: usize = 4 + 1 + 8 + 8;
/// Two-sided send: `len` filler bytes, meta carries the immediate.
const KIND_SEND: u8 = 0;
/// One-sided write: `len` payload bytes, meta carries the region tag.
const KIND_WRITE: u8 = 1;

/// Shared zero filler for two-sided block payloads: RDMC's wire format
/// never inspects block *contents* (identity is positional, §4.2), so
/// sends stream this one reusable buffer instead of allocating per
/// block — the goodput on the wire is still real.
static FILLER: [u8; 64 << 10] = [0; 64 << 10];

/// How long a surviving endpoint takes to notice a crashed peer — the
/// TCP stand-in for the simulated fabric's failure-detect interval.
const FAILURE_DETECT: Duration = Duration::from_millis(1);

/// One queued outbound frame; header and payload flush via
/// scatter-gather writes and may be split across polls.
struct OutFrame {
    wr_id: WrId,
    two_sided: bool,
    header: [u8; HDR],
    hdr_sent: usize,
    payload: Payload,
    payload_sent: u64,
}

#[derive(Clone)]
enum Payload {
    /// A one-sided write's actual bytes.
    Bytes(Bytes),
    /// A two-sided send of this many filler bytes.
    Filler(u64),
}

impl Payload {
    fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Filler(n) => *n,
        }
    }
}

/// One endpoint of a connection: its socket half plus every per-side
/// queue (outbound frames, carry-over read bytes, posted receives,
/// held frames awaiting a receive) — all reused across messages.
struct Endpoint {
    node: usize,
    stream: TcpStream,
    out: VecDeque<OutFrame>,
    inbuf: Vec<u8>,
    recvs: VecDeque<(WrId, u64)>,
    /// Two-sided frames that arrived before a receive was posted
    /// (len, imm): held, not dropped — but counted as RNR arms.
    held: VecDeque<(u64, u64)>,
    /// Frames fully flushed into the socket.
    frames_sent: u64,
    /// Frames parsed out of the socket.
    frames_consumed: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Alive,
    /// One end crashed; the failure-detect break timer is armed. The
    /// dead end flushes nothing more; the live end still drains
    /// pre-crash data off the socket until the break fires.
    Dying,
    Broken,
}

struct Conn {
    eps: [Endpoint; 2],
    state: ConnState,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerEntry {
    /// Failure detection expired: break this connection.
    Break { conn: usize },
    /// A driver timer ([`Transport::schedule_timer`]).
    Driver { node: usize, token: u64 },
}

enum ReadStep {
    Eof,
    Got,
    Empty,
    Retry,
    Failed(io::Error),
}

enum ParseStep {
    NeedMore,
    Recv { wr_id: WrId, len: u64, imm: u64 },
    Held,
    RecvTooSmall,
    Write { tag: u64, payload: Bytes },
    Unknown(u8),
}

/// The TCP datapath: every node's sockets, one nonblocking event loop.
///
/// Implements [`Transport`], so [`rdmc_sim::ClusterBuilder`] drives it
/// exactly like the simulated fabric — see the crate docs. Create with
/// [`TcpFabric::launch`] (or [`builder`]); reclaim the sockets and
/// surface accumulated socket errors with [`TcpFabric::shutdown`].
pub struct TcpFabric {
    start: Instant,
    /// Loopback listener every connection handshakes through.
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<Conn>,
    crashed: Vec<bool>,
    ready: VecDeque<(SimTime, NodeId, Delivery)>,
    timers: BinaryHeap<Reverse<(u64, u64, TimerEntry)>>,
    timer_seq: u64,
    recorder: trace::Recorder,
    profile: HostProfile,
    rnr_arms: u64,
    /// Socket errors observed mid-run, surfaced by
    /// [`TcpFabric::shutdown`] instead of being unwrapped or leaked.
    io_errors: Vec<io::Error>,
    /// Reused read buffer (one per fabric, not per connection).
    scratch: Vec<u8>,
}

impl TcpFabric {
    /// Binds a loopback listener and readies `n` in-process nodes.
    /// Connections are established lazily as the protocol first pairs
    /// two nodes.
    ///
    /// # Errors
    ///
    /// Any socket error during bring-up.
    pub fn launch(n: usize) -> io::Result<TcpFabric> {
        assert!(n >= 1, "cluster needs at least one node");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        Ok(TcpFabric {
            start: Instant::now(),
            listener,
            addr,
            conns: Vec::new(),
            crashed: vec![false; n],
            ready: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            recorder: trace::Recorder::disabled(),
            profile: HostProfile::default(),
            rnr_arms: 0,
            io_errors: Vec::new(),
            scratch: vec![0; 256 << 10],
        })
    }

    /// Tears the fabric down: shuts down every socket and surfaces the
    /// first error observed — either mid-run (reads and writes never
    /// unwrap; errors are recorded and the connection broken) or during
    /// the shutdown itself. The listener and all streams close on drop
    /// regardless, so repeated launch/shutdown cycles in one process
    /// stay clean.
    ///
    /// # Errors
    ///
    /// The first socket error the fabric observed.
    pub fn shutdown(mut self) -> io::Result<()> {
        for conn in &mut self.conns {
            if conn.state == ConnState::Broken {
                continue;
            }
            for ep in &mut conn.eps {
                if let Err(e) = ep.stream.shutdown(Shutdown::Both) {
                    if e.kind() != io::ErrorKind::NotConnected {
                        self.io_errors.push(e);
                    }
                }
            }
        }
        match self.io_errors.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push_delivery(&mut self, node: usize, delivery: Delivery) {
        if self.crashed[node] {
            return; // dead software observes nothing
        }
        self.ready.push_back((
            SimTime::from_nanos(self.now_ns()),
            NodeId(node as u32),
            delivery,
        ));
    }

    /// Fires every timer due at or before `now` — *all* of them, before
    /// any later socket completion surfaces. This ordering is what the
    /// [`Transport`] contract's timers-before-I/O guarantee asks for:
    /// every failure-detect break for a crashed node (all armed at the
    /// same deadline) batches ahead of relayed-failure gossip.
    fn fire_due_timers(&mut self, now: u64) {
        while let Some(Reverse((deadline, _, _))) = self.timers.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((_, _, entry)) = self.timers.pop().expect("peeked");
            match entry {
                TimerEntry::Break { conn } => {
                    // Pre-crash data the dead end already flushed is
                    // genuinely on the wire; deliver it before the
                    // break, matching the simulated fabric where a
                    // completed transfer is a delivered transfer.
                    self.drain_conn(conn);
                    self.break_conn_now(conn);
                }
                TimerEntry::Driver { node, token } => {
                    self.push_delivery(node, Delivery::Timer { token });
                }
            }
        }
    }

    /// Flushes queued frames with scatter-gather writes; emits
    /// send/write completions for frames that left the host entirely.
    /// Returns whether any bytes moved.
    fn flush_all(&mut self) -> bool {
        let mut progress = false;
        for ci in 0..self.conns.len() {
            if self.conns[ci].state != ConnState::Alive {
                continue; // a dying end's queued frames die with the break
            }
            for end in 0..2 {
                progress |= self.flush_endpoint(ci, end);
            }
        }
        progress
    }

    fn flush_endpoint(&mut self, ci: usize, end: usize) -> bool {
        let mut progress = false;
        loop {
            if self.conns[ci].state == ConnState::Broken {
                return progress;
            }
            // Snapshot the head frame's unflushed pieces (the header is
            // Copy; cloning Bytes is a refcount bump) so the gather
            // list doesn't hold a borrow across the socket write.
            let Some((header, hdr_sent, payload, payload_sent)) = self.conns[ci].eps[end]
                .out
                .front()
                .map(|f| (f.header, f.hdr_sent, f.payload.clone(), f.payload_sent))
            else {
                return progress;
            };
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(2);
            if hdr_sent < HDR {
                slices.push(IoSlice::new(&header[hdr_sent..]));
            }
            let chunk: &[u8] = match &payload {
                Payload::Bytes(b) => &b[usize::try_from(payload_sent).expect("payload fits")..],
                Payload::Filler(n) => {
                    let take = (n - payload_sent).min(FILLER.len() as u64);
                    &FILLER[..take as usize]
                }
            };
            if !chunk.is_empty() {
                slices.push(IoSlice::new(chunk));
            }
            let wrote = if slices.is_empty() {
                0 // zero-length frame already fully flushed: complete it
            } else {
                match self.conns[ci].eps[end].stream.write_vectored(&slices) {
                    Ok(0) => {
                        self.break_conn_now(ci);
                        return true;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        self.io_errors.push(e);
                        self.break_conn_now(ci);
                        return true;
                    }
                }
            };
            progress |= wrote > 0;
            let done = {
                let frame = self.conns[ci].eps[end]
                    .out
                    .front_mut()
                    .expect("frame still queued");
                let hdr_take = wrote.min(HDR - frame.hdr_sent);
                frame.hdr_sent += hdr_take;
                frame.payload_sent += (wrote - hdr_take) as u64;
                frame.hdr_sent == HDR && frame.payload_sent == frame.payload.len()
            };
            if !done {
                continue; // partial write; the next write_vectored resumes
            }
            let (node, wr_id, two_sided) = {
                let ep = &mut self.conns[ci].eps[end];
                let frame = ep.out.pop_front().expect("completed frame");
                ep.frames_sent += 1;
                (ep.node, frame.wr_id, frame.two_sided)
            };
            let qp = QpHandle::from_parts(ci as u32, end as u8);
            let delivery = if two_sided {
                Delivery::SendDone { qp, wr_id }
            } else {
                Delivery::WriteDone { qp, wr_id }
            };
            self.push_delivery(node, delivery);
            progress = true;
        }
    }

    /// Drains readable sockets and parses complete frames into
    /// deliveries. Returns whether any bytes moved.
    fn read_all(&mut self) -> bool {
        let mut progress = false;
        for ci in 0..self.conns.len() {
            if self.conns[ci].state == ConnState::Broken {
                continue;
            }
            for end in 0..2 {
                if self.crashed[self.conns[ci].eps[end].node] {
                    continue; // dead software reads nothing
                }
                progress |= self.read_endpoint(ci, end);
            }
        }
        progress
    }

    /// Drains both live ends of one connection (used just before a
    /// failure-detect break fires).
    fn drain_conn(&mut self, ci: usize) {
        for end in 0..2 {
            if self.conns[ci].state == ConnState::Broken {
                return;
            }
            if !self.crashed[self.conns[ci].eps[end].node] {
                self.read_endpoint(ci, end);
            }
        }
    }

    fn read_endpoint(&mut self, ci: usize, end: usize) -> bool {
        let mut progress = false;
        loop {
            if self.conns[ci].state == ConnState::Broken {
                return progress;
            }
            let step = {
                let TcpFabric { conns, scratch, .. } = self;
                let ep = &mut conns[ci].eps[end];
                match ep.stream.read(scratch) {
                    Ok(0) => ReadStep::Eof,
                    Ok(n) => {
                        ep.inbuf.extend_from_slice(&scratch[..n]);
                        ReadStep::Got
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReadStep::Empty,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => ReadStep::Retry,
                    Err(e) => ReadStep::Failed(e),
                }
            };
            match step {
                ReadStep::Eof => {
                    // Orderly close without a protocol-level break: the
                    // peer's socket died under us. A dying connection's
                    // EOF just waits for its break timer.
                    if self.conns[ci].state == ConnState::Alive {
                        self.break_conn_now(ci);
                        return true;
                    }
                    return progress;
                }
                ReadStep::Got => {
                    progress = true;
                    self.parse_frames(ci, end);
                }
                ReadStep::Empty => return progress,
                ReadStep::Retry => continue,
                ReadStep::Failed(e) => {
                    self.io_errors.push(e);
                    self.break_conn_now(ci);
                    return true;
                }
            }
        }
    }

    fn parse_frames(&mut self, ci: usize, end: usize) {
        loop {
            if self.conns[ci].state == ConnState::Broken {
                return;
            }
            let step = {
                let ep = &mut self.conns[ci].eps[end];
                if ep.inbuf.len() < HDR {
                    ParseStep::NeedMore
                } else {
                    let len =
                        u32::from_le_bytes(ep.inbuf[0..4].try_into().expect("4 bytes")) as usize;
                    if ep.inbuf.len() < HDR + len {
                        ParseStep::NeedMore
                    } else {
                        let kind = ep.inbuf[4];
                        let meta =
                            u64::from_le_bytes(ep.inbuf[13..21].try_into().expect("8 bytes"));
                        match kind {
                            KIND_SEND => {
                                ep.inbuf.drain(..HDR + len);
                                ep.frames_consumed += 1;
                                match ep.recvs.pop_front() {
                                    Some((wr_id, max_len)) if len as u64 <= max_len => {
                                        ParseStep::Recv {
                                            wr_id,
                                            len: len as u64,
                                            imm: meta,
                                        }
                                    }
                                    Some(_) => ParseStep::RecvTooSmall,
                                    None => {
                                        ep.held.push_back((len as u64, meta));
                                        ParseStep::Held
                                    }
                                }
                            }
                            KIND_WRITE => {
                                let payload = Bytes::copy_from_slice(&ep.inbuf[HDR..HDR + len]);
                                ep.inbuf.drain(..HDR + len);
                                ep.frames_consumed += 1;
                                ParseStep::Write { tag: meta, payload }
                            }
                            other => ParseStep::Unknown(other),
                        }
                    }
                }
            };
            let node = self.conns[ci].eps[end].node;
            let qp = QpHandle::from_parts(ci as u32, end as u8);
            match step {
                ParseStep::NeedMore => return,
                ParseStep::Recv { wr_id, len, imm } => {
                    self.push_delivery(
                        node,
                        Delivery::RecvDone {
                            qp,
                            wr_id,
                            len,
                            imm,
                        },
                    );
                }
                ParseStep::Held => {
                    // Receiver-not-ready: a real NIC would arm an RNR
                    // retry timer; we hold the frame but make the
                    // discipline violation observable in the stats.
                    self.rnr_arms += 1;
                }
                ParseStep::RecvTooSmall => {
                    // RDMA local-length error: the posted receive was
                    // too small, which breaks the connection.
                    self.break_conn_now(ci);
                    return;
                }
                ParseStep::Write { tag, payload } => {
                    self.push_delivery(node, Delivery::WriteArrived { qp, tag, payload });
                }
                ParseStep::Unknown(k) => {
                    self.io_errors.push(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown frame kind {k} on conn {ci}"),
                    ));
                    self.break_conn_now(ci);
                    return;
                }
            }
        }
    }

    /// Breaks a connection now: every outstanding work request at each
    /// *live* end is flushed in posting order (queued sends first, then
    /// posted receives), then the `QpBroken` notice lands, then the
    /// sockets shut down.
    fn break_conn_now(&mut self, ci: usize) {
        if self.conns[ci].state == ConnState::Broken {
            return;
        }
        self.conns[ci].state = ConnState::Broken;
        for end in 0..2 {
            let (node, out, recvs) = {
                let ep = &mut self.conns[ci].eps[end];
                let out: Vec<WrId> = ep.out.drain(..).map(|f| f.wr_id).collect();
                let recvs: Vec<WrId> = ep.recvs.drain(..).map(|(wr, _)| wr).collect();
                ep.held.clear();
                ep.inbuf.clear();
                let _ = ep.stream.shutdown(Shutdown::Both);
                (ep.node, out, recvs)
            };
            let qp = QpHandle::from_parts(ci as u32, end as u8);
            for wr_id in out {
                self.push_delivery(
                    node,
                    Delivery::WrFlushed {
                        qp,
                        wr_id,
                        recv: false,
                    },
                );
            }
            for wr_id in recvs {
                self.push_delivery(
                    node,
                    Delivery::WrFlushed {
                        qp,
                        wr_id,
                        recv: true,
                    },
                );
            }
            self.push_delivery(node, Delivery::QpBroken { qp });
        }
    }

    fn check_postable(&self, qp: QpHandle) -> Result<usize, VerbsError> {
        let conn = &self.conns[qp.conn_id() as usize];
        let node = conn.eps[usize::from(qp.endpoint())].node;
        if self.crashed[node] {
            return Err(VerbsError::NodeCrashed);
        }
        if conn.state == ConnState::Broken {
            return Err(VerbsError::QpBroken);
        }
        Ok(node)
    }

    fn encode_header(len: u64, kind: u8, wr_id: WrId, meta: u64) -> [u8; HDR] {
        let mut h = [0u8; HDR];
        h[0..4].copy_from_slice(
            &u32::try_from(len)
                .expect("frame len fits u32")
                .to_le_bytes(),
        );
        h[4] = kind;
        h[5..13].copy_from_slice(&wr_id.0.to_le_bytes());
        h[13..21].copy_from_slice(&meta.to_le_bytes());
        h
    }

    /// Quiescent when nothing is queued for software, nothing is
    /// buffered for the wire on a live connection, every flushed frame
    /// has been consumed by its peer, and no timer is armed that could
    /// still matter. Dying connections are deliberately *not* examined:
    /// their pending break timer keeps the loop alive until the failure
    /// is fully reported.
    fn quiescent(&self) -> bool {
        if !self.ready.is_empty() {
            return false;
        }
        for conn in &self.conns {
            if conn.state != ConnState::Alive {
                continue;
            }
            for (tx, rx) in [(0, 1), (1, 0)] {
                let tx = &conn.eps[tx];
                let rx = &conn.eps[rx];
                if !tx.out.is_empty() || tx.frames_sent != rx.frames_consumed {
                    return false;
                }
            }
        }
        self.timers
            .iter()
            .all(|Reverse((_, _, entry))| match entry {
                TimerEntry::Break { .. } => false,
                TimerEntry::Driver { node, .. } => self.crashed[*node],
            })
    }

    fn next_timer_deadline(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse((d, _, _))| *d)
    }

    fn arm_timer(&mut self, deadline: u64, entry: TimerEntry) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse((deadline, seq, entry)));
    }
}

impl Transport for TcpFabric {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns())
    }

    fn advance(&mut self) -> Option<(SimTime, NodeId, Delivery)> {
        loop {
            if let Some(d) = self.ready.pop_front() {
                self.recorder.set_now(d.0.as_nanos());
                return Some(d);
            }
            let now = self.now_ns();
            self.fire_due_timers(now);
            let wrote = self.flush_all();
            let read = self.read_all();
            if !self.ready.is_empty() {
                continue;
            }
            if self.quiescent() {
                return None;
            }
            if !wrote && !read {
                // Nothing moved: park until the next timer, or just
                // yield while the kernel shuttles loopback bytes.
                match self.next_timer_deadline() {
                    Some(deadline) if deadline > self.now_ns() => {
                        let wait = (deadline - self.now_ns()).min(1_000_000);
                        std::thread::sleep(Duration::from_nanos(wait));
                    }
                    _ => std::thread::yield_now(),
                }
            }
        }
    }

    fn connect(&mut self, a: NodeId, b: NodeId) -> (QpHandle, QpHandle) {
        // Inline handshake: this loop is the only caller, so the
        // connect and its accept pair up deterministically with no
        // identification handshake on the wire.
        let client = TcpStream::connect(self.addr).expect("loopback connect");
        let (server, _) = self.listener.accept().expect("loopback accept");
        for s in [&client, &server] {
            s.set_nodelay(true).expect("set_nodelay");
            s.set_nonblocking(true).expect("set_nonblocking");
        }
        let ci = self.conns.len();
        let mk = |node: usize, stream: TcpStream| Endpoint {
            node,
            stream,
            out: VecDeque::new(),
            inbuf: Vec::new(),
            recvs: VecDeque::new(),
            held: VecDeque::new(),
            frames_sent: 0,
            frames_consumed: 0,
        };
        self.conns.push(Conn {
            eps: [mk(a.index(), client), mk(b.index(), server)],
            state: ConnState::Alive,
        });
        // Connecting to an already-crashed peer: the connection comes up
        // but the dead side never answers, so failure detection starts
        // ticking immediately, exactly as for a crash after connect.
        if self.crashed[a.index()] || self.crashed[b.index()] {
            let deadline = self
                .now_ns()
                .saturating_add(u64::try_from(FAILURE_DETECT.as_nanos()).expect("small interval"));
            self.conns[ci].state = ConnState::Dying;
            self.arm_timer(deadline, TimerEntry::Break { conn: ci });
        }
        (
            QpHandle::from_parts(ci as u32, 0),
            QpHandle::from_parts(ci as u32, 1),
        )
    }

    fn post_send(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        bytes: u64,
        imm: u64,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        debug_assert!(wait_for.is_none(), "CORE-Direct chaining is sim-only");
        self.check_postable(qp)?;
        self.conns[qp.conn_id() as usize].eps[usize::from(qp.endpoint())]
            .out
            .push_back(OutFrame {
                wr_id,
                two_sided: true,
                header: Self::encode_header(bytes, KIND_SEND, wr_id, imm),
                hdr_sent: 0,
                payload: Payload::Filler(bytes),
                payload_sent: 0,
            });
        Ok(())
    }

    fn post_write(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        tag: u64,
        payload: Bytes,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        debug_assert!(wait_for.is_none(), "CORE-Direct chaining is sim-only");
        self.check_postable(qp)?;
        self.conns[qp.conn_id() as usize].eps[usize::from(qp.endpoint())]
            .out
            .push_back(OutFrame {
                wr_id,
                two_sided: false,
                header: Self::encode_header(payload.len() as u64, KIND_WRITE, wr_id, tag),
                hdr_sent: 0,
                payload: Payload::Bytes(payload),
                payload_sent: 0,
            });
        Ok(())
    }

    fn post_recv(&mut self, qp: QpHandle, wr_id: WrId, max_len: u64) -> Result<(), VerbsError> {
        let node = self.check_postable(qp)?;
        let ci = qp.conn_id() as usize;
        let end = usize::from(qp.endpoint());
        // A held frame (arrived before any receive was posted) consumes
        // this receive immediately, in arrival order.
        let held = self.conns[ci].eps[end].held.pop_front();
        match held {
            Some((len, imm)) if len <= max_len => {
                self.push_delivery(
                    node,
                    Delivery::RecvDone {
                        qp,
                        wr_id,
                        len,
                        imm,
                    },
                );
            }
            Some(_) => self.break_conn_now(ci),
            None => self.conns[ci].eps[end].recvs.push_back((wr_id, max_len)),
        }
        Ok(())
    }

    fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let deadline = self.now_ns().saturating_add(delay.as_nanos());
        self.arm_timer(
            deadline,
            TimerEntry::Driver {
                node: node.index(),
                token,
            },
        );
    }

    fn consume_cpu(&mut self, _node: NodeId, _dur: SimDuration) {
        // Real hosts charge their own CPUs.
    }

    fn crash(&mut self, node: NodeId) {
        let idx = node.index();
        if self.crashed[idx] {
            return;
        }
        self.crashed[idx] = true;
        // Deliveries already queued for the dead node vanish: dead
        // software observes nothing, per the Transport contract.
        self.ready.retain(|(_, n, _)| n.index() != idx);
        let deadline = self
            .now_ns()
            .saturating_add(u64::try_from(FAILURE_DETECT.as_nanos()).expect("small interval"));
        for ci in 0..self.conns.len() {
            if self.conns[ci].state != ConnState::Alive {
                continue;
            }
            if self.conns[ci].eps.iter().any(|ep| ep.node == idx) {
                // The dead side posts nothing more and its unflushed
                // frames die with it; the survivor notices at the
                // failure-detect deadline.
                for ep in &mut self.conns[ci].eps {
                    if ep.node == idx {
                        ep.out.clear();
                    }
                }
                self.conns[ci].state = ConnState::Dying;
                self.arm_timer(deadline, TimerEntry::Break { conn: ci });
            }
        }
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    fn break_qp(&mut self, qp: QpHandle) {
        self.break_conn_now(qp.conn_id() as usize);
    }

    fn profile(&self, _node: NodeId) -> &HostProfile {
        &self.profile
    }

    fn posting_snapshot(&self, qp: QpHandle) -> PostingSnapshot {
        let conn = &self.conns[qp.conn_id() as usize];
        let ep = &conn.eps[usize::from(qp.endpoint())];
        PostingSnapshot {
            queued_sends: ep.out.len(),
            send_inflight: false,
            posted_recvs: ep.recvs.len(),
            rnr_armed: !ep.held.is_empty(),
            rnr_remaining: 0,
            broken: conn.state == ConnState::Broken,
        }
    }

    fn set_recorder(&mut self, recorder: trace::Recorder) {
        recorder.set_now(self.now_ns());
        self.recorder = recorder;
    }

    fn stats(&self) -> FabricStats {
        FabricStats {
            rnr_arms: self.rnr_arms,
            ..FabricStats::default()
        }
    }

    fn cpu_report(&self, _node: NodeId) -> CpuReport {
        CpuReport::default()
    }

    fn num_nodes(&self) -> usize {
        self.crashed.len()
    }
}

impl std::fmt::Debug for TcpFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpFabric")
            .field("nodes", &self.crashed.len())
            .field("conns", &self.conns.len())
            .finish()
    }
}

/// Starts a [`ClusterBuilder`] over a freshly-launched `n`-node TCP
/// fabric — the one-line entry point mirroring
/// `ClusterBuilder::new(spec)` on the simulated side.
///
/// # Errors
///
/// Any socket error during bring-up.
pub fn builder(n: usize) -> io::Result<ClusterBuilder<TcpFabric>> {
    Ok(ClusterBuilder::from_transport(TcpFabric::launch(n)?))
}

/// Cleanly shuts a TCP-backed cluster down, surfacing any socket error
/// the run observed (see [`TcpFabric::shutdown`]).
///
/// # Errors
///
/// The first socket error the fabric observed.
pub fn shutdown(cluster: TcpCluster) -> io::Result<()> {
    cluster.into_transport().shutdown()
}
