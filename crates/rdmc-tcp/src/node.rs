//! The per-node runtime: a full TCP mesh (the paper's bootstrap, §2), one
//! reader thread per peer, and a single event-loop thread that owns every
//! group's protocol engine — mirroring RDMC's single completion thread
//! (§4.2).

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};

use crate::wire::Frame;

/// Cluster-wide node identifier (index into the address list).
pub type NodeId = u32;

/// Configuration of a group, shared verbatim by all members (§4.1:
/// `create_group` is called concurrently with identical membership).
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// Member node ids; `members[0]` is the root (the only sender).
    pub members: Vec<NodeId>,
    /// Block-dissemination algorithm.
    pub algorithm: Algorithm,
    /// Block size in bytes.
    pub block_size: u64,
    /// Readiness credits granted ahead per peer.
    pub ready_window: u32,
    /// Block sends kept in flight at once.
    pub max_outstanding_sends: u32,
}

impl GroupConfig {
    /// A sensible default configuration: binomial pipeline, 1 MB blocks.
    pub fn new(members: Vec<NodeId>) -> Self {
        GroupConfig {
            members,
            algorithm: Algorithm::BinomialPipeline,
            block_size: 1 << 20,
            ready_window: 3,
            max_outstanding_sends: 3,
        }
    }
}

/// Supplies the receive buffer for an incoming message (the
/// `incoming_message_callback` of the paper's Fig. 1).
pub type IncomingCallback = Box<dyn FnMut(u64) -> Vec<u8> + Send>;

/// Invoked when a message is locally complete — at receivers with the
/// received bytes, at the root with the sent bytes (Fig. 1's
/// `message_completion_callback`).
pub type CompletionCallback = Box<dyn FnMut(&[u8]) + Send>;

enum Command {
    CreateGroup {
        number: u64,
        config: GroupConfig,
        incoming: IncomingCallback,
        completion: CompletionCallback,
        reply: Sender<bool>,
    },
    DestroyGroup {
        number: u64,
        reply: Sender<bool>,
    },
    Send {
        number: u64,
        data: Vec<u8>,
        reply: Sender<bool>,
    },
    PeerFrame {
        from: NodeId,
        frame: Frame,
    },
    PeerDown {
        node: NodeId,
    },
    Shutdown,
}

type SharedWriter = Arc<Mutex<TcpStream>>;

struct Group {
    config: GroupConfig,
    engine: GroupEngine,
    my_rank: Rank,
    rank_of: BTreeMap<NodeId, Rank>,
    incoming: IncomingCallback,
    completion: CompletionCallback,
    /// Root: payloads of queued messages, front = in flight.
    out_msgs: VecDeque<Vec<u8>>,
    /// Receiver: buffer of the message being assembled.
    recv_buf: Option<Vec<u8>>,
    /// Close barrier state.
    close_reply: Option<Sender<bool>>,
    close_votes: BTreeMap<Rank, (bool, u64)>,
    my_vote_sent: bool,
}

/// One RDMC endpoint over TCP: owns the mesh connections and the event
/// loop. Clone it freely; all clones drive the same node.
#[derive(Clone)]
pub struct RdmcNode {
    cmd_tx: Sender<Command>,
    my_id: NodeId,
    event_loop: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl std::fmt::Debug for RdmcNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmcNode").field("id", &self.my_id).finish()
    }
}

impl RdmcNode {
    /// Joins the cluster: binds nothing itself — the caller provides the
    /// listener (so tests can use ephemeral ports) and every peer's
    /// address. Blocks until the full mesh is up: this node dials every
    /// lower id and accepts from every higher id, exactly once.
    ///
    /// # Errors
    ///
    /// Any socket error during mesh construction.
    pub fn start(
        my_id: NodeId,
        listener: TcpListener,
        peers: &BTreeMap<NodeId, SocketAddr>,
    ) -> io::Result<RdmcNode> {
        let (cmd_tx, cmd_rx) = unbounded();
        let mut streams: BTreeMap<NodeId, TcpStream> = BTreeMap::new();
        // Dial down, accept up.
        for (&peer, &addr) in peers.range(..my_id) {
            let mut stream = retry_connect(addr)?;
            Frame::Hello { node: my_id }.write_to(&mut stream)?;
            stream.flush()?;
            streams.insert(peer, stream);
        }
        let higher = peers.range(my_id + 1..).count();
        for _ in 0..higher {
            let (mut stream, _) = listener.accept()?;
            let hello = Frame::read_from(&mut stream)?;
            let Frame::Hello { node } = hello else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected hello frame",
                ));
            };
            streams.insert(node, stream);
        }
        // Spawn a reader per peer; writers are the same sockets behind
        // mutexes.
        let mut writers = BTreeMap::new();
        for (peer, stream) in streams {
            stream.set_nodelay(true).ok();
            let reader = stream.try_clone()?;
            writers.insert(peer, Arc::new(Mutex::new(stream)));
            let tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name(format!("rdmc-read-{my_id}-from-{peer}"))
                .spawn(move || reader_loop(peer, reader, tx))
                .expect("spawn reader");
        }
        let loop_tx = cmd_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rdmc-loop-{my_id}"))
            .spawn(move || EventLoop::new(my_id, writers, loop_tx).run(cmd_rx))
            .expect("spawn event loop");
        Ok(RdmcNode {
            cmd_tx,
            my_id,
            event_loop: Arc::new(Mutex::new(Some(handle))),
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.my_id
    }

    /// Creates a group (call concurrently on every member with identical
    /// configuration, per the paper's Fig. 1). Returns `false` if the
    /// group number is taken or this node is not a member.
    pub fn create_group(
        &self,
        number: u64,
        config: GroupConfig,
        incoming: IncomingCallback,
        completion: CompletionCallback,
    ) -> bool {
        let (reply, rx) = bounded(1);
        if self
            .cmd_tx
            .send(Command::CreateGroup {
                number,
                config,
                incoming,
                completion,
                reply,
            })
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// Attempts to multicast `data` on the group. Fails (returns `false`)
    /// if this node is not the root, the group is unknown, or it has
    /// wedged on a failure. Completion is reported via the group's
    /// completion callback.
    pub fn send(&self, number: u64, data: Vec<u8>) -> bool {
        let (reply, rx) = bounded(1);
        if self
            .cmd_tx
            .send(Command::Send {
                number,
                data,
                reply,
            })
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// Destroys the group: blocks until every member has voted on the
    /// close barrier (call on every member). Returns `true` only if every
    /// member saw a clean history with the same message count — the §4.6
    /// guarantee that every message reached every destination.
    pub fn destroy_group(&self, number: u64) -> bool {
        let (reply, rx) = bounded(1);
        if self
            .cmd_tx
            .send(Command::DestroyGroup { number, reply })
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// Stops the node: closes connections and terminates the event loop.
    pub fn shutdown(&self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(handle) = self.event_loop.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Dial with brief retries: peers start listening at slightly different
/// times during cluster bring-up.
fn retry_connect(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

fn reader_loop(peer: NodeId, stream: TcpStream, tx: Sender<Command>) {
    let mut reader = BufReader::new(stream);
    loop {
        match Frame::read_from(&mut reader) {
            Ok(frame) => {
                if tx.send(Command::PeerFrame { from: peer, frame }).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(Command::PeerDown { node: peer });
                return;
            }
        }
    }
}

struct EventLoop {
    my_id: NodeId,
    writers: BTreeMap<NodeId, SharedWriter>,
    cmd_tx: Sender<Command>,
    groups: BTreeMap<u64, Group>,
    /// Frames for groups this node has not created yet (peers may race
    /// ahead of our `create_group`).
    stashed: BTreeMap<u64, Vec<(NodeId, Frame)>>,
}

impl EventLoop {
    fn new(
        my_id: NodeId,
        writers: BTreeMap<NodeId, SharedWriter>,
        cmd_tx: Sender<Command>,
    ) -> Self {
        EventLoop {
            my_id,
            writers,
            cmd_tx,
            groups: BTreeMap::new(),
            stashed: BTreeMap::new(),
        }
    }

    fn run(mut self, cmd_rx: Receiver<Command>) {
        while let Ok(cmd) = cmd_rx.recv() {
            match cmd {
                Command::CreateGroup {
                    number,
                    config,
                    incoming,
                    completion,
                    reply,
                } => {
                    let ok = self.create_group(number, config, incoming, completion);
                    let _ = reply.send(ok);
                    if ok {
                        // Replay frames that arrived before we created it.
                        if let Some(frames) = self.stashed.remove(&number) {
                            for (from, frame) in frames {
                                self.handle_frame(from, frame);
                            }
                        }
                        self.try_close(number);
                    }
                }
                Command::DestroyGroup { number, reply } => match self.groups.get_mut(&number) {
                    Some(g) if g.close_reply.is_none() => {
                        g.close_reply = Some(reply);
                        self.try_close(number);
                    }
                    _ => {
                        let _ = reply.send(false);
                    }
                },
                Command::Send {
                    number,
                    data,
                    reply,
                } => {
                    let ok = self.start_send(number, data);
                    let _ = reply.send(ok);
                }
                Command::PeerFrame { from, frame } => self.handle_frame(from, frame),
                Command::PeerDown { node } => self.peer_down(node),
                Command::Shutdown => {
                    for w in self.writers.values() {
                        let _ = w.lock().shutdown(std::net::Shutdown::Both);
                    }
                    return;
                }
            }
        }
    }

    fn create_group(
        &mut self,
        number: u64,
        config: GroupConfig,
        incoming: IncomingCallback,
        completion: CompletionCallback,
    ) -> bool {
        if self.groups.contains_key(&number) {
            return false;
        }
        let Some(my_rank) = config.members.iter().position(|&m| m == self.my_id) else {
            return false;
        };
        let my_rank = my_rank as Rank;
        let mut rank_of = BTreeMap::new();
        for (rank, &node) in config.members.iter().enumerate() {
            if rank_of.insert(node, rank as Rank).is_some() {
                return false; // duplicate member
            }
        }
        let planner = Arc::new(SchedulePlanner::new(config.algorithm.clone()));
        let (engine, initial) = GroupEngine::new(EngineConfig {
            rank: my_rank,
            num_nodes: config.members.len() as u32,
            block_size: config.block_size,
            ready_window: config.ready_window,
            max_outstanding_sends: config.max_outstanding_sends,
            planner,
        });
        self.groups.insert(
            number,
            Group {
                config,
                engine,
                my_rank,
                rank_of,
                incoming,
                completion,
                out_msgs: VecDeque::new(),
                recv_buf: None,
                close_reply: None,
                close_votes: BTreeMap::new(),
                my_vote_sent: false,
            },
        );
        self.perform(number, initial);
        true
    }

    fn start_send(&mut self, number: u64, data: Vec<u8>) -> bool {
        let Some(g) = self.groups.get_mut(&number) else {
            return false;
        };
        if g.my_rank != 0 || g.engine.is_wedged() || g.close_reply.is_some() {
            return false;
        }
        let size = data.len() as u64;
        g.out_msgs.push_back(data);
        self.feed(number, Event::StartSend { size });
        true
    }

    fn handle_frame(&mut self, from: NodeId, frame: Frame) {
        let number = match &frame {
            Frame::Ready { group }
            | Frame::Block { group, .. }
            | Frame::Failure { group, .. }
            | Frame::CloseVote { group, .. } => *group,
            Frame::Hello { .. } => return, // only valid during bootstrap
        };
        if !self.groups.contains_key(&number) {
            self.stashed.entry(number).or_default().push((from, frame));
            return;
        }
        let from_rank = {
            let g = &self.groups[&number];
            match g.rank_of.get(&from) {
                Some(&r) => r,
                None => return, // not a member of this group: ignore
            }
        };
        match frame {
            Frame::Hello { .. } => {}
            Frame::Ready { .. } => self.feed(number, Event::ReadyReceived { from: from_rank }),
            Frame::Block {
                total_size,
                payload,
                ..
            } => {
                // Land the payload at the schedule-determined offset first
                // (receivers other than the root; the root already holds
                // the bytes it is sending).
                let g = self.groups.get_mut(&number).expect("group exists");
                if g.my_rank != 0 {
                    if let Some(desc) = g.engine.incoming_block_info(from_rank, total_size) {
                        debug_assert_eq!(desc.bytes as usize, payload.len());
                        let offset = desc.offset;
                        if g.recv_buf.is_none() {
                            // First block of a message: get the buffer from
                            // the application (the engine will also emit
                            // AllocateBuffer; we allocate here because the
                            // bytes are in hand now).
                            let buf = (g.incoming)(total_size);
                            assert!(
                                buf.len() as u64 >= total_size,
                                "incoming_message_callback returned a short buffer"
                            );
                            g.recv_buf = Some(buf);
                        }
                        let buf = g.recv_buf.as_mut().expect("buffer just ensured");
                        let start = offset as usize;
                        buf[start..start + payload.len()].copy_from_slice(&payload);
                    }
                }
                self.feed(
                    number,
                    Event::BlockReceived {
                        from: from_rank,
                        total_size,
                    },
                );
            }
            Frame::Failure { failed_rank, .. } => {
                self.feed(number, Event::PeerFailed { rank: failed_rank });
                self.try_close(number);
            }
            Frame::CloseVote {
                clean, completed, ..
            } => {
                let g = self.groups.get_mut(&number).expect("group exists");
                g.close_votes.entry(from_rank).or_insert((clean, completed));
                self.try_close(number);
            }
        }
    }

    fn peer_down(&mut self, node: NodeId) {
        let numbers: Vec<u64> = self.groups.keys().copied().collect();
        for number in numbers {
            let rank = self.groups[&number].rank_of.get(&node).copied();
            if let Some(rank) = rank {
                self.feed(number, Event::PeerFailed { rank });
                // A dead member can never vote; count it as unclean.
                let g = self.groups.get_mut(&number).expect("group exists");
                g.close_votes.entry(rank).or_insert((false, 0));
                self.try_close(number);
            }
        }
    }

    /// Feeds one event and executes resulting actions, looping over the
    /// synthetic SendCompleted events a blocking TCP write produces.
    fn feed(&mut self, number: u64, event: Event) {
        let mut queue = VecDeque::from([event]);
        while let Some(ev) = queue.pop_front() {
            let actions = {
                let g = self.groups.get_mut(&number).expect("group exists");
                match g.engine.handle(ev) {
                    Ok(a) => a,
                    Err(e) => {
                        // Protocol violation: treat like a failure of the
                        // whole group.
                        eprintln!("rdmc-tcp: group {number}: protocol error: {e}");
                        let _ = g;
                        self.wedge_all(number);
                        return;
                    }
                }
            };
            for action in actions {
                self.execute(number, action, &mut queue);
            }
        }
        self.try_close(number);
    }

    fn execute(&mut self, number: u64, action: Action, queue: &mut VecDeque<Event>) {
        match action {
            Action::SendReady { to } => {
                self.send_frame_to_rank(number, to, &Frame::Ready { group: number });
            }
            Action::SendBlock {
                to,
                offset,
                bytes,
                total_size,
                ..
            } => {
                let g = self.groups.get_mut(&number).expect("group exists");
                let payload: Vec<u8> = if g.my_rank == 0 {
                    let msg = g.out_msgs.front().expect("sending without a message");
                    msg[offset as usize..(offset + bytes) as usize].to_vec()
                } else {
                    let buf = g.recv_buf.as_ref().expect("relaying without a buffer");
                    buf[offset as usize..(offset + bytes) as usize].to_vec()
                };
                self.send_frame_to_rank(
                    number,
                    to,
                    &Frame::Block {
                        group: number,
                        total_size,
                        payload,
                    },
                );
                // TCP's blocking write *is* the send completion: once the
                // bytes are in the kernel, the connection's reliability
                // takes over (like the RC hardware ack).
                queue.push_back(Event::SendCompleted { to });
            }
            Action::AllocateBuffer { .. } => {
                // Allocation already happened when the first payload was
                // landed in handle_frame.
            }
            Action::DeliverMessage { .. } => {
                let g = self.groups.get_mut(&number).expect("group exists");
                if g.my_rank == 0 {
                    let msg = g.out_msgs.pop_front().expect("completing unknown message");
                    (g.completion)(&msg);
                } else {
                    let buf = g.recv_buf.take().expect("completing without a buffer");
                    (g.completion)(&buf);
                }
            }
            Action::RelayFailure { failed } => {
                let members = self.groups[&number].config.members.clone();
                for (rank, _) in members.iter().enumerate() {
                    let rank = rank as Rank;
                    if rank != self.groups[&number].my_rank {
                        self.send_frame_to_rank(
                            number,
                            rank,
                            &Frame::Failure {
                                group: number,
                                failed_rank: failed,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Marks the whole group failed locally (protocol violation path).
    fn wedge_all(&mut self, number: u64) {
        let my_rank = self.groups[&number].my_rank;
        let _ = self
            .groups
            .get_mut(&number)
            .expect("group exists")
            .engine
            .handle(Event::PeerFailed { rank: my_rank });
        self.try_close(number);
    }

    fn send_frame_to_rank(&mut self, number: u64, rank: Rank, frame: &Frame) {
        let node = self.groups[&number].config.members[rank as usize];
        let Some(writer) = self.writers.get(&node) else {
            return;
        };
        let result = {
            let mut stream = writer.lock();
            frame.write_to(&mut *stream).and_then(|()| stream.flush())
        };
        if result.is_err() {
            let _ = self.cmd_tx.send(Command::PeerDown { node });
        }
    }

    /// Drives the close barrier (§4.6). The local vote is cast once the
    /// engine is quiescent (or wedged); the barrier completes when every
    /// member's vote is in; success requires unanimous cleanliness.
    fn try_close(&mut self, number: u64) {
        let Some(g) = self.groups.get_mut(&number) else {
            return;
        };
        // Vote once the close barrier is visibly underway — either our
        // application called destroy_group, or a peer's vote arrived (all
        // members call destroy, per Fig. 1, but not simultaneously).
        // Blocking our vote on the local destroy call would deadlock
        // callers that destroy members one at a time.
        if g.close_reply.is_none() && g.close_votes.is_empty() {
            return;
        }
        // Receivers additionally wait for the root's vote and match its
        // authoritative message count: being idle *between* two messages
        // must not count as done (the §4.6 guarantee depends on it). A
        // wedged engine votes unclean immediately — waiting would hang.
        let quiescent = g.engine.is_idle() || g.engine.is_wedged();
        let may_vote = if g.engine.is_wedged() {
            true
        } else if g.my_rank == 0 {
            quiescent
        } else {
            match g.close_votes.get(&0) {
                Some(&(false, _)) => true,
                Some(&(true, root_count)) => {
                    quiescent && g.engine.messages_completed() == root_count
                }
                None => false,
            }
        };
        let vote_now = if !g.my_vote_sent && may_vote {
            g.my_vote_sent = true;
            let clean = !g.engine.is_wedged();
            let my_rank = g.my_rank;
            let completed = g.engine.messages_completed();
            g.close_votes.insert(my_rank, (clean, completed));
            Some((clean, completed, my_rank, g.config.members.len() as Rank))
        } else {
            None
        };
        if let Some((clean, completed, my_rank, n)) = vote_now {
            let frame = Frame::CloseVote {
                group: number,
                clean,
                completed,
            };
            for rank in 0..n {
                if rank != my_rank {
                    self.send_frame_to_rank(number, rank, &frame);
                }
            }
        }
        let g = self.groups.get_mut(&number).expect("group exists");
        let n = g.config.members.len();
        if g.my_vote_sent && g.close_votes.len() == n && g.close_reply.is_some() {
            let all_clean = g.close_votes.values().all(|&(c, _)| c);
            let root_count = g.close_votes.get(&0).map(|&(_, c)| c);
            let counts_agree = match root_count {
                Some(rc) => g.close_votes.values().all(|&(_, c)| c == rc),
                None => false,
            };
            let wedged = g.engine.is_wedged();
            if let Some(reply) = g.close_reply.take() {
                let _ = reply.send(all_clean && counts_agree && !wedged);
            }
            self.groups.remove(&number);
        }
    }

    fn perform(&mut self, number: u64, actions: Vec<Action>) {
        let mut queue = VecDeque::new();
        for action in actions {
            self.execute(number, action, &mut queue);
        }
        while let Some(ev) = queue.pop_front() {
            self.feed(number, ev);
        }
    }
}
