//! A standalone RDMC-over-TCP node: run one process per machine (or per
//! terminal) and multicast files or synthetic payloads across them.
//!
//! ```sh
//! # Terminal 1 (the root, node 0 — sends three 8 MB messages):
//! rdmc-node --id 0 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 \
//!           --send-count 3 --send-bytes 8388608
//! # Terminals 2 and 3 (receivers):
//! rdmc-node --id 1 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
//! rdmc-node --id 2 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
//! ```
//!
//! Every node prints a checksum per completed message; the root exits
//! after a clean group close, certifying delivery everywhere (§4.6).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;

use rdmc::Algorithm;
use rdmc_tcp::{GroupConfig, NodeId, RdmcNode};

struct Options {
    id: NodeId,
    peers: Vec<SocketAddr>,
    send_count: usize,
    send_bytes: usize,
    block_bytes: u64,
    algorithm: Algorithm,
}

fn usage() -> ! {
    eprintln!(
        "usage: rdmc-node --id <n> --peers <addr,addr,...> \
         [--send-count <n>] [--send-bytes <n>] [--block-bytes <n>] \
         [--algorithm sequential|chain|tree|pipeline]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut id = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut send_count = 0usize;
    let mut send_bytes = 1usize << 20;
    let mut block_bytes = 256u64 << 10;
    let mut algorithm = Algorithm::BinomialPipeline;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => id = Some(value().parse().unwrap_or_else(|_| usage())),
            "--peers" => {
                peers = value()
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--send-count" => send_count = value().parse().unwrap_or_else(|_| usage()),
            "--send-bytes" => send_bytes = value().parse().unwrap_or_else(|_| usage()),
            "--block-bytes" => block_bytes = value().parse().unwrap_or_else(|_| usage()),
            "--algorithm" => {
                algorithm = match value().as_str() {
                    "sequential" => Algorithm::Sequential,
                    "chain" => Algorithm::Chain,
                    "tree" => Algorithm::BinomialTree,
                    "pipeline" => Algorithm::BinomialPipeline,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    let id = id.unwrap_or_else(|| usage());
    if peers.len() < 2 || (id as usize) >= peers.len() {
        usage();
    }
    Options {
        id,
        peers,
        send_count,
        send_bytes,
        block_bytes,
        algorithm,
    }
}

fn checksum(data: &[u8]) -> u64 {
    data.iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

fn main() -> std::io::Result<()> {
    let opts = parse_args();
    let listener = TcpListener::bind(opts.peers[opts.id as usize])?;
    let peer_map: BTreeMap<NodeId, SocketAddr> = opts
        .peers
        .iter()
        .enumerate()
        .map(|(i, &a)| (i as NodeId, a))
        .collect();
    eprintln!(
        "node {}: joining {}-node mesh...",
        opts.id,
        opts.peers.len()
    );
    let node = RdmcNode::start(opts.id, listener, &peer_map)?;
    eprintln!("node {}: mesh up", opts.id);

    let members: Vec<NodeId> = (0..opts.peers.len() as NodeId).collect();
    let (done_tx, done_rx) = mpsc::channel();
    let my_id = opts.id;
    let mut seen = 0usize;
    assert!(node.create_group(
        1,
        GroupConfig {
            algorithm: opts.algorithm.clone(),
            block_size: opts.block_bytes,
            ..GroupConfig::new(members)
        },
        Box::new(|size| vec![0; size as usize]),
        Box::new(move |data| {
            seen += 1;
            println!(
                "node {my_id}: message {seen}: {} bytes, checksum {:016x}",
                data.len(),
                checksum(data)
            );
            done_tx.send(()).ok();
        }),
    ));

    if opts.id == 0 {
        for i in 0..opts.send_count {
            let payload: Vec<u8> = (0..opts.send_bytes)
                .map(|j| ((j * 31 + i * 7) % 251) as u8)
                .collect();
            if !node.send(1, payload) {
                eprintln!("node 0: send {i} rejected");
                std::process::exit(1);
            }
        }
        // If the group wedges on a failure, completions stop coming; the
        // timeout lets the close barrier report the damage instead of
        // hanging (the Fig. 1 API reports failure through destroy_group).
        for i in 0..opts.send_count {
            if done_rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .is_err()
            {
                eprintln!("node 0: timed out waiting for completion {i}; closing");
                break;
            }
        }
    }
    // The close barrier does the waiting: receivers vote only once they
    // have completed as many messages as the root reports.
    drop(done_rx);
    let clean = node.destroy_group(1);
    eprintln!(
        "node {}: group closed ({})",
        opts.id,
        if clean {
            "clean: delivery certified"
        } else {
            "UNCLEAN"
        }
    );
    node.shutdown();
    std::process::exit(if clean { 0 } else { 1 });
}
