//! Length-delimited wire frames for the TCP transport.
//!
//! TCP gives the same per-connection guarantees RDMC needs from RDMA RC
//! (ordered, reliable, exactly-once), so the framing stays minimal: a
//! one-byte tag, fixed-width little-endian fields, and the raw block
//! payload. As on RDMA, a block frame does *not* carry its block number —
//! the receiver derives it from the schedule and arrival order; it
//! carries the total message size where RDMA would use the immediate
//! value.

use std::io::{self, Read, Write};

/// A protocol frame exchanged between two members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Bootstrap hello: identifies the connecting node.
    Hello {
        /// The sender's node id.
        node: u32,
    },
    /// Ready-for-block notice (the one-sided write of §4.2).
    Ready {
        /// Group the readiness applies to.
        group: u64,
    },
    /// One block of a message. The receiver computes which block from its
    /// schedule.
    Block {
        /// Group the block belongs to.
        group: u64,
        /// Total message size ("immediate value").
        total_size: u64,
        /// The block's bytes (possibly empty for a zero-length message).
        payload: Vec<u8>,
    },
    /// Relayed failure notice (§3 property 6).
    Failure {
        /// Group the failure applies to.
        group: u64,
        /// Rank (within that group) that failed.
        failed_rank: u32,
    },
    /// Group-close barrier vote (§4.6: a successful close proves every
    /// message reached every destination). The root's vote carries the
    /// authoritative message count; receivers vote only once they have
    /// completed that many, which closes the idle-between-messages race.
    CloseVote {
        /// Group being closed.
        group: u64,
        /// Whether the voter saw a fully clean history.
        clean: bool,
        /// Messages the voter has completed locally.
        completed: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_READY: u8 = 2;
const TAG_BLOCK: u8 = 3;
const TAG_FAILURE: u8 = 4;
const TAG_CLOSE: u8 = 5;

/// Hard cap on a single block payload (sanity against corrupt frames).
const MAX_PAYLOAD: u64 = 1 << 32;

impl Frame {
    /// Writes the frame to `w` (buffered by the caller).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            Frame::Hello { node } => {
                w.write_all(&[TAG_HELLO])?;
                w.write_all(&node.to_le_bytes())
            }
            Frame::Ready { group } => {
                w.write_all(&[TAG_READY])?;
                w.write_all(&group.to_le_bytes())
            }
            Frame::Block {
                group,
                total_size,
                payload,
            } => {
                w.write_all(&[TAG_BLOCK])?;
                w.write_all(&group.to_le_bytes())?;
                w.write_all(&total_size.to_le_bytes())?;
                w.write_all(&(payload.len() as u64).to_le_bytes())?;
                w.write_all(payload)
            }
            Frame::Failure { group, failed_rank } => {
                w.write_all(&[TAG_FAILURE])?;
                w.write_all(&group.to_le_bytes())?;
                w.write_all(&failed_rank.to_le_bytes())
            }
            Frame::CloseVote {
                group,
                clean,
                completed,
            } => {
                w.write_all(&[TAG_CLOSE])?;
                w.write_all(&group.to_le_bytes())?;
                w.write_all(&[u8::from(*clean)])?;
                w.write_all(&completed.to_le_bytes())
            }
        }
    }

    /// Reads one frame from `r` (blocking).
    ///
    /// # Errors
    ///
    /// Returns the reader's I/O error (including clean EOF as
    /// `UnexpectedEof`) or `InvalidData` for unknown tags / absurd
    /// lengths.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Frame> {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        match tag[0] {
            TAG_HELLO => Ok(Frame::Hello { node: read_u32(r)? }),
            TAG_READY => Ok(Frame::Ready {
                group: read_u64(r)?,
            }),
            TAG_BLOCK => {
                let group = read_u64(r)?;
                let total_size = read_u64(r)?;
                let len = read_u64(r)?;
                if len > MAX_PAYLOAD {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("block payload of {len} bytes is implausible"),
                    ));
                }
                let mut payload = vec![0u8; len as usize];
                r.read_exact(&mut payload)?;
                Ok(Frame::Block {
                    group,
                    total_size,
                    payload,
                })
            }
            TAG_FAILURE => Ok(Frame::Failure {
                group: read_u64(r)?,
                failed_rank: read_u32(r)?,
            }),
            TAG_CLOSE => {
                let group = read_u64(r)?;
                let mut flag = [0u8; 1];
                r.read_exact(&mut flag)?;
                let completed = read_u64(r)?;
                Ok(Frame::CloseVote {
                    group,
                    clean: flag[0] != 0,
                    completed,
                })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame tag {other}"),
            )),
        }
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello { node: 7 });
        round_trip(Frame::Ready { group: 42 });
        round_trip(Frame::Block {
            group: 1,
            total_size: 1 << 30,
            payload: vec![1, 2, 3, 4, 5],
        });
        round_trip(Frame::Block {
            group: 2,
            total_size: 0,
            payload: vec![],
        });
        round_trip(Frame::Failure {
            group: 9,
            failed_rank: 3,
        });
        round_trip(Frame::CloseVote {
            group: 5,
            clean: true,
            completed: 42,
        });
        round_trip(Frame::CloseVote {
            group: 5,
            clean: false,
            completed: 0,
        });
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        Frame::Ready { group: 1 }.write_to(&mut buf).unwrap();
        Frame::Ready { group: 2 }.write_to(&mut buf).unwrap();
        let mut slice = buf.as_slice();
        assert_eq!(
            Frame::read_from(&mut slice).unwrap(),
            Frame::Ready { group: 1 }
        );
        assert_eq!(
            Frame::read_from(&mut slice).unwrap(),
            Frame::Ready { group: 2 }
        );
    }

    #[test]
    fn unknown_tag_is_invalid_data() {
        let err = Frame::read_from(&mut [200u8].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        Frame::Block {
            group: 1,
            total_size: 10,
            payload: vec![0; 10],
        }
        .write_to(&mut buf)
        .unwrap();
        buf.truncate(buf.len() - 3);
        let err = Frame::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
