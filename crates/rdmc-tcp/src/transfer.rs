//! A multicast file-transfer tool on top of the Fig. 1 API — the paper's
//! motivating application (§1: pushing packages, VM images and input
//! files; §4.6: "if a multicast file transfer finishes and the close is
//! successful, the file was successfully delivered to the full set of
//! receivers, with no duplications, omissions or corruption").
//!
//! Each file travels as one RDMC message framed as
//! `[name_len u32][name][crc64 u64][content]`; receivers verify the
//! checksum before surfacing the file. The sender's [`FileCast::send`]
//! returns only after the group close barrier: `true` certifies every
//! file reached every receiver intact.

use std::sync::mpsc;

use crate::{GroupConfig, IncomingCallback, RdmcNode};

/// A named payload (e.g. a file) to multicast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CastFile {
    /// The file's name (any UTF-8 string; not interpreted).
    pub name: String,
    /// The file's bytes.
    pub content: Vec<u8>,
}

/// Checksum used to end-to-end verify file content (a 64-bit FNV-1a —
/// adequate against corruption, not an authenticator).
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn encode(file: &CastFile) -> Vec<u8> {
    let name = file.name.as_bytes();
    let mut out = Vec::with_capacity(4 + name.len() + 8 + file.content.len());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&checksum(&file.content).to_le_bytes());
    out.extend_from_slice(&file.content);
    out
}

/// Decodes a framed file, verifying its checksum.
fn decode(data: &[u8]) -> Result<CastFile, String> {
    if data.len() < 12 {
        return Err("short frame".to_owned());
    }
    let name_len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    if data.len() < 4 + name_len + 8 {
        return Err("truncated name".to_owned());
    }
    let name = std::str::from_utf8(&data[4..4 + name_len])
        .map_err(|_| "name is not UTF-8".to_owned())?
        .to_owned();
    let sum = u64::from_le_bytes(
        data[4 + name_len..4 + name_len + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let content = data[4 + name_len + 8..].to_vec();
    if checksum(&content) != sum {
        return Err(format!("checksum mismatch for '{name}'"));
    }
    Ok(CastFile { name, content })
}

/// The file-multicast tool. See the module docs.
pub struct FileCast;

/// A receiver-side session; call [`FileCastSession::finish`] once the
/// application is done to join the close barrier.
pub struct FileCastSession {
    node: RdmcNode,
    group: u64,
}

impl FileCastSession {
    /// Joins the group close barrier; `true` certifies a clean transfer
    /// history (every file delivered everywhere).
    pub fn finish(self) -> bool {
        self.node.destroy_group(self.group)
    }
}

impl FileCast {
    /// Root side: multicasts `files` on a fresh group `group` and closes
    /// it. Returns `true` only if the close barrier certifies that every
    /// file reached every member (§4.6). On `false`, the caller owns the
    /// retry policy — e.g. re-send everything on a new group among the
    /// survivors, or first run an application-level status check to skip
    /// files that made it (exactly the options the paper describes).
    pub fn send(node: &RdmcNode, group: u64, config: GroupConfig, files: &[CastFile]) -> bool {
        let (tx, rx) = mpsc::channel();
        let count = files.len();
        let created = node.create_group(
            group,
            config,
            Box::new(|size: u64| vec![0u8; size as usize]) as IncomingCallback,
            Box::new(move |_| {
                tx.send(()).ok();
            }),
        );
        if !created {
            return false;
        }
        for file in files {
            if !node.send(group, encode(file)) {
                // Wedged mid-batch: fall through to the certifying close.
                break;
            }
        }
        // Local completions (memory reuse) for each accepted send...
        for _ in 0..count {
            if rx
                .recv_timeout(std::time::Duration::from_secs(300))
                .is_err()
            {
                break;
            }
        }
        // ...and the barrier that certifies the receivers.
        node.destroy_group(group)
    }

    /// Receiver side: joins group `group` and invokes `on_file` for every
    /// verified file. Call [`FileCastSession::finish`] to complete the
    /// close barrier (after the sender's `send` has been issued).
    pub fn receive(
        node: &RdmcNode,
        group: u64,
        config: GroupConfig,
        mut on_file: impl FnMut(CastFile) + Send + 'static,
    ) -> Option<FileCastSession> {
        let created = node.create_group(
            group,
            config,
            Box::new(|size: u64| vec![0u8; size as usize]) as IncomingCallback,
            Box::new(move |data| match decode(data) {
                Ok(file) => on_file(file),
                Err(e) => eprintln!("filecast: dropping corrupt file: {e}"),
            }),
        );
        created.then(|| FileCastSession {
            node: node.clone(),
            group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let f = CastFile {
            name: "images/vm-base.qcow2".to_owned(),
            content: (0..100_000u32).map(|i| (i % 251) as u8).collect(),
        };
        let decoded = decode(&encode(&f)).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn empty_file_round_trips() {
        let f = CastFile {
            name: "empty".to_owned(),
            content: vec![],
        };
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn corruption_is_detected() {
        let f = CastFile {
            name: "a".to_owned(),
            content: vec![1, 2, 3, 4, 5],
        };
        let mut wire = encode(&f);
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert!(decode(&wire).unwrap_err().contains("checksum"));
    }

    #[test]
    fn truncation_is_detected() {
        let f = CastFile {
            name: "abc".to_owned(),
            content: vec![9; 64],
        };
        let wire = encode(&f);
        assert!(decode(&wire[..6]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        assert_eq!(checksum(b"hello"), checksum(b"hello"));
        assert_ne!(checksum(b"hello"), checksum(b"hellp"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
