//! Integration suite for the TCP backend behind the unified
//! [`rdmc_sim::ClusterBuilder`] API: every algorithm, multi-message
//! ordering, overlapping groups, the §4.6 close barrier (clean and
//! unclean), shutdown hygiene across repeated launches, and the
//! zero-RNR discipline observed on real sockets.

use rdmc::Algorithm;
use rdmc_sim::{GroupSpec, RecoveryConfig};
use simnet::SimDuration;
use verbs::Transport;

const KB: u64 = 1 << 10;

fn spec(members: Vec<usize>, algorithm: Algorithm) -> GroupSpec {
    GroupSpec {
        members,
        algorithm,
        block_size: 8 * KB,
        ready_window: 2,
        max_outstanding_sends: 2,
    }
}

/// Every dissemination algorithm delivers to every member over TCP.
#[test]
fn all_algorithms_deliver() {
    let algorithms = [
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ];
    for algorithm in algorithms {
        let mut cluster = rdmc_tcp::builder(5).expect("launch").build();
        let group = cluster.create_group(spec((0..5).collect(), algorithm.clone()));
        cluster.submit_send(group, 60 * KB);
        cluster.run();
        assert!(cluster.all_quiescent(), "{algorithm:?}: not quiescent");
        for r in cluster.message_results() {
            assert!(
                r.delivered_at.iter().all(|d| d.is_some()),
                "{algorithm:?}: a member missed the message"
            );
        }
        rdmc_tcp::shutdown(cluster).expect("clean shutdown");
    }
}

/// The rack-aware hybrid schedule (§4.3) also runs over TCP.
#[test]
fn hybrid_algorithm_delivers() {
    let mut cluster = rdmc_tcp::builder(6).expect("launch").build();
    let group = cluster.create_group(spec(
        (0..6).collect(),
        Algorithm::Hybrid {
            rack_of: vec![0, 0, 1, 1, 2, 2],
        },
    ));
    cluster.submit_send(group, 48 * KB);
    cluster.run();
    assert!(cluster.all_quiescent());
    for r in cluster.message_results() {
        assert!(r.delivered_at.iter().all(|d| d.is_some()));
    }
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}

/// Multiple messages complete in initiation order at every member
/// (§3 property 4), including a 1-byte message.
#[test]
fn several_messages_deliver_in_order() {
    let mut cluster = rdmc_tcp::builder(4).expect("launch").build();
    let group = cluster.create_group(spec((0..4).collect(), Algorithm::BinomialPipeline));
    let sizes = [24 * KB, 1, 33 * KB, 9 * KB];
    for &size in &sizes {
        cluster.submit_send(group, size);
    }
    cluster.run();
    assert!(cluster.all_quiescent());
    let results = cluster.message_results();
    assert_eq!(results.len(), sizes.len());
    for member in 0..4 {
        let mut last = None;
        for r in &results {
            let t = r.delivered_at[member].expect("delivered");
            assert!(
                last.is_none_or(|prev| prev <= t),
                "member {member} reordered"
            );
            last = Some(t);
        }
    }
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}

/// Two groups with overlapping membership share the fabric without
/// interfering.
#[test]
fn overlapping_groups_coexist() {
    let mut cluster = rdmc_tcp::builder(6).expect("launch").build();
    let g0 = cluster.create_group(spec(vec![0, 1, 2, 3], Algorithm::BinomialPipeline));
    let g1 = cluster.create_group(spec(vec![2, 3, 4, 5], Algorithm::Chain));
    cluster.submit_send(g0, 40 * KB);
    cluster.submit_send(g1, 24 * KB);
    cluster.run();
    assert!(cluster.all_quiescent());
    for r in cluster.message_results() {
        assert!(r.delivered_at.iter().all(|d| d.is_some()));
    }
    assert!(cluster.destroy_group(g0));
    assert!(cluster.destroy_group(g1));
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}

/// The close barrier under concurrent sends: `destroy_group` drains all
/// in-flight traffic first and certifies every message reached every
/// member (§4.6 — a clean close proves delivery).
#[test]
fn close_barrier_under_concurrent_sends() {
    let mut cluster = rdmc_tcp::builder(5).expect("launch").build();
    let group = cluster.create_group(spec((0..5).collect(), Algorithm::BinomialPipeline));
    for _ in 0..4 {
        cluster.submit_send(group, 32 * KB);
    }
    // No run() in between: destroy must drain the concurrent sends
    // itself before judging the history.
    assert!(
        cluster.destroy_group(group),
        "clean history must close clean"
    );
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}

/// The close barrier reports an unclean history when a member dies
/// mid-transfer.
#[test]
fn close_barrier_reports_lost_member() {
    let mut cluster = rdmc_tcp::builder(4).expect("launch").build();
    let group = cluster.create_group(spec((0..4).collect(), Algorithm::BinomialPipeline));
    cluster.submit_send(group, 64 * KB);
    cluster.crash_now(2);
    cluster.run();
    assert!(
        !cluster.destroy_group(group),
        "close must report the lost member"
    );
    rdmc_tcp::shutdown(cluster).expect("shutdown still clean after crash");
}

/// Epoch recovery runs over TCP: survivors reconfigure around a crash
/// and later messages reach the new view.
#[test]
fn recovery_reconfigures_over_tcp() {
    let mut cluster = rdmc_tcp::builder(5)
        .expect("launch")
        .recovery(RecoveryConfig {
            grace: SimDuration::from_millis(50),
            ..RecoveryConfig::default()
        })
        .build();
    let group = cluster.create_group(spec((0..5).collect(), Algorithm::BinomialPipeline));
    cluster.submit_send(group, 40 * KB);
    cluster.run();
    cluster.crash_now(1);
    cluster.run();
    cluster.submit_send(group, 24 * KB);
    cluster.run();
    assert!(cluster.live_quiescent());
    assert_eq!(cluster.surviving_ranks(group), vec![0, 2, 3, 4]);
    rdmc_tcp::shutdown(cluster).expect("shutdown clean after recovery");
}

/// Repeated launch/shutdown cycles in one process leak nothing: every
/// socket is torn down, every error surfaced, and the next cluster
/// starts clean.
#[test]
fn repeated_launch_shutdown_cycles_are_clean() {
    for round in 0..5 {
        let mut cluster = rdmc_tcp::builder(8).expect("launch").build();
        let group = cluster.create_group(spec((0..8).collect(), Algorithm::BinomialPipeline));
        cluster.submit_send(group, 64 * KB);
        cluster.run();
        assert!(cluster.all_quiescent(), "round {round}: not quiescent");
        rdmc_tcp::shutdown(cluster).unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}

/// The §4.2 receive-before-send discipline holds on real sockets: no
/// data frame ever arrives before its receive is posted.
#[test]
fn zero_rnr_discipline_over_tcp() {
    let mut cluster = rdmc_tcp::builder(6).expect("launch").build();
    let group = cluster.create_group(spec((0..6).collect(), Algorithm::BinomialPipeline));
    for _ in 0..3 {
        cluster.submit_send(group, 48 * KB);
    }
    cluster.run();
    assert!(cluster.all_quiescent());
    assert_eq!(
        cluster.transport().stats().rnr_arms,
        0,
        "a block arrived before its receive was posted"
    );
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}

/// A larger in-process cluster (the event loop carries dozens of nodes
/// without a thread per peer).
#[test]
fn thirty_two_nodes_in_one_process() {
    let mut cluster = rdmc_tcp::builder(32).expect("launch").build();
    let group = cluster.create_group(spec((0..32).collect(), Algorithm::BinomialPipeline));
    cluster.submit_send(group, 128 * KB);
    cluster.run();
    assert!(cluster.all_quiescent());
    for r in cluster.message_results() {
        assert!(r.delivered_at.iter().all(|d| d.is_some()));
    }
    rdmc_tcp::shutdown(cluster).expect("clean shutdown");
}
