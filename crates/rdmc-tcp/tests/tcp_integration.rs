//! End-to-end tests of RDMC over real loopback TCP: byte-exact delivery,
//! all algorithms, multiple messages, multiple groups, the close barrier,
//! and failure propagation.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use rdmc::Algorithm;
use rdmc_tcp::{GroupConfig, LocalCluster};

/// Deterministic pseudo-random payload so corruption or misplaced blocks
/// are caught byte-for-byte.
fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64 * 2654435761 + seed as u64) as u8)
        .collect()
}

/// Creates group `number` on all nodes, returning a receiver that yields
/// `(node_id, message_bytes)` for every completion upcall.
fn create_everywhere(
    cluster: &LocalCluster,
    number: u64,
    config: &GroupConfig,
) -> mpsc::Receiver<(u32, Vec<u8>)> {
    let (tx, rx) = mpsc::channel();
    for node in cluster.nodes() {
        let tx = tx.clone();
        let id = node.id();
        assert!(node.create_group(
            number,
            config.clone(),
            Box::new(|size| vec![0; size as usize]),
            Box::new(move |data| {
                tx.send((id, data.to_vec())).expect("collector alive");
            }),
        ));
    }
    rx
}

#[test]
fn bytes_arrive_intact_over_tcp() {
    let cluster = LocalCluster::launch(4).unwrap();
    let config = GroupConfig {
        block_size: 4096,
        ..GroupConfig::new(vec![0, 1, 2, 3])
    };
    let rx = create_everywhere(&cluster, 1, &config);
    let msg = pattern(50_000, 3); // 13 blocks, ragged tail
    assert!(cluster.nodes()[0].send(1, msg.clone()));
    for _ in 0..4 {
        let (_, data) = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(data, msg, "payload corrupted in flight");
    }
    for node in cluster.nodes() {
        assert!(node.destroy_group(1), "clean close expected");
    }
    cluster.shutdown();
}

#[test]
fn all_algorithms_work_over_tcp() {
    for (i, alg) in [
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ]
    .into_iter()
    .enumerate()
    {
        let cluster = LocalCluster::launch(5).unwrap();
        let config = GroupConfig {
            algorithm: alg.clone(),
            block_size: 1024,
            ..GroupConfig::new(vec![0, 1, 2, 3, 4])
        };
        let rx = create_everywhere(&cluster, i as u64, &config);
        let msg = pattern(10_000, i as u8);
        assert!(cluster.nodes()[0].send(i as u64, msg.clone()));
        for _ in 0..5 {
            let (_, data) = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
            assert_eq!(data, msg, "{alg}");
        }
        cluster.shutdown();
    }
}

#[test]
fn several_messages_arrive_in_order() {
    let cluster = LocalCluster::launch(3).unwrap();
    let config = GroupConfig {
        block_size: 512,
        ..GroupConfig::new(vec![0, 1, 2])
    };
    let per_node: Arc<Mutex<std::collections::BTreeMap<u32, Vec<Vec<u8>>>>> =
        Arc::new(Mutex::new(std::collections::BTreeMap::new()));
    let (done_tx, done_rx) = mpsc::channel();
    for node in cluster.nodes() {
        let per_node = Arc::clone(&per_node);
        let done = done_tx.clone();
        let id = node.id();
        assert!(node.create_group(
            9,
            config.clone(),
            Box::new(|size| vec![0; size as usize]),
            Box::new(move |data| {
                let mut map = per_node.lock().unwrap();
                let list = map.entry(id).or_default();
                list.push(data.to_vec());
                if list.len() == 5 {
                    done.send(id).unwrap();
                }
            }),
        ));
    }
    let messages: Vec<Vec<u8>> = (0..5).map(|i| pattern(2_000 + i * 777, i as u8)).collect();
    for m in &messages {
        assert!(cluster.nodes()[0].send(9, m.clone()));
    }
    for _ in 0..3 {
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap();
    }
    let map = per_node.lock().unwrap();
    for id in 0..3u32 {
        assert_eq!(map[&id], messages, "node {id}: wrong order or contents");
    }
    drop(map);
    for node in cluster.nodes() {
        assert!(node.destroy_group(9));
    }
    cluster.shutdown();
}

#[test]
fn overlapping_groups_with_different_roots() {
    let cluster = LocalCluster::launch(3).unwrap();
    // Group 1 rooted at node 0, group 2 rooted at node 2 — same members.
    let config_a = GroupConfig {
        block_size: 1024,
        ..GroupConfig::new(vec![0, 1, 2])
    };
    let config_b = GroupConfig {
        block_size: 1024,
        ..GroupConfig::new(vec![2, 1, 0])
    };
    let rx_a = create_everywhere(&cluster, 1, &config_a);
    let rx_b = create_everywhere(&cluster, 2, &config_b);
    let msg_a = pattern(8_000, 1);
    let msg_b = pattern(6_000, 2);
    assert!(cluster.nodes()[0].send(1, msg_a.clone()));
    assert!(cluster.nodes()[2].send(2, msg_b.clone()));
    for _ in 0..3 {
        assert_eq!(
            rx_a.recv_timeout(std::time::Duration::from_secs(10))
                .unwrap()
                .1,
            msg_a
        );
        assert_eq!(
            rx_b.recv_timeout(std::time::Duration::from_secs(10))
                .unwrap()
                .1,
            msg_b
        );
    }
    cluster.shutdown();
}

#[test]
fn non_root_send_is_rejected() {
    let cluster = LocalCluster::launch(2).unwrap();
    let config = GroupConfig::new(vec![0, 1]);
    let _rx = create_everywhere(&cluster, 3, &config);
    assert!(!cluster.nodes()[1].send(3, vec![1, 2, 3]));
    cluster.shutdown();
}

#[test]
fn unknown_group_send_is_rejected() {
    let cluster = LocalCluster::launch(2).unwrap();
    assert!(!cluster.nodes()[0].send(99, vec![1]));
    cluster.shutdown();
}

#[test]
fn empty_message_delivers() {
    let cluster = LocalCluster::launch(3).unwrap();
    let config = GroupConfig::new(vec![0, 1, 2]);
    let rx = create_everywhere(&cluster, 4, &config);
    assert!(cluster.nodes()[0].send(4, Vec::new()));
    for _ in 0..3 {
        let (_, data) = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert!(data.is_empty());
    }
    cluster.shutdown();
}

#[test]
fn destroy_reports_failure_when_a_node_dies() {
    let cluster = LocalCluster::launch(3).unwrap();
    let config = GroupConfig::new(vec![0, 1, 2]);
    let rx = create_everywhere(&cluster, 5, &config);
    let msg = pattern(4_000, 5);
    assert!(cluster.nodes()[0].send(5, msg));
    for _ in 0..3 {
        rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
    }
    // Node 2 dies without voting; survivors' close must report unclean.
    cluster.nodes()[2].shutdown();
    assert!(!cluster.nodes()[0].destroy_group(5));
    assert!(!cluster.nodes()[1].destroy_group(5));
    cluster.shutdown();
}

#[test]
fn larger_group_hybrid_algorithm_over_tcp() {
    let cluster = LocalCluster::launch(6).unwrap();
    let config = GroupConfig {
        algorithm: Algorithm::Hybrid {
            rack_of: vec![0, 0, 0, 1, 1, 1],
        },
        block_size: 2048,
        ..GroupConfig::new(vec![0, 1, 2, 3, 4, 5])
    };
    let rx = create_everywhere(&cluster, 6, &config);
    let msg = pattern(30_000, 6);
    assert!(cluster.nodes()[0].send(6, msg.clone()));
    for _ in 0..6 {
        let (_, data) = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(data, msg);
    }
    cluster.shutdown();
}

#[test]
fn filecast_delivers_verified_files_everywhere() {
    use rdmc_tcp::{CastFile, FileCast};

    let cluster = LocalCluster::launch(4).unwrap();
    let files: Vec<CastFile> = (0..6)
        .map(|i| CastFile {
            name: format!("pkg/part-{i}.bin"),
            content: pattern(10_000 + i * 3_333, i as u8),
        })
        .collect();
    let (tx, rx) = mpsc::channel();
    let mut sessions = Vec::new();
    for node in &cluster.nodes()[1..] {
        let tx = tx.clone();
        let id = node.id();
        let session = FileCast::receive(
            node,
            7,
            GroupConfig {
                block_size: 2048,
                ..GroupConfig::new(vec![0, 1, 2, 3])
            },
            move |file| tx.send((id, file)).unwrap(),
        )
        .expect("receiver joined");
        sessions.push(session);
    }
    let clean = FileCast::send(
        &cluster.nodes()[0],
        7,
        GroupConfig {
            block_size: 2048,
            ..GroupConfig::new(vec![0, 1, 2, 3])
        },
        &files,
    );
    assert!(clean, "close barrier must certify delivery");
    for session in sessions {
        assert!(session.finish());
    }
    // Every receiver got every file, in order, byte-exact.
    let mut per_node: std::collections::BTreeMap<u32, Vec<CastFile>> =
        std::collections::BTreeMap::new();
    while let Ok((id, file)) = rx.try_recv() {
        per_node.entry(id).or_default().push(file);
    }
    for id in 1..4u32 {
        assert_eq!(per_node[&id], files, "node {id}");
    }
    cluster.shutdown();
}
