//! Property tests of the admission layer across reconfiguration: under
//! any pacing policy, any admission bound, any backlog shape, and a
//! crash landing mid-backlog, the §4.2 invariant holds (the RNR
//! machinery never arms — pacing must delay *posting*, never break the
//! recv-before-grant discipline) and control traffic keeps bypassing
//! admission (epoch changes and readiness grants complete even when the
//! block-send queue is saturated, so survivors always quiesce).

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, PacerConfig, PacingPolicy, RecoveryConfig};

const BLOCK: u64 = 64 << 10;
const NODES: usize = 6;

fn arb_policy() -> impl Strategy<Value = PacingPolicy> {
    prop_oneof![
        Just(PacingPolicy::Fifo),
        Just(PacingPolicy::SmallestFirst),
        Just(PacingPolicy::RoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two overlapping groups, a randomized message backlog, and a
    /// mid-backlog crash under an arbitrary admission bound: survivors
    /// quiesce (control traffic bypassed the saturated admission
    /// queues), the RNR machinery never armed, and every admitted
    /// message either completed at all survivors or was abandoned
    /// group-wide consistently.
    #[test]
    fn pacing_with_crash_preserves_credit_discipline(
        policy in arb_policy(),
        max_inflight in 1u32..4,
        sizes in prop::collection::vec(1u64..12, 2..7),
        victim in 1usize..NODES,
        crash_step in 50u64..4_000,
    ) {
        let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(NODES))
            .pacing(PacerConfig::new(max_inflight, policy))
            .recovery(RecoveryConfig::default())
            .build();
        let g0 = cluster.create_group(GroupSpec {
            members: (0..NODES).collect(),
            algorithm: Algorithm::BinomialPipeline,
            block_size: BLOCK,
            ready_window: 2,
            max_outstanding_sends: 2,
        });
        let g1 = cluster.create_group(GroupSpec {
            members: vec![1, 2, 3, 4, 5, 0],
            algorithm: Algorithm::BinomialPipeline,
            block_size: BLOCK,
            ready_window: 2,
            max_outstanding_sends: 2,
        });
        for (i, &k) in sizes.iter().enumerate() {
            let group = if i % 2 == 0 { g0 } else { g1 };
            cluster.submit_send(group, k * BLOCK);
        }
        cluster.crash_after_events(victim, crash_step);
        cluster.run();

        // Control traffic must have bypassed the admission queues: a
        // wedged epoch change starved behind paced block sends would
        // leave survivors non-quiescent forever.
        prop_assert!(
            cluster.live_quiescent(),
            "{policy:?} inflight={max_inflight}: survivors failed to quiesce"
        );
        // §4.2: pacing defers posting, never the receive side.
        prop_assert_eq!(cluster.fabric().stats().rnr_arms, 0);
        // Wherever an epoch change installed, the victim is gone from
        // the surviving view. (A crash landing after the backlog
        // drained triggers no detection, so the old view legally
        // stands.)
        for g in [g0, g1] {
            if cluster.group_epoch(g) > 0 {
                prop_assert!(!cluster.surviving_ranks(g).iter().any(|&r| {
                    // Map the surviving (original) rank to its node.
                    let members: [usize; NODES] =
                        if g == g0 { [0, 1, 2, 3, 4, 5] } else { [1, 2, 3, 4, 5, 0] };
                    members[r as usize] == victim
                }));
            }
        }
        // Completion is all-or-nothing per message over the survivors.
        for m in cluster.message_results() {
            let members: [usize; NODES] =
                if m.group == g0 { [0, 1, 2, 3, 4, 5] } else { [1, 2, 3, 4, 5, 0] };
            let survivor_slots: Vec<usize> = (0..NODES)
                .filter(|&i| members[i] != victim)
                .collect();
            let done = survivor_slots
                .iter()
                .filter(|&&i| m.delivered_at[i].is_some())
                .count();
            prop_assert!(
                done == 0 || done == survivor_slots.len(),
                "{policy:?}: message {} of group {} partially delivered \
                 ({done}/{} survivors)",
                m.index,
                m.group,
                survivor_slots.len()
            );
        }
    }

    /// Crash-free control: the same backlog shapes without a crash must
    /// deliver every message everywhere under every policy, and equal
    /// backlogs under different policies reach the same delivery count.
    #[test]
    fn pacing_without_crash_delivers_everything(
        policy in arb_policy(),
        max_inflight in 1u32..4,
        sizes in prop::collection::vec(1u64..12, 2..7),
    ) {
        let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(NODES))
            .pacing(PacerConfig::new(max_inflight, policy))
            .build();
        let g0 = cluster.create_group(GroupSpec {
            members: (0..NODES).collect(),
            algorithm: Algorithm::BinomialPipeline,
            block_size: BLOCK,
            ready_window: 2,
            max_outstanding_sends: 2,
        });
        for &k in &sizes {
            cluster.submit_send(g0, k * BLOCK);
        }
        cluster.run();
        prop_assert!(cluster.all_quiescent());
        prop_assert_eq!(cluster.fabric().stats().rnr_arms, 0);
        for m in cluster.message_results() {
            prop_assert!(
                m.delivered_at.iter().all(Option::is_some),
                "{policy:?}: message {} incomplete",
                m.index
            );
        }
    }
}
