//! Integration tests for epoch-based failure recovery: wedged groups
//! reconfigure, interrupted multicasts resume block-wise, link flaps
//! evict both endpoints, and forced reconfiguration backs up the
//! epidemic agreement path. Every scenario must end with all survivors
//! holding every byte (or a consistent group-wide abandonment) and the
//! cluster quiescent with zero RNR arms.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, SimCluster};
use simnet::SimDuration;

const BLOCK: u64 = 64 << 10;

fn build(n: usize) -> (SimCluster, rdmc_sim::GroupId) {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(n))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default())
        .build();
    let group = cluster.create_group(GroupSpec {
        members: (0..n).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    (cluster, group)
}

/// Every message was either delivered at every survivor or consistently
/// abandoned group-wide.
fn assert_survivors_complete(cluster: &SimCluster, group: rdmc_sim::GroupId) {
    // The flight recording of the whole run — wedge, view epidemics,
    // reconfiguration, block-wise resume — must satisfy the trace
    // oracle's causality and pairing invariants.
    if let Err(violations) = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    ) {
        panic!("trace oracle found violations: {violations:#?}");
    }
    let abandoned: Vec<usize> = cluster
        .recovery_stats()
        .reconfigurations
        .iter()
        .flat_map(|r| r.abandoned.iter().copied())
        .collect();
    let survivors = cluster.surviving_ranks(group);
    for r in cluster.message_results() {
        if abandoned.contains(&r.index) {
            continue;
        }
        for &o in &survivors {
            assert!(
                r.delivered_at[o as usize].is_some(),
                "message {} missing at surviving original rank {o}",
                r.index
            );
        }
    }
}

#[test]
fn non_sender_crash_resumes_with_only_missing_blocks() {
    let (mut cluster, group) = build(4);
    let size = 8 * BLOCK;
    // Crash rank 2's node partway through the transfer (after 40 engine
    // events the pipeline is mid-flight on every lane).
    cluster.crash_after_events(2, 40);
    cluster.submit_send(group, size);
    cluster.run();

    let stats = cluster.recovery_stats().clone();
    assert_eq!(stats.reconfigurations.len(), 1, "exactly one view change");
    let rc = &stats.reconfigurations[0];
    assert_eq!(rc.epoch, 1);
    assert_eq!(rc.removed, vec![2]);
    assert_eq!(rc.survivors, vec![0, 1, 3]);
    assert_eq!(cluster.group_epoch(group), 1);
    assert_eq!(cluster.surviving_ranks(group), vec![0, 1, 3]);
    assert!(!rc.forced, "the epidemic path must agree without forcing");
    assert!(
        rc.resumed + rc.remulticast + rc.already_complete == 1 && rc.abandoned.is_empty(),
        "the interrupted message must be resumed, not abandoned: {rc:?}"
    );
    // The new epoch moves only the missing blocks: strictly fewer
    // transfers than re-multicasting all 8 blocks to both non-holders.
    assert!(
        rc.resumed_blocks > 0,
        "some blocks were missing at the wedge"
    );
    assert!(
        rc.resumed_blocks < 16,
        "resume must not re-send held blocks ({} transfers)",
        rc.resumed_blocks
    );

    assert!(cluster.live_quiescent(), "survivors must quiesce");
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);

    // Per-rank block accounting at the NIC: each surviving receiver's
    // downlink carried every block at most once per epoch attempt — far
    // less than a full second copy of the message (control writes bypass
    // flow accounting entirely).
    let net = cluster.fabric().net();
    let topo = cluster.fabric().topology();
    for node in [1usize, 3] {
        let carried = net.bytes_carried(topo.rx_link(node));
        assert!(
            carried >= size as f64,
            "node {node} received {carried} < message size {size}"
        );
        assert!(
            carried < (size + 3 * BLOCK) as f64,
            "node {node} received {carried}: blocks were retransmitted \
             that the member already held"
        );
    }
    // Detection latency: the failure was suspected only after the crash,
    // and the new epoch came after the grace period.
    let crash_at = cluster.crash_time(2).expect("rank 2 crashed");
    let det = &stats.detections[0];
    assert_eq!(det.failed, 2);
    assert!(det.suspected_at >= crash_at);
    assert!(rc.first_suspected_at >= crash_at);
    assert!(rc.installed_at >= rc.first_suspected_at + RecoveryConfig::default().grace);
}

#[test]
fn sender_crash_is_resumed_or_consistently_abandoned() {
    let (mut cluster, group) = build(4);
    cluster.crash_after_events(0, 35);
    cluster.submit_send(group, 6 * BLOCK);
    cluster.run();

    let stats = cluster.recovery_stats();
    assert_eq!(stats.reconfigurations.len(), 1);
    let rc = &stats.reconfigurations[0];
    assert_eq!(rc.removed, vec![0]);
    assert_eq!(cluster.surviving_ranks(group), vec![1, 2, 3]);
    assert!(cluster.live_quiescent());
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);

    // The group stays usable: original rank 1 is the new root and can
    // multicast in the new epoch.
    cluster.submit_send(group, 3 * BLOCK);
    cluster.run();
    assert!(cluster.live_quiescent());
    let last = cluster.message_results().pop().expect("second message");
    for o in [1usize, 2, 3] {
        assert!(
            last.delivered_at[o].is_some(),
            "post-recovery multicast missing at original rank {o}"
        );
    }
}

#[test]
fn cascading_failures_bump_the_epoch_twice() {
    let (mut cluster, group) = build(6);
    // The second crash lands while the first recovery cycle is likely in
    // flight; whether the cycles merge or stack, the group must converge.
    cluster.crash_after_events(4, 30);
    cluster.crash_after_events(2, 90);
    cluster.submit_send(group, 10 * BLOCK);
    cluster.run();

    let stats = cluster.recovery_stats();
    assert!(
        !stats.reconfigurations.is_empty() && stats.reconfigurations.len() <= 2,
        "one merged or two stacked view changes, got {}",
        stats.reconfigurations.len()
    );
    let survivors = cluster.surviving_ranks(group);
    assert_eq!(survivors, vec![0, 1, 3, 5]);
    assert_eq!(
        cluster.group_epoch(group) as usize,
        stats.reconfigurations.len()
    );
    assert!(cluster.live_quiescent());
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);
}

#[test]
fn link_flap_evicts_both_endpoints() {
    let (mut cluster, group) = build(5);
    // Sever the 1<->3 connection without crashing either node: with no
    // rejoin path, mutual suspicion must evict both.
    cluster.inject_link_flap(group, 1, 3);
    cluster.submit_send(group, 4 * BLOCK);
    cluster.run();

    let stats = cluster.recovery_stats();
    assert_eq!(stats.reconfigurations.len(), 1);
    let rc = &stats.reconfigurations[0];
    assert_eq!(rc.removed, vec![1, 3]);
    assert_eq!(cluster.surviving_ranks(group), vec![0, 2, 4]);
    // Eviction is real: the flapped members' nodes are fenced off.
    assert!(cluster.crash_time(1).is_some());
    assert!(cluster.crash_time(3).is_some());
    assert!(cluster.live_quiescent());
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);
}

#[test]
fn impatient_config_forces_the_view_before_the_epidemic_settles() {
    // A grace period far below the fabric's propagation delay: the first
    // reconfiguration attempt always beats the TAG_VIEW epidemic, so the
    // orchestrator must fall back to forcing the failure evidence.
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4))
        .recovery(RecoveryConfig {
            grace: SimDuration::from_nanos(10),
            max_backoff: SimDuration::from_nanos(20),
            force_after: 1,
        })
        .build();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.crash_after_events(3, 25);
    cluster.submit_send(group, 6 * BLOCK);
    cluster.run();

    let stats = cluster.recovery_stats();
    assert_eq!(stats.reconfigurations.len(), 1);
    let rc = &stats.reconfigurations[0];
    assert!(
        rc.forced,
        "agreement cannot settle within 10ns of suspicion"
    );
    assert_eq!(rc.removed, vec![3]);
    assert_eq!(cluster.surviving_ranks(group), vec![0, 1, 2]);
    assert!(cluster.live_quiescent());
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);
}

#[test]
fn crash_between_messages_recovers_the_stream() {
    let (mut cluster, group) = build(4);
    // Three queued messages; the crash lands while the stream is flowing,
    // so later messages must be carried into the new epoch (resumed or
    // restarted) rather than lost.
    cluster.crash_after_events(1, 60);
    for _ in 0..3 {
        cluster.submit_send(group, 4 * BLOCK);
    }
    cluster.run();

    let stats = cluster.recovery_stats();
    assert_eq!(stats.reconfigurations.len(), 1);
    assert_eq!(stats.reconfigurations[0].removed, vec![1]);
    assert!(cluster.live_quiescent());
    assert_survivors_complete(&cluster, group);
    assert_eq!(cluster.fabric().stats().rnr_arms, 0);
}
