//! Failure chaos for the atomic multicast overlay: crash a sender at
//! *any* protocol step (deterministically indexed by the engine-event
//! counter) and prove every survivor converges on an *identical,
//! gapless* total-order delivery log after the ragged trim — slots are
//! all-or-nothing across the epoch change, the trace oracle's ordering
//! rule holds throughout, and reruns are bit-for-bit deterministic.

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, SimCluster};
use simnet::{JitterModel, SimDuration};

const BLOCK: u64 = 64 << 10;

fn atomic_spec(n: usize) -> GroupSpec {
    GroupSpec {
        members: (0..n).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    }
}

/// One atomic chaos run: an `n`-member atomic group with recovery on,
/// `count` two-block messages rotating through the senders, optional
/// jitter, and an optional crash of `victim` just before engine event
/// `step`.
fn atomic_run(
    n: usize,
    count: usize,
    crash: Option<(usize, u64)>,
    jitter_seed: Option<u64>,
) -> SimCluster {
    let mut builder = ClusterBuilder::new(ClusterSpec::fractus(n))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default())
        .atomic(atomic_spec(n));
    if let Some(seed) = jitter_seed {
        for node in 0..n {
            builder = builder.jitter(
                node,
                JitterModel::new(
                    seed ^ node as u64,
                    0.02,
                    SimDuration::from_micros(20),
                    SimDuration::from_micros(200),
                ),
            );
        }
    }
    let mut cluster = builder.build();
    if let Some((victim, step)) = crash {
        cluster.crash_after_events(victim, step);
    }
    for _ in 0..count {
        cluster.submit_atomic(0, 2 * BLOCK);
    }
    cluster.run();
    cluster
}

/// The atomic convergence invariant: survivors quiesce, the full trace
/// passes the oracle (including the atomic ordering rule and its
/// cross-rank agreement sweep), every survivor's delivery log is
/// *identical* in content and strictly slot-increasing, delivered and
/// trimmed slots exactly partition the slot space (all-or-nothing:
/// nothing is half-delivered, nothing vanishes silently), and every
/// delivered slot is fully replicated at the survivors.
fn assert_atomic_recovered(cluster: &SimCluster, n: usize, victim: usize) {
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");
    assert_eq!(cluster.fabric().stats().rnr_arms, 0, "an RNR timer armed");
    let oracle = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    );
    if let Err(violations) = &oracle {
        panic!("trace oracle found violations: {violations:#?}");
    }
    let live = cluster.atomic_live_members(0);
    assert!(
        !live.contains(&victim),
        "crashed member {victim} still counted live"
    );
    assert_eq!(live.len(), n - 1, "exactly the victim was evicted");
    let reference: Vec<_> = cluster.atomic_log(0, live[0]).to_vec();
    for &m in &live[1..] {
        let log = cluster.atomic_log(0, m);
        assert_eq!(
            log.len(),
            reference.len(),
            "member {m} delivered a different count than member {}",
            live[0]
        );
        for (a, b) in reference.iter().zip(log) {
            assert_eq!(
                (a.slot, a.sender, a.seq, a.size),
                (b.slot, b.sender, b.seq, b.size),
                "members {} and {m} disagree on the total order",
                live[0]
            );
        }
    }
    // Strictly increasing slots, and delivered ∪ trimmed covers every
    // slot exactly once (no nulls in this harness).
    assert!(reference.windows(2).all(|w| w[0].slot < w[1].slot));
    let mut covered: Vec<u64> = reference.iter().map(|d| d.slot).collect();
    covered.extend(cluster.atomic_trimmed_slots(0));
    covered.sort_unstable();
    let total = cluster.atomic_num_slots(0);
    assert_eq!(
        covered,
        (0..total).collect::<Vec<_>>(),
        "slots neither delivered nor ragged-trimmed"
    );
    // Delivered ⟹ fully replicated at every survivor (what makes the
    // trim safe is exactly that this holds before any delivery).
    for d in &reference {
        let r = cluster
            .result(d.message)
            .expect("delivered slot has a result");
        for &m in &live {
            let rot = (m + n - d.sender as usize) % n;
            assert!(
                r.delivered_at[rot].is_some(),
                "slot {} delivered but member {m} lacks the bytes",
                d.slot
            );
        }
    }
}

/// Exhaustive mini-sweep: a 4-member atomic group, crashing *every*
/// sender (each member is one) at *every* protocol step of the
/// failure-free run.
#[test]
fn every_sender_crashing_at_every_step_converges() {
    let (n, count) = (4usize, 4usize);
    let total = atomic_run(n, count, None, None).events_fed();
    assert!(total > 0);
    for victim in 0..n {
        for step in 0..total {
            let cluster = atomic_run(n, count, Some((victim, step)), None);
            assert!(
                !cluster.recovery_stats().reconfigurations.is_empty(),
                "victim {victim} step {step}: no reconfiguration happened"
            );
            assert_atomic_recovered(&cluster, n, victim);
        }
    }
}

/// A crash run is bit-for-bit deterministic: identical parameters give
/// identical state digests (virtual time makes the whole
/// crash/trim/redelivery path replayable).
#[test]
fn crash_runs_are_deterministic() {
    let digest = |_: ()| atomic_run(5, 5, Some((2, 37)), Some(11)).state_digest();
    assert_eq!(digest(()), digest(()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash any sender at any protocol step for n up to 8, with random
    /// scheduling jitter: survivors always converge on identical
    /// gapless logs, and a rerun with identical parameters is
    /// identical.
    #[test]
    fn crash_any_sender_at_any_step_converges(
        n in prop::sample::select(vec![3usize, 4, 5, 6, 8]),
        count in prop::sample::select(vec![3usize, 5, 7]),
        victim_sel in any::<prop::sample::Index>(),
        step_sel in any::<prop::sample::Index>(),
        jitter_seed in any::<u64>(),
    ) {
        let total = atomic_run(n, count, None, Some(jitter_seed)).events_fed();
        prop_assert!(total > 0);
        let victim = victim_sel.index(n);
        let step = step_sel.index(total as usize) as u64;
        let cluster = atomic_run(n, count, Some((victim, step)), Some(jitter_seed));
        prop_assert!(
            !cluster.recovery_stats().reconfigurations.is_empty(),
            "victim {victim} step {step}: no reconfiguration happened"
        );
        assert_atomic_recovered(&cluster, n, victim);
        let again = atomic_run(n, count, Some((victim, step)), Some(jitter_seed));
        prop_assert_eq!(cluster.state_digest(), again.state_digest(), "rerun diverged");
    }
}
