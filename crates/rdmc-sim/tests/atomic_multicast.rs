//! Functional tests of the Derecho-style atomic multicast overlay:
//! rotated multi-sender groups, round-robin slots, null-send elision,
//! SST stability frontiers, and total-order delivery logs identical at
//! every member.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, SimCluster};
use simnet::SimTime;

const KB: u64 = 1 << 10;

fn atomic_spec(n: usize) -> GroupSpec {
    GroupSpec {
        members: (0..n).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: 64 * KB,
        ready_window: 2,
        max_outstanding_sends: 2,
    }
}

fn build(n: usize) -> SimCluster {
    ClusterBuilder::new(ClusterSpec::fractus(n))
        .tracing()
        .atomic(atomic_spec(n))
        .build()
}

#[test]
fn all_members_deliver_identical_total_order() {
    let n = 4;
    let count = 8;
    let mut cluster = build(n);
    let mut ids = Vec::new();
    for _ in 0..count {
        ids.push(cluster.submit_atomic(0, 96 * KB));
    }
    cluster.run();
    let reference: Vec<_> = cluster.atomic_log(0, 0).to_vec();
    assert_eq!(reference.len(), count, "member 0 delivered everything");
    for (i, d) in reference.iter().enumerate() {
        // Round-robin slots: slot i belongs to member i % n and is its
        // (i / n)-th submission.
        assert_eq!(d.slot, i as u64);
        assert_eq!(d.sender, (i % n) as u32);
        assert_eq!(d.seq, (i / n) as u64);
        assert_eq!(d.size, 96 * KB);
        assert_eq!(d.message, ids[i]);
    }
    for m in 1..n {
        let log = cluster.atomic_log(0, m);
        assert_eq!(log.len(), count, "member {m} delivered everything");
        for (a, b) in reference.iter().zip(log) {
            // Same total order everywhere; only the upcall time differs.
            assert_eq!(
                (a.slot, a.sender, a.seq, a.size),
                (b.slot, b.sender, b.seq, b.size)
            );
        }
    }
    // Delivery always trails the underlying RDMC completion at that
    // member (stability cannot outrun local receipt).
    for m in 0..n {
        for d in cluster.atomic_log(0, m) {
            let r = cluster.result(d.message).expect("message result");
            let sender = d.sender as usize;
            let local_rank = (m + n - sender) % n;
            let local = r.delivered_at[local_rank].expect("locally received");
            assert!(d.at >= local, "member {m} delivered slot {} early", d.slot);
        }
    }
}

#[test]
fn null_slots_skip_quiet_senders() {
    let n = 4;
    let mut cluster = build(n);
    // Member 2 speaks first: owners 0 and 1 contribute nulls, slot 2 is
    // the data slot.
    let first = cluster.submit_atomic_from(0, 2, 64 * KB);
    // Then member 1: owners 3 and 0 contribute nulls, slot 5 is data.
    let second = cluster.submit_atomic_from(0, 1, 64 * KB);
    cluster.run();
    assert_eq!(cluster.atomic_num_slots(0), 6);
    for m in 0..n {
        let log = cluster.atomic_log(0, m);
        assert_eq!(log.len(), 2, "member {m}: only data slots reach the log");
        assert_eq!((log[0].slot, log[0].sender, log[0].message), (2, 2, first));
        assert_eq!((log[1].slot, log[1].sender, log[1].message), (5, 1, second));
    }
    assert!(
        cluster.atomic_trimmed_slots(0).is_empty(),
        "no view change, no ragged trim"
    );
}

#[test]
fn scheduled_sends_resolve_the_owner_at_fire_time() {
    let n = 3;
    let mut cluster = build(n);
    let a = cluster.schedule_atomic_send_at(0, SimTime::from_nanos(50_000), 64 * KB);
    let b = cluster.schedule_atomic_send_at(0, SimTime::from_nanos(9_000_000), 64 * KB);
    cluster.run();
    for m in 0..n {
        let log = cluster.atomic_log(0, m);
        assert_eq!(log.len(), 2);
        // Owners resolve in fire order from the rotation cursor.
        assert_eq!((log[0].sender, log[0].message), (0, a));
        assert_eq!((log[1].sender, log[1].message), (1, b));
        assert!(log[0].at < log[1].at);
    }
}

#[test]
fn trace_oracle_validates_the_atomic_run() {
    let n = 4;
    let mut cluster = build(n);
    for _ in 0..6 {
        cluster.submit_atomic(0, 128 * KB);
    }
    // A null in the middle exercises the elision path under the oracle.
    cluster.submit_atomic_from(0, 3, 64 * KB);
    cluster.run();
    let stats = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    )
    .unwrap_or_else(|v| panic!("oracle violations: {v:#?}"));
    assert_eq!(
        stats.atomic_deliveries,
        (7 * n) as u64,
        "every member's delivery passed the ordering rule"
    );
}

#[test]
fn overlay_coexists_with_plain_groups() {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(6))
        .atomic(atomic_spec(4))
        .build();
    let plain = cluster.create_group(GroupSpec {
        members: vec![2, 3, 4, 5],
        algorithm: Algorithm::Chain,
        block_size: 64 * KB,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    let p = cluster.submit_send(plain, 256 * KB);
    cluster.submit_atomic(0, 256 * KB);
    cluster.run();
    assert!(cluster
        .result(p)
        .expect("plain message")
        .latency()
        .is_some());
    for m in 0..4 {
        assert_eq!(cluster.atomic_log(0, m).len(), 1);
    }
}

#[test]
fn reruns_are_bit_for_bit_identical() {
    let digest = |_: ()| {
        let mut cluster = build(5);
        for _ in 0..7 {
            cluster.submit_atomic(0, 160 * KB);
        }
        cluster.run();
        cluster.state_digest()
    };
    assert_eq!(digest(()), digest(()));
}
