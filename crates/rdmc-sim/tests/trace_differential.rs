//! Differential testing of the flight recorder: everything the cluster
//! reports through its own bookkeeping — per-member delivery upcalls
//! with their timestamps and sizes, resumed-block counts, the number of
//! reconfigurations — must be recomputable from the trace alone via
//! [`trace::replay`]. Any instrumentation gap (a missed `Delivered`, a
//! double-counted resume block) shows up as a divergence here.

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig};

const BLOCK: u64 = 4 << 10;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sequential),
        Just(Algorithm::Chain),
        Just(Algorithm::BinomialTree),
        Just(Algorithm::BinomialPipeline),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine-reported completions and resume counts equal the values
    /// recomputed from the trace, for every algorithm, with and without
    /// a mid-transfer crash.
    #[test]
    fn engine_reports_match_trace_replay(
        n in 2usize..=8,
        algorithm in arb_algorithm(),
        blocks in prop::collection::vec(1u64..=6, 1..=2),
        crash_on in any::<bool>(),
        victim_sel in any::<prop::sample::Index>(),
        crash_step in 10u64..120,
    ) {
        let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(n))
            .flight_recorder(trace::Mode::Full)
            .recovery(RecoveryConfig::default())
            .build();
        let recorder = cluster.recorder().clone();
        let group = cluster.create_group(GroupSpec {
            members: (0..n).collect(),
            algorithm,
            block_size: BLOCK,
            ready_window: 2,
            max_outstanding_sends: 2,
        });
        if crash_on {
            cluster.crash_after_events(victim_sel.index(n), crash_step);
        }
        for &k in &blocks {
            cluster.submit_send(group, k * BLOCK);
        }
        cluster.run();
        prop_assert!(cluster.live_quiescent(), "survivors failed to quiesce");

        let replayed = trace::replay::replay(&recorder.events());

        // Per member (keyed by fabric node — members are (0..n), so an
        // original rank IS its node id): the delivery upcalls the
        // cluster recorded in its message results must be exactly the
        // `Delivered` events in the trace, same times, same sizes.
        let results = cluster.message_results();
        let mut expected_deliveries = 0u64;
        for node in 0..n {
            let mut expected: Vec<(u64, u64)> = results
                .iter()
                .filter_map(|r| {
                    r.delivered_at[node].map(|t| (t.as_nanos(), r.size))
                })
                .collect();
            expected.sort_unstable();
            expected_deliveries += expected.len() as u64;
            let got = replayed
                .delivered
                .get(&(group as u32, node as u32))
                .cloned()
                .unwrap_or_default();
            prop_assert_eq!(
                &got, &expected,
                "node {} deliveries diverge from trace replay", node
            );
        }
        prop_assert_eq!(replayed.deliveries, expected_deliveries);

        // Resume accounting three ways: the recovery stats the cluster
        // keeps, the cluster-side ReconfigInstalled events, and the
        // member-side EpochInstalled events must all agree.
        let stats = cluster.recovery_stats();
        let reported: u64 = stats
            .reconfigurations
            .iter()
            .map(|r| r.resumed_blocks as u64)
            .sum();
        prop_assert_eq!(replayed.reconfig_resumed_blocks, reported);
        prop_assert_eq!(replayed.member_resume_blocks, reported);
        prop_assert_eq!(
            replayed.reconfigurations,
            stats.reconfigurations.len() as u64
        );

        // The RNR invariant, cross-checked from the trace rather than
        // the fabric counters.
        prop_assert_eq!(replayed.rnr_arms, 0);
    }
}
