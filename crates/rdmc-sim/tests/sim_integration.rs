//! Full-stack tests: protocol engines over the simulated RDMA fabric.

use rdmc::Algorithm;
use rdmc_sim::{
    run_concurrent_overlapping, run_single_multicast, run_stream, ClusterBuilder, ClusterSpec,
    GroupSpec, TraceKind,
};
use simnet::{JitterModel, SimDuration, SimTime};

const MB: u64 = 1 << 20;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ]
}

#[test]
fn every_algorithm_completes_on_fractus() {
    let spec = ClusterSpec::fractus(8);
    for alg in algorithms() {
        for group in [2usize, 3, 5, 8] {
            let out = run_single_multicast(&spec, group, alg.clone(), 4 * MB, MB);
            assert!(
                out.latency > SimDuration::ZERO,
                "{alg} n={group}: zero latency"
            );
            assert!(
                out.bandwidth_gbps > 0.5 && out.bandwidth_gbps < 100.0,
                "{alg} n={group}: implausible bandwidth {}",
                out.bandwidth_gbps
            );
        }
    }
}

#[test]
fn binomial_pipeline_beats_sequential_at_scale() {
    let spec = ClusterSpec::fractus(16);
    let seq = run_single_multicast(&spec, 16, Algorithm::Sequential, 64 * MB, MB);
    let pipe = run_single_multicast(&spec, 16, Algorithm::BinomialPipeline, 64 * MB, MB);
    // 15 sequential copies vs log2(16)+k-1 pipeline steps: the paper's
    // headline gap. Expect well over 5x here.
    assert!(
        pipe.latency.as_secs_f64() * 5.0 < seq.latency.as_secs_f64(),
        "pipeline {} vs sequential {}",
        pipe.latency,
        seq.latency
    );
}

#[test]
fn binomial_pipeline_matches_chain_for_deep_pipelines_small_groups() {
    // Fig. 4a: for 256 MB transfers chain and binomial pipeline are very
    // close at moderate group sizes.
    let spec = ClusterSpec::fractus(8);
    let chain = run_single_multicast(&spec, 8, Algorithm::Chain, 64 * MB, MB);
    let pipe = run_single_multicast(&spec, 8, Algorithm::BinomialPipeline, 64 * MB, MB);
    let ratio = chain.latency.as_secs_f64() / pipe.latency.as_secs_f64();
    assert!(
        (0.8..=1.3).contains(&ratio),
        "chain/pipeline latency ratio {ratio}"
    );
}

#[test]
fn replication_is_almost_free_at_scale() {
    // Fig. 8's punchline: 128 receivers cost barely more than 16.
    let spec = ClusterSpec::sierra(128);
    let small = run_single_multicast(&spec, 16, Algorithm::BinomialPipeline, 32 * MB, MB);
    let large = run_single_multicast(&spec, 128, Algorithm::BinomialPipeline, 32 * MB, MB);
    let ratio = large.latency.as_secs_f64() / small.latency.as_secs_f64();
    assert!(
        ratio < 1.5,
        "scaling 16 -> 128 nodes should cost <50% extra, got {ratio}"
    );
}

#[test]
fn non_power_of_two_groups_work_on_the_fabric() {
    let spec = ClusterSpec::fractus(16);
    for group in [3usize, 5, 6, 7, 9, 11, 13, 15] {
        let out = run_single_multicast(&spec, group, Algorithm::BinomialPipeline, 8 * MB, MB);
        assert!(out.latency > SimDuration::ZERO, "n={group}");
    }
}

#[test]
fn streams_pipeline_back_to_back_messages() {
    let spec = ClusterSpec::fractus(4);
    let (aggregate, latencies) = run_stream(&spec, 4, Algorithm::BinomialPipeline, 16 * MB, MB, 8);
    assert_eq!(latencies.len(), 8);
    // Aggregate bandwidth should approach a decent fraction of line rate.
    assert!(aggregate > 30.0, "aggregate {aggregate} Gb/s");
}

#[test]
fn one_byte_messages_are_overhead_bound_not_bandwidth_bound() {
    // Fig. 7's metric: 1-byte messages per second. All messages are
    // submitted up front, so per-message latency is cumulative queueing;
    // the meaningful number is the sustained rate.
    let spec = ClusterSpec::fractus(4);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..4).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    let count = 200usize;
    for _ in 0..count {
        cluster.submit_send(group, 1);
    }
    cluster.run();
    let results = cluster.message_results();
    assert_eq!(results.len(), count);
    let end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten())
        .max()
        .copied()
        .unwrap();
    let rate = count as f64 / end.as_secs_f64();
    assert!(
        rate > 5_000.0,
        "1-byte message rate implausibly low: {rate}/s"
    );
    assert!(cluster.all_quiescent());
}

#[test]
fn overlapping_groups_share_the_fabric_fairly() {
    let spec = ClusterSpec::fractus(8);
    // All-send pattern: 8 fully-overlapping groups, every member a root.
    let all = run_concurrent_overlapping(&spec, 8, 8, Algorithm::BinomialPipeline, 16 * MB, 2, MB);
    let one = run_concurrent_overlapping(&spec, 8, 1, Algorithm::BinomialPipeline, 16 * MB, 2, MB);
    // Concurrent senders extract more aggregate bandwidth than one sender.
    assert!(
        all > one,
        "all-senders {all} Gb/s should beat one-sender {one} Gb/s"
    );
    // And the aggregate cannot exceed bisection (8 nodes x 100 Gb/s rx).
    assert!(all < 800.0);
}

#[test]
fn oversubscribed_tor_caps_cross_rack_bandwidth() {
    // Apt-like: 2 racks x 4 hosts, 56 Gb/s NICs, but a TOR uplink of only
    // 16 Gb/s per rack. A cross-rack-heavy multicast is pinned well below
    // NIC line rate.
    let apt = ClusterSpec {
        topology: rdmc_sim::TopoSpec::Tor {
            racks: 2,
            per_rack: 4,
            host_gbps: 56.0,
            uplink_gbps: 16.0,
            latency: SimDuration::from_micros(3),
        },
        ..ClusterSpec::apt(2, 4)
    };
    let out = run_single_multicast(&apt, 8, Algorithm::BinomialPipeline, 64 * MB, MB);
    assert!(
        out.bandwidth_gbps < 35.0,
        "TOR should throttle: got {} Gb/s",
        out.bandwidth_gbps
    );
    // The same group entirely within one rack runs at NIC speeds.
    let mut cluster = ClusterBuilder::new(apt.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 64 * MB);
    cluster.run();
    let intra = cluster.message_results()[0].bandwidth_gbps().unwrap();
    assert!(
        intra > out.bandwidth_gbps * 1.5,
        "intra-rack {intra} vs cross-rack {}",
        out.bandwidth_gbps
    );
}

#[test]
fn hybrid_schedule_beats_random_embedding_on_tor() {
    // §4.3: on a *severely* oversubscribed TOR, the rack-aware hybrid
    // crosses the uplink once per block per rack and outperforms the plain
    // binomial pipeline whose hypercube ignores rack boundaries (a third
    // of its steps put four concurrent flows on the scarce uplink).
    let scarce = ClusterSpec {
        topology: rdmc_sim::TopoSpec::Tor {
            racks: 2,
            per_rack: 4,
            host_gbps: 56.0,
            uplink_gbps: 8.0,
            latency: SimDuration::from_micros(3),
        },
        ..ClusterSpec::apt(2, 4)
    };
    let plain = run_single_multicast(&scarce, 8, Algorithm::BinomialPipeline, 64 * MB, MB);
    let hybrid = run_single_multicast(
        &scarce,
        8,
        Algorithm::Hybrid {
            rack_of: vec![0, 0, 0, 0, 1, 1, 1, 1],
        },
        64 * MB,
        MB,
    );
    assert!(
        hybrid.bandwidth_gbps > plain.bandwidth_gbps,
        "hybrid {} Gb/s should beat plain {} Gb/s",
        hybrid.bandwidth_gbps,
        plain.bandwidth_gbps
    );
}

#[test]
fn crash_mid_transfer_wedges_all_survivors() {
    let spec = ClusterSpec::fractus(8);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    // A fat transfer, interrupted by node 5 dying early.
    cluster.submit_send(group, 256 * MB);
    cluster.schedule_crash_at(5, SimTime::from_nanos(2_000_000));
    cluster.run();
    let wedged = cluster.wedged_members(group);
    // Every survivor learns of the failure (paper §3 property 6).
    for rank in [0u32, 1, 2, 3, 4, 6, 7] {
        assert!(
            wedged.contains(&rank),
            "rank {rank} did not wedge: {wedged:?}"
        );
    }
    // The message never completes everywhere.
    let result = &cluster.message_results()[0];
    assert!(result.latency().is_none());
    assert!(!cluster.all_quiescent());
}

#[test]
fn quiescence_after_clean_run_guarantees_delivery() {
    // §4.6: successful close (= quiescent, unwedged) implies every message
    // reached every destination.
    let spec = ClusterSpec::fractus(5);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..5).collect(),
        algorithm: Algorithm::Chain,
        block_size: 256 * 1024,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    for _ in 0..3 {
        cluster.submit_send(group, 3 * MB);
    }
    cluster.run();
    assert!(cluster.all_quiescent());
    for r in cluster.message_results() {
        assert!(r.latency().is_some());
    }
}

#[test]
fn scheduling_jitter_degrades_gracefully() {
    // §4.5: slack absorbs delays; heavy jitter on one relayer should not
    // collapse throughput.
    let spec = ClusterSpec::fractus(8);
    let clean = run_single_multicast(&spec, 8, Algorithm::BinomialPipeline, 64 * MB, MB);

    // 100 us preemption on 5% of node 3's software actions.
    let mut cluster = ClusterBuilder::new(spec.clone())
        .jitter(
            3,
            JitterModel::new(
                1234,
                0.05,
                SimDuration::from_micros(100),
                SimDuration::from_micros(100),
            ),
        )
        .build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 64 * MB);
    cluster.run();
    let jittered = cluster.message_results()[0].latency().unwrap();
    let slowdown = jittered.as_secs_f64() / clean.latency.as_secs_f64();
    assert!(
        slowdown < 1.4,
        "jitter slowdown should be modest, got {slowdown}x"
    );
}

#[test]
fn slow_nic_costs_less_than_chain_would_suffer() {
    // §4.5 item 2: a single half-speed NIC is crossed on only 1/l of the
    // steps; effective bandwidth stays above the slow-link floor.
    use rdmc_sim::TopoSpec;
    let mk = |gbps: Vec<f64>| ClusterSpec {
        topology: TopoSpec::FlatPerNode {
            gbps,
            latency: SimDuration::from_micros(2),
        },
        ..ClusterSpec::fractus(0)
    };
    let uniform = mk(vec![100.0; 8]);
    let slow_one = mk({
        let mut v = vec![100.0; 8];
        v[4] = 50.0;
        v
    });
    let base = run_single_multicast(&uniform, 8, Algorithm::BinomialPipeline, 64 * MB, MB);
    let slow = run_single_multicast(&slow_one, 8, Algorithm::BinomialPipeline, 64 * MB, MB);
    let fraction = slow.bandwidth_gbps / base.bandwidth_gbps;
    // Chain would be pinned at ~0.5; the pipeline holds well above that.
    assert!(
        fraction > 0.55,
        "pipeline kept only {fraction} of bandwidth"
    );
    // Chain for contrast: every block crosses the slow node.
    let chain_base = run_single_multicast(&uniform, 8, Algorithm::Chain, 64 * MB, MB);
    let chain_slow = run_single_multicast(&slow_one, 8, Algorithm::Chain, 64 * MB, MB);
    let chain_fraction = chain_slow.bandwidth_gbps / chain_base.bandwidth_gbps;
    assert!(
        fraction > chain_fraction,
        "pipeline ({fraction}) should tolerate the slow NIC better than chain ({chain_fraction})"
    );
}

#[test]
fn tracing_captures_the_protocol_conversation() {
    let spec = ClusterSpec::stampede(4);
    let mut cluster = ClusterBuilder::new(spec.clone()).tracing().build();
    let group = cluster.create_group(GroupSpec {
        members: (0..4).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 8 * MB);
    cluster.run();
    // Every receiver allocated a buffer, received blocks, delivered.
    for rank in 1..4 {
        let trace = cluster.trace(group, rank);
        assert!(trace.iter().any(|r| r.kind == TraceKind::BufferAllocated));
        assert!(trace.iter().any(|r| r.kind == TraceKind::Delivered));
        let arrivals = trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::BlockArrived { .. }))
            .count();
        assert_eq!(arrivals, 8, "rank {rank} should receive 8 blocks");
    }
    // The root posted sends and heard readiness.
    let root = cluster.trace(group, 0);
    assert!(root
        .iter()
        .any(|r| matches!(r.kind, TraceKind::SendPosted { .. })));
    assert!(root
        .iter()
        .any(|r| matches!(r.kind, TraceKind::ReadyHeard { .. })));
}

#[test]
fn bandwidth_peaks_at_intermediate_block_size() {
    // Fig. 6: too-small blocks are overhead-bound, too-large blocks lose
    // pipelining; the curve peaks in between.
    let spec = ClusterSpec::fractus(4);
    let msg = 64 * MB;
    let bw = |block: u64| {
        run_single_multicast(&spec, 4, Algorithm::BinomialPipeline, msg, block).bandwidth_gbps
    };
    let tiny = bw(16 * 1024);
    let mid = bw(MB);
    let huge = bw(64 * MB); // one giant block: no pipelining at all
    assert!(mid > tiny, "mid {mid} should beat tiny-block {tiny}");
    assert!(mid > huge, "mid {mid} should beat single-block {huge}");
}

#[test]
fn pipelined_hybrid_beats_phased_hybrid_on_tor() {
    // Ablation (extension beyond the paper): overlapping the intra-rack
    // dissemination with the inter-rack phase removes the sequential
    // phase barrier and improves latency on a scarce TOR.
    let scarce = ClusterSpec {
        topology: rdmc_sim::TopoSpec::Tor {
            racks: 2,
            per_rack: 4,
            host_gbps: 56.0,
            uplink_gbps: 8.0,
            latency: SimDuration::from_micros(3),
        },
        ..ClusterSpec::apt(2, 4)
    };
    let rack_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
    let phased = run_single_multicast(
        &scarce,
        8,
        Algorithm::Hybrid {
            rack_of: rack_of.clone(),
        },
        64 * MB,
        MB,
    );
    let pipelined = run_single_multicast(
        &scarce,
        8,
        Algorithm::HybridPipelined { rack_of },
        64 * MB,
        MB,
    );
    assert!(
        pipelined.bandwidth_gbps > phased.bandwidth_gbps,
        "pipelined hybrid {} Gb/s should beat phased {} Gb/s",
        pipelined.bandwidth_gbps,
        phased.bandwidth_gbps
    );
}

#[test]
fn hybrid_pipelined_works_on_flat_fabric_too() {
    let spec = ClusterSpec::fractus(12);
    let out = run_single_multicast(
        &spec,
        12,
        Algorithm::HybridPipelined {
            rack_of: vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2],
        },
        16 * MB,
        MB,
    );
    assert!(out.latency > SimDuration::ZERO);
}

#[test]
fn binomial_pipeline_moves_no_redundant_bytes() {
    // Fig. 9's efficiency claim: "no redundant data transfers occur on
    // any network link." Each receiver's downlink carries exactly one
    // copy of the message (plus sub-percent control traffic), and the
    // senders' uplinks carry exactly (n-1) copies in total.
    let spec = ClusterSpec::fractus(8);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    let size = 32 * MB;
    cluster.submit_send(group, size);
    cluster.run();
    let net = cluster.fabric().net();
    let topo = cluster.fabric().topology();
    let mut total_tx = 0.0;
    for node in 0..8 {
        let rx = net.bytes_carried(topo.rx_link(node));
        total_tx += net.bytes_carried(topo.tx_link(node));
        if node == 0 {
            assert!(rx < size as f64 * 0.01, "the root must receive ~nothing");
        } else {
            assert!(
                (rx - size as f64).abs() < size as f64 * 0.01,
                "node {node} downlink carried {rx} bytes for a {size}-byte message"
            );
        }
    }
    let minimal = (7 * size) as f64;
    assert!(
        (total_tx - minimal).abs() < minimal * 0.01,
        "uplinks carried {total_tx} vs minimal {minimal}"
    );
}

#[test]
fn sequential_send_overloads_the_root_nic() {
    // §4.3: sequential send puts N*B bytes on the sender's NIC while
    // every receiver only downloads B — the hot spot the schedules fix.
    let spec = ClusterSpec::fractus(6);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..6).collect(),
        algorithm: Algorithm::Sequential,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    let size = 16 * MB;
    cluster.submit_send(group, size);
    cluster.run();
    let net = cluster.fabric().net();
    let topo = cluster.fabric().topology();
    let root_tx = net.bytes_carried(topo.tx_link(0));
    assert!(
        (root_tx - (5 * size) as f64).abs() < size as f64 * 0.05,
        "sequential root should emit 5 copies, emitted {root_tx}"
    );
    for node in 1..6 {
        let tx = net.bytes_carried(topo.tx_link(node));
        assert!(
            tx < size as f64 * 0.01,
            "sequential receivers relay nothing, node {node} sent {tx}"
        );
    }
}

#[test]
fn message_result_accessors_are_consistent() {
    let spec = ClusterSpec::fractus(3);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2],
        algorithm: Algorithm::Chain,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 10 * MB);
    cluster.run();
    let r = &cluster.message_results()[0];
    assert_eq!(r.group, group);
    assert_eq!(r.index, 0);
    assert_eq!(r.size, 10 * MB);
    assert_eq!(r.delivered_at.len(), 3);
    let lat = r.latency().unwrap();
    let bw = r.bandwidth_gbps().unwrap();
    let expected_bw = 10.0 * MB as f64 * 8.0 / lat.as_secs_f64() / 1e9;
    assert!((bw - expected_bw).abs() < 1e-9);
}

#[test]
fn traces_are_empty_unless_enabled() {
    let spec = ClusterSpec::fractus(3);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2],
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, MB);
    cluster.run();
    for rank in 0..3 {
        assert!(cluster.trace(group, rank).is_empty());
    }
}
