//! Randomized soak tests: many overlapping groups, mixed algorithms,
//! mixed message sizes, scheduling jitter everywhere — assert the whole
//! stack stays consistent (every message delivered everywhere, engines
//! quiescent, byte conservation on receivers' NICs).

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterSpec, GroupSpec, SimCluster};
use simnet::{JitterModel, SimDuration};

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sequential),
        Just(Algorithm::Chain),
        Just(Algorithm::BinomialTree),
        Just(Algorithm::BinomialPipeline),
    ]
}

#[derive(Debug, Clone)]
struct GroupPlan {
    algorithm: Algorithm,
    members: Vec<usize>,
    block_size: u64,
    messages: Vec<u64>,
}

fn arb_group(nodes: usize) -> impl Strategy<Value = GroupPlan> {
    (
        arb_algorithm(),
        prop::sample::subsequence((0..nodes).collect::<Vec<_>>(), 2..=nodes),
        prop::sample::select(vec![4u64 << 10, 64 << 10, 1 << 20]),
        prop::collection::vec(0u64..2_000_000, 1..4),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(algorithm, mut members, block_size, messages, root)| {
            // Rotate a random member into the root slot so senders vary.
            let r = root.index(members.len());
            members.swap(0, r);
            GroupPlan {
                algorithm,
                members,
                block_size,
                messages,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent groups with random membership, roots, sizes, and
    /// jitter: every message completes at every member and the cluster
    /// quiesces.
    #[test]
    fn chaos_soak(
        groups in prop::collection::vec(arb_group(10), 1..6),
        jitter_seed in any::<u64>(),
    ) {
        let mut cluster = SimCluster::new(ClusterSpec::fractus(10).build());
        for node in 0..10 {
            cluster.set_jitter(
                node,
                JitterModel::new(
                    jitter_seed ^ node as u64,
                    0.01,
                    SimDuration::from_micros(20),
                    SimDuration::from_micros(200),
                ),
            );
        }
        let mut ids = Vec::new();
        for plan in &groups {
            let id = cluster.create_group(GroupSpec {
                members: plan.members.clone(),
                algorithm: plan.algorithm.clone(),
                block_size: plan.block_size,
                ready_window: 3,
                max_outstanding_sends: 3,
            });
            ids.push(id);
        }
        for (plan, &id) in groups.iter().zip(&ids) {
            for &size in &plan.messages {
                cluster.submit_send(id, size);
            }
        }
        cluster.run();
        prop_assert!(cluster.all_quiescent(), "cluster failed to quiesce");
        let results = cluster.message_results();
        let expected: usize = groups.iter().map(|p| p.messages.len()).sum();
        prop_assert_eq!(results.len(), expected);
        for r in &results {
            prop_assert!(
                r.latency().is_some(),
                "group {} message {} incomplete",
                r.group,
                r.index
            );
        }
        // Conservation: each member's downlink carried at least the bytes
        // of every message delivered to it (readies/control traffic is tiny
        // and bypasses the flow accounting entirely).
        let net = cluster.fabric().net();
        let topo = cluster.fabric().topology();
        let mut expected_rx = [0.0f64; 10];
        for (plan, &id) in groups.iter().zip(&ids) {
            let _ = id;
            for &m in &plan.members[1..] {
                expected_rx[m] += plan.messages.iter().map(|&s| s as f64).sum::<f64>();
            }
        }
        for (node, &expected) in expected_rx.iter().enumerate() {
            let carried = net.bytes_carried(topo.rx_link(node));
            prop_assert!(
                carried + 1024.0 >= expected,
                "node {} downlink carried {} < expected {}",
                node,
                carried,
                expected
            );
        }
    }
}
