//! Randomized soak tests: many overlapping groups, mixed algorithms,
//! mixed message sizes, scheduling jitter everywhere — assert the whole
//! stack stays consistent (every message delivered everywhere, engines
//! quiescent, byte conservation on receivers' NICs).
//!
//! The second half is the failure-recovery chaos harness: crash any rank
//! at *any* protocol step (deterministically indexed by the engine-event
//! counter) and prove the cluster always converges — survivors hold
//! every byte of every non-abandoned message, abandonment is group-wide
//! consistent, the RNR machinery never arms, and reruns are bit-for-bit
//! deterministic.

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, SimCluster};
use simnet::{JitterModel, SimDuration};

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sequential),
        Just(Algorithm::Chain),
        Just(Algorithm::BinomialTree),
        Just(Algorithm::BinomialPipeline),
    ]
}

#[derive(Debug, Clone)]
struct GroupPlan {
    algorithm: Algorithm,
    members: Vec<usize>,
    block_size: u64,
    messages: Vec<u64>,
}

fn arb_group(nodes: usize) -> impl Strategy<Value = GroupPlan> {
    (
        arb_algorithm(),
        prop::sample::subsequence((0..nodes).collect::<Vec<_>>(), 2..=nodes),
        prop::sample::select(vec![4u64 << 10, 64 << 10, 1 << 20]),
        prop::collection::vec(0u64..2_000_000, 1..4),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(algorithm, mut members, block_size, messages, root)| {
            // Rotate a random member into the root slot so senders vary.
            let r = root.index(members.len());
            members.swap(0, r);
            GroupPlan {
                algorithm,
                members,
                block_size,
                messages,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent groups with random membership, roots, sizes, and
    /// jitter: every message completes at every member and the cluster
    /// quiesces.
    #[test]
    fn chaos_soak(
        groups in prop::collection::vec(arb_group(10), 1..6),
        jitter_seed in any::<u64>(),
    ) {
        let mut builder = ClusterBuilder::new(ClusterSpec::fractus(10))
            .flight_recorder(trace::Mode::Full);
        for node in 0..10 {
            builder = builder.jitter(
                node,
                JitterModel::new(
                    jitter_seed ^ node as u64,
                    0.01,
                    SimDuration::from_micros(20),
                    SimDuration::from_micros(200),
                ),
            );
        }
        let mut cluster = builder.build();
        let mut ids = Vec::new();
        for plan in &groups {
            let id = cluster.create_group(GroupSpec {
                members: plan.members.clone(),
                algorithm: plan.algorithm.clone(),
                block_size: plan.block_size,
                ready_window: 3,
                max_outstanding_sends: 3,
            });
            ids.push(id);
        }
        for (plan, &id) in groups.iter().zip(&ids) {
            for &size in &plan.messages {
                cluster.submit_send(id, size);
            }
        }
        cluster.run();
        prop_assert!(cluster.all_quiescent(), "cluster failed to quiesce");
        let oracle = trace::check::check_events(
            &cluster.trace_events(),
            &trace::check::CheckConfig::default(),
        );
        prop_assert!(oracle.is_ok(), "trace oracle: {:#?}", oracle.unwrap_err());
        let results = cluster.message_results();
        let expected: usize = groups.iter().map(|p| p.messages.len()).sum();
        prop_assert_eq!(results.len(), expected);
        for r in &results {
            prop_assert!(
                r.latency().is_some(),
                "group {} message {} incomplete",
                r.group,
                r.index
            );
        }
        // Conservation: each member's downlink carried at least the bytes
        // of every message delivered to it (readies/control traffic is tiny
        // and bypasses the flow accounting entirely).
        let net = cluster.fabric().net();
        let topo = cluster.fabric().topology();
        let mut expected_rx = [0.0f64; 10];
        for (plan, &id) in groups.iter().zip(&ids) {
            let _ = id;
            for &m in &plan.members[1..] {
                expected_rx[m] += plan.messages.iter().map(|&s| s as f64).sum::<f64>();
            }
        }
        for (node, &expected) in expected_rx.iter().enumerate() {
            let carried = net.bytes_carried(topo.rx_link(node));
            prop_assert!(
                carried + 1024.0 >= expected,
                "node {} downlink carried {} < expected {}",
                node,
                carried,
                expected
            );
        }
    }
}

const BLOCK: u64 = 64 << 10;

/// One recovery run: an `n`-member binomial-pipeline group with recovery
/// enabled, one `k`-block message, optional scheduling jitter, and an
/// optional crash of `victim` just before engine event `step`.
fn recovery_run(
    n: usize,
    k: u64,
    crash: Option<(usize, u64)>,
    jitter_seed: Option<u64>,
) -> SimCluster {
    let mut builder = ClusterBuilder::new(ClusterSpec::fractus(n))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default());
    if let Some(seed) = jitter_seed {
        for node in 0..n {
            builder = builder.jitter(
                node,
                JitterModel::new(
                    seed ^ node as u64,
                    0.02,
                    SimDuration::from_micros(20),
                    SimDuration::from_micros(200),
                ),
            );
        }
    }
    let mut cluster = builder.build();
    let group = cluster.create_group(GroupSpec {
        members: (0..n).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    if let Some((victim, step)) = crash {
        cluster.crash_after_events(victim, step);
    }
    cluster.submit_send(group, k * BLOCK);
    cluster.run();
    cluster
}

/// The convergence invariant every chaos run must satisfy: survivors are
/// quiescent, no RNR timer ever armed, and every message was either
/// delivered at every survivor or consistently abandoned group-wide.
fn assert_recovered(cluster: &SimCluster, n: usize, victim: usize) {
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");
    assert_eq!(cluster.fabric().stats().rnr_arms, 0, "an RNR timer armed");
    // Trace oracle over the full flight recording: block causality,
    // send/arrival pairing, delivery completeness, and no RNR arms must
    // all hold even on crash/recovery runs. Budgets stay off — resume
    // epochs run recovery-planner schedules with their own port shapes.
    let oracle = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    );
    if let Err(violations) = &oracle {
        panic!("trace oracle found violations: {violations:#?}");
    }
    let survivors = cluster.surviving_ranks(0);
    assert!(
        !survivors.contains(&(victim as u32)),
        "crashed rank {victim} still a member"
    );
    assert_eq!(survivors.len(), n - 1, "exactly the victim was removed");
    let abandoned: Vec<usize> = cluster
        .recovery_stats()
        .reconfigurations
        .iter()
        .flat_map(|r| r.abandoned.iter().copied())
        .collect();
    for r in cluster.message_results() {
        if abandoned.contains(&r.index) {
            continue;
        }
        for &o in &survivors {
            assert!(
                r.delivered_at[o as usize].is_some(),
                "message {} missing at surviving rank {o}",
                r.index
            );
        }
    }
}

/// Exhaustive mini-sweep: a 4-member pipeline, crashing *every* rank at
/// *every* protocol step of the failure-free run. Quick but complete —
/// the proptest below extends the same property to larger shapes.
#[test]
fn every_rank_crashing_at_every_step_recovers() {
    let (n, k) = (4usize, 3u64);
    let total = recovery_run(n, k, None, None).events_fed();
    assert!(total > 0);
    for victim in 0..n {
        for step in 0..total {
            let cluster = recovery_run(n, k, Some((victim, step)), None);
            assert!(
                !cluster.recovery_stats().reconfigurations.is_empty(),
                "victim {victim} step {step}: no reconfiguration happened"
            );
            assert_recovered(&cluster, n, victim);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash any rank at any protocol step for n up to 8, with random
    /// scheduling jitter: the group always reconfigures and converges,
    /// and a rerun with identical parameters is identical (virtual time
    /// makes the whole failure/recovery path deterministic).
    #[test]
    fn crash_at_any_protocol_step_recovers(
        n in prop::sample::select(vec![2usize, 3, 4, 5, 6, 8]),
        k in prop::sample::select(vec![2u64, 4, 7]),
        victim_sel in any::<prop::sample::Index>(),
        step_sel in any::<prop::sample::Index>(),
        jitter_seed in any::<u64>(),
    ) {
        let total = recovery_run(n, k, None, Some(jitter_seed)).events_fed();
        let victim = victim_sel.index(n);
        let step = step_sel.index(total as usize) as u64;

        let cluster = recovery_run(n, k, Some((victim, step)), Some(jitter_seed));
        assert_recovered(&cluster, n, victim);

        // Determinism: the rerun reproduces the run event-for-event.
        let rerun = recovery_run(n, k, Some((victim, step)), Some(jitter_seed));
        prop_assert_eq!(cluster.events_fed(), rerun.events_fed());
        prop_assert_eq!(
            cluster.fabric().now().as_nanos(),
            rerun.fabric().now().as_nanos()
        );
        let (a, b) = (cluster.recovery_stats(), rerun.recovery_stats());
        prop_assert_eq!(a.reconfigurations.len(), b.reconfigurations.len());
        for (x, y) in a.reconfigurations.iter().zip(&b.reconfigurations) {
            prop_assert_eq!(x.epoch, y.epoch);
            prop_assert_eq!(&x.survivors, &y.survivors);
            prop_assert_eq!(x.installed_at, y.installed_at);
            prop_assert_eq!(x.resumed_blocks, y.resumed_blocks);
            prop_assert_eq!(&x.abandoned, &y.abandoned);
        }
    }
}
