//! Per-NIC send admission: paced clusters still deliver everything,
//! never deadlock at the tightest bound, count their deferrals, and
//! survive crashes with recovery enabled.

use rdmc::Algorithm;
use rdmc_sim::{
    ClusterBuilder, ClusterSpec, GroupSpec, PacerConfig, PacingPolicy, RecoveryConfig, SimCluster,
};
use simnet::SimTime;

const BLOCK: u64 = 64 << 10;

fn group_spec(members: Vec<usize>) -> GroupSpec {
    GroupSpec {
        members,
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 3,
        max_outstanding_sends: 3,
    }
}

/// Two fully-overlapping groups with distinct roots, several messages
/// each — enough concurrency that a small admission bound must defer
/// sends.
fn contended(policy: PacingPolicy, max_inflight: u32) -> SimCluster {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(6))
        .pacing(PacerConfig::new(max_inflight, policy))
        .build();
    let g0 = cluster.create_group(group_spec((0..6).collect()));
    let g1 = cluster.create_group(group_spec(vec![1, 2, 3, 4, 5, 0]));
    for _ in 0..3 {
        cluster.submit_send(g0, 24 * BLOCK);
        cluster.submit_send(g1, 4 * BLOCK);
    }
    cluster.run();
    cluster
}

#[test]
fn every_policy_delivers_everything_under_contention() {
    for policy in [
        PacingPolicy::Fifo,
        PacingPolicy::SmallestFirst,
        PacingPolicy::RoundRobin,
    ] {
        let cluster = contended(policy, 2);
        assert!(cluster.all_quiescent(), "{policy:?}: not quiescent");
        for r in cluster.message_results() {
            assert!(
                r.latency().is_some(),
                "{policy:?}: message {}/{} incomplete",
                r.group,
                r.index
            );
        }
        let stats = cluster.pacing_stats().expect("pacing enabled");
        assert!(
            stats.deferred_sends > 0,
            "{policy:?}: contended run never deferred a send"
        );
        assert!(stats.peak_queue_depth > 0);
    }
}

#[test]
fn tightest_bound_does_not_deadlock() {
    // One slot per NIC is the degenerate case: progress must still be
    // strictly serial, never stuck.
    let cluster = contended(PacingPolicy::Fifo, 1);
    assert!(cluster.all_quiescent());
    for r in cluster.message_results() {
        assert!(r.latency().is_some());
    }
}

#[test]
fn unpaced_and_generous_bound_agree() {
    // A bound far above what the engines ever post concurrently admits
    // everything immediately: same deliveries as the unpaced cluster,
    // at the same times.
    let run = |pacing: Option<PacerConfig>| {
        let mut builder = ClusterBuilder::new(ClusterSpec::fractus(6));
        if let Some(config) = pacing {
            builder = builder.pacing(config);
        }
        let mut cluster = builder.build();
        let g = cluster.create_group(group_spec((0..6).collect()));
        for _ in 0..4 {
            cluster.submit_send(g, 16 * BLOCK);
        }
        cluster.run();
        cluster
            .message_results()
            .iter()
            .map(|r| r.delivered_at.clone())
            .collect::<Vec<_>>()
    };
    let unpaced = run(None);
    let generous = run(Some(PacerConfig::new(1_000, PacingPolicy::Fifo)));
    assert_eq!(unpaced, generous);
}

#[test]
fn smallest_first_prefers_the_small_tenant() {
    // Same traffic, same bound: under smallest-first the small group's
    // messages must on average complete no later than under FIFO.
    let mean_small = |cluster: &SimCluster| {
        let small: Vec<f64> = cluster
            .message_results()
            .iter()
            .filter(|r| r.group == 1)
            .map(|r| r.latency().expect("complete").as_secs_f64())
            .collect();
        small.iter().sum::<f64>() / small.len() as f64
    };
    let fifo = contended(PacingPolicy::Fifo, 1);
    let sjf = contended(PacingPolicy::SmallestFirst, 1);
    assert!(
        mean_small(&sjf) <= mean_small(&fifo) * 1.001,
        "smallest-first should not delay the small tenant: {} vs {}",
        mean_small(&sjf),
        mean_small(&fifo)
    );
}

#[test]
fn pacing_survives_a_crash_with_recovery() {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(6))
        .pacing(PacerConfig::new(2, PacingPolicy::RoundRobin))
        .recovery(RecoveryConfig::default())
        .build();
    let g = cluster.create_group(group_spec((0..6).collect()));
    for _ in 0..2 {
        cluster.submit_send(g, 16 * BLOCK);
    }
    cluster.schedule_crash_at(3, SimTime::from_nanos(400_000));
    cluster.run();
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");
    // Whatever was not abandoned completed at every survivor.
    let survivors = cluster.surviving_ranks(g);
    assert!(!survivors.contains(&3));
    for r in cluster.message_results() {
        let complete = survivors
            .iter()
            .all(|&s| r.delivered_at[s as usize].is_some());
        let untouched = survivors
            .iter()
            .all(|&s| r.delivered_at[s as usize].is_none());
        assert!(
            complete || untouched,
            "message {} half-delivered after recovery",
            r.index
        );
    }
}

#[test]
fn peak_backlog_reports_queue_pressure() {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4)).build();
    let g = cluster.create_group(group_spec((0..4).collect()));
    for _ in 0..5 {
        cluster.submit_send(g, 8 * BLOCK);
    }
    // Five sends submitted back-to-back at t=0: the root's backlog high
    // water must see the pile-up.
    assert!(cluster.peak_backlog(g) >= 4);
    cluster.run();
}
