//! API-equivalence suite for the [`ClusterBuilder`] redesign: the typed
//! builder and the legacy grow-as-you-go mutator API (kept as
//! `#[deprecated]` shims) must configure bit-for-bit identical clusters.
//!
//! Three angles, from cheapest to most adversarial:
//!
//! 1. the builder reproduces the checked-in golden traces byte-for-byte
//!    (so does the legacy path), proving the redesign shifted no event,
//!    timestamp, or serialization detail;
//! 2. a jittered multi-group run configured through both paths exports
//!    identical flight recordings;
//! 3. a crash/recovery run configured through both paths agrees on the
//!    full chaos digest — events fed, final virtual time, every
//!    reconfiguration record, and every per-rank delivery time.
//!
//! The deprecated mutators are exercised *on purpose*: each legacy arm
//! carries its own `#[allow(deprecated)]` so the lint still bites if a
//! deprecated call sneaks in anywhere else.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, SimCluster};
use simnet::{JitterModel, SimDuration};
use verbs::CompletionMode;

const BLOCK: u64 = 64 << 10;

/// The golden-trace scenario: one 4-member, 4-block multicast on the
/// Fractus preset with a full flight recording.
fn golden_scenario(mut cluster: SimCluster, algorithm: Algorithm) -> String {
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(group, 4 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent());
    trace::export::to_jsonl(&recorder.events())
}

fn checked_in_golden(name: &str) -> String {
    let path = format!(
        "{}/../../tests/golden/{name}.jsonl",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

/// Both construction paths replay every checked-in golden trace
/// byte-for-byte.
#[test]
fn both_apis_reproduce_checked_in_golden_traces() {
    let cases = [
        ("sequential", Algorithm::Sequential),
        ("binomial_tree", Algorithm::BinomialTree),
        ("chain", Algorithm::Chain),
        ("binomial_pipeline", Algorithm::BinomialPipeline),
    ];
    for (name, algorithm) in cases {
        let want = checked_in_golden(name);

        let built = ClusterBuilder::new(ClusterSpec::fractus(4))
            .flight_recorder(trace::Mode::Full)
            .build();
        assert_eq!(
            golden_scenario(built, algorithm.clone()),
            want,
            "builder path diverged from golden {name}"
        );

        #[allow(deprecated)]
        let mut legacy = SimCluster::new(ClusterSpec::fractus(4).build());
        #[allow(deprecated)]
        let _ = legacy.enable_flight_recorder(trace::Mode::Full);
        assert_eq!(
            golden_scenario(legacy, algorithm),
            want,
            "legacy mutator path diverged from golden {name}"
        );
    }
}

/// `enable_tracing` is the same switch as
/// `flight_recorder(trace::Mode::Full)`.
#[test]
fn enable_tracing_matches_flight_recorder_full() {
    let built = ClusterBuilder::new(ClusterSpec::fractus(4))
        .tracing()
        .build();
    let a = golden_scenario(built, Algorithm::Chain);

    #[allow(deprecated)]
    let mut legacy = SimCluster::new(ClusterSpec::fractus(4).build());
    #[allow(deprecated)]
    legacy.enable_tracing();
    let b = golden_scenario(legacy, Algorithm::Chain);
    assert_eq!(a, b);
}

/// A jittered, completion-mode-mixed, two-group run: the builder and the
/// legacy mutators produce identical flight recordings.
fn overlapping_run(mut cluster: SimCluster) -> (String, u64) {
    let recorder = cluster.recorder().clone();
    let g0 = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3, 4],
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    let g1 = cluster.create_group(GroupSpec {
        members: vec![3, 4, 5],
        algorithm: Algorithm::Chain,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(g0, 6 * BLOCK);
    cluster.submit_send(g1, 3 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent());
    (
        trace::export::to_jsonl(&recorder.events()),
        cluster.fabric().now().as_nanos(),
    )
}

#[test]
fn jitter_and_completion_modes_agree_across_apis() {
    let jitter = |node: u64| {
        JitterModel::new(
            0xBEEF ^ node,
            0.02,
            SimDuration::from_micros(20),
            SimDuration::from_micros(200),
        )
    };

    let mut builder = ClusterBuilder::new(ClusterSpec::fractus(6))
        .flight_recorder(trace::Mode::Full)
        .completion_mode(1, CompletionMode::Interrupt)
        .completion_mode(4, CompletionMode::Hybrid);
    for node in 0..6u64 {
        builder = builder.jitter(node as usize, jitter(node));
    }
    let (trace_a, t_a) = overlapping_run(builder.build());

    #[allow(deprecated)]
    let mut legacy = SimCluster::new(ClusterSpec::fractus(6).build());
    #[allow(deprecated)]
    let _ = legacy.enable_flight_recorder(trace::Mode::Full);
    #[allow(deprecated)]
    legacy.set_completion_mode(1, CompletionMode::Interrupt);
    #[allow(deprecated)]
    legacy.set_completion_mode(4, CompletionMode::Hybrid);
    #[allow(deprecated)]
    for node in 0..6u64 {
        legacy.set_jitter(node as usize, jitter(node));
    }
    let (trace_b, t_b) = overlapping_run(legacy);

    assert_eq!(trace_a, trace_b, "flight recordings diverged");
    assert_eq!(t_a, t_b, "final virtual times diverged");
}

/// A crash/recovery run under jitter through one construction path,
/// digested: events fed, final virtual time, full trace export,
/// reconfiguration records, and per-rank delivery times.
fn chaos_digest(mut cluster: SimCluster) -> String {
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: (0..6).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.crash_after_events(2, 40);
    cluster.submit_send(group, 5 * BLOCK);
    cluster.run();
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");

    let mut digest = String::new();
    digest.push_str(&format!(
        "events_fed={} now_ns={}\n",
        cluster.events_fed(),
        cluster.fabric().now().as_nanos()
    ));
    for r in &cluster.recovery_stats().reconfigurations {
        digest.push_str(&format!(
            "epoch={} survivors={:?} installed_at={:?} resumed={} abandoned={:?}\n",
            r.epoch, r.survivors, r.installed_at, r.resumed_blocks, r.abandoned
        ));
    }
    for r in cluster.message_results() {
        digest.push_str(&format!(
            "msg group={} index={} delivered_at={:?}\n",
            r.group, r.index, r.delivered_at
        ));
    }
    digest.push_str(&trace::export::to_jsonl(&recorder.events()));
    digest
}

#[test]
fn recovery_chaos_digest_agrees_across_apis() {
    let jitter = |node: u64| {
        JitterModel::new(
            0x5EED ^ node,
            0.02,
            SimDuration::from_micros(20),
            SimDuration::from_micros(200),
        )
    };

    let mut builder = ClusterBuilder::new(ClusterSpec::fractus(6))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default());
    for node in 0..6u64 {
        builder = builder.jitter(node as usize, jitter(node));
    }
    let a = chaos_digest(builder.build());

    #[allow(deprecated)]
    let mut legacy = SimCluster::new(ClusterSpec::fractus(6).build());
    #[allow(deprecated)]
    let _ = legacy.enable_flight_recorder(trace::Mode::Full);
    #[allow(deprecated)]
    legacy.enable_recovery(RecoveryConfig::default());
    #[allow(deprecated)]
    for node in 0..6u64 {
        legacy.set_jitter(node as usize, jitter(node));
    }
    let b = chaos_digest(legacy);

    assert_eq!(
        a, b,
        "chaos digests diverged between builder and legacy APIs"
    );
}
