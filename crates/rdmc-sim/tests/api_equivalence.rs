//! Configuration-equivalence suite for the [`ClusterBuilder`] API (the
//! single construction path, now that the PR-5 deprecation cycle is
//! complete and the legacy mutator shims are gone).
//!
//! Three angles, from cheapest to most adversarial:
//!
//! 1. the builder reproduces the checked-in golden traces byte-for-byte,
//!    proving the deprecation cleanup shifted no event, timestamp, or
//!    serialization detail;
//! 2. shorthand knobs configure bit-for-bit the same clusters as their
//!    explicit spellings (`tracing()` vs `flight_recorder(Full)`);
//! 3. two identically-configured builds of a jittered multi-group run
//!    and of a crash/recovery run agree on full flight recordings and
//!    chaos digests — builder construction is deterministic.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, SimCluster};
use simnet::{JitterModel, SimDuration};
use verbs::CompletionMode;

const BLOCK: u64 = 64 << 10;

/// The golden-trace scenario: one 4-member, 4-block multicast on the
/// Fractus preset with a full flight recording.
fn golden_scenario(mut cluster: SimCluster, algorithm: Algorithm) -> String {
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(group, 4 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent());
    trace::export::to_jsonl(&recorder.events())
}

fn checked_in_golden(name: &str) -> String {
    let path = format!(
        "{}/../../tests/golden/{name}.jsonl",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

/// The builder replays every checked-in golden trace byte-for-byte.
#[test]
fn builder_reproduces_checked_in_golden_traces() {
    let cases = [
        ("sequential", Algorithm::Sequential),
        ("binomial_tree", Algorithm::BinomialTree),
        ("chain", Algorithm::Chain),
        ("binomial_pipeline", Algorithm::BinomialPipeline),
    ];
    for (name, algorithm) in cases {
        let want = checked_in_golden(name);
        let built = ClusterBuilder::new(ClusterSpec::fractus(4))
            .flight_recorder(trace::Mode::Full)
            .build();
        assert_eq!(
            golden_scenario(built, algorithm),
            want,
            "builder path diverged from golden {name}"
        );
    }
}

/// `tracing()` is the same switch as `flight_recorder(trace::Mode::Full)`.
#[test]
fn tracing_matches_flight_recorder_full() {
    let shorthand = ClusterBuilder::new(ClusterSpec::fractus(4))
        .tracing()
        .build();
    let a = golden_scenario(shorthand, Algorithm::Chain);

    let explicit = ClusterBuilder::new(ClusterSpec::fractus(4))
        .flight_recorder(trace::Mode::Full)
        .build();
    let b = golden_scenario(explicit, Algorithm::Chain);
    assert_eq!(a, b);
}

/// A jittered, completion-mode-mixed, two-group run.
fn overlapping_run(mut cluster: SimCluster) -> (String, u64) {
    let recorder = cluster.recorder().clone();
    let g0 = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3, 4],
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    let g1 = cluster.create_group(GroupSpec {
        members: vec![3, 4, 5],
        algorithm: Algorithm::Chain,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(g0, 6 * BLOCK);
    cluster.submit_send(g1, 3 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent());
    (
        trace::export::to_jsonl(&recorder.events()),
        cluster.fabric().now().as_nanos(),
    )
}

/// Two identically-configured builds produce identical flight
/// recordings: node-targeted knobs (jitter, completion modes) land
/// deterministically regardless of the builder being a one-shot value.
#[test]
fn jittered_builds_are_deterministic() {
    let jitter = |node: u64| {
        JitterModel::new(
            0xBEEF ^ node,
            0.02,
            SimDuration::from_micros(20),
            SimDuration::from_micros(200),
        )
    };
    let build = || {
        let mut builder = ClusterBuilder::new(ClusterSpec::fractus(6))
            .flight_recorder(trace::Mode::Full)
            .completion_mode(1, CompletionMode::Interrupt)
            .completion_mode(4, CompletionMode::Hybrid);
        for node in 0..6u64 {
            builder = builder.jitter(node as usize, jitter(node));
        }
        builder.build()
    };

    let (trace_a, t_a) = overlapping_run(build());
    let (trace_b, t_b) = overlapping_run(build());

    assert_eq!(trace_a, trace_b, "flight recordings diverged");
    assert_eq!(t_a, t_b, "final virtual times diverged");
}

/// A crash/recovery run under jitter, digested: events fed, final
/// virtual time, full trace export, reconfiguration records, and
/// per-rank delivery times.
fn chaos_digest(mut cluster: SimCluster) -> String {
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: (0..6).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.crash_after_events(2, 40);
    cluster.submit_send(group, 5 * BLOCK);
    cluster.run();
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");

    let mut digest = String::new();
    digest.push_str(&format!(
        "events_fed={} now_ns={}\n",
        cluster.events_fed(),
        cluster.fabric().now().as_nanos()
    ));
    for r in &cluster.recovery_stats().reconfigurations {
        digest.push_str(&format!(
            "epoch={} survivors={:?} installed_at={:?} resumed={} abandoned={:?}\n",
            r.epoch, r.survivors, r.installed_at, r.resumed_blocks, r.abandoned
        ));
    }
    for r in cluster.message_results() {
        digest.push_str(&format!(
            "msg group={} index={} delivered_at={:?}\n",
            r.group, r.index, r.delivered_at
        ));
    }
    digest.push_str(&trace::export::to_jsonl(&recorder.events()));
    digest
}

#[test]
fn recovery_chaos_digest_is_deterministic() {
    let jitter = |node: u64| {
        JitterModel::new(
            0x5EED ^ node,
            0.02,
            SimDuration::from_micros(20),
            SimDuration::from_micros(200),
        )
    };
    let build = || {
        let mut builder = ClusterBuilder::new(ClusterSpec::fractus(6))
            .flight_recorder(trace::Mode::Full)
            .recovery(RecoveryConfig::default());
        for node in 0..6u64 {
            builder = builder.jitter(node as usize, jitter(node));
        }
        builder.build()
    };

    let a = chaos_digest(build());
    let b = chaos_digest(build());

    assert_eq!(a, b, "chaos digests diverged between identical builds");
}
