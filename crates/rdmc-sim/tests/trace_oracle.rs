//! The trace oracle run against real simulations: every algorithm's
//! flight recording must satisfy block causality, FIFO send/arrival
//! pairing, the analyzer's per-step port budgets, and its exact
//! completion-step bound — and the oracle must still reject tampered
//! recordings (no vacuous passes).

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use trace::check::{check_events, CheckConfig};
use trace::EventKind;

const BLOCK: u64 = 64 << 10;

/// Runs one `k`-block multicast over `n` members with a full-capture
/// recorder and returns the event stream.
fn traced_run(n: usize, k: u64, algorithm: Algorithm) -> Vec<trace::TraceEvent> {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(n))
        .flight_recorder(trace::Mode::Full)
        .build();
    let group = cluster.create_group(GroupSpec {
        members: (0..n).collect(),
        algorithm,
        block_size: BLOCK,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, k * BLOCK);
    cluster.run();
    cluster.trace_events()
}

/// The oracle configuration the analyzer's static model implies for
/// `algorithm` at `(n, k)`: port budgets plus the completion-step bound
/// (schedule steps are 0-indexed, so a bound of `s` steps admits
/// indices up to `s - 1`).
fn config_for(algorithm: &Algorithm, n: u32, k: u32) -> CheckConfig {
    let budget = analyzer::PortBudget::for_algorithm(algorithm, n);
    let bound = match analyzer::StepBound::for_algorithm(algorithm, n, k) {
        analyzer::StepBound::Exact(s) | analyzer::StepBound::AtMost(s) => Some(s.saturating_sub(1)),
        analyzer::StepBound::Unbounded => None,
    };
    CheckConfig {
        send_budget: Some(budget.send),
        recv_budget: Some(budget.recv),
        completion_step_bound: bound,
        forbid_rnr: true,
    }
}

#[test]
fn all_algorithms_pass_the_oracle_with_analyzer_bounds() {
    let algorithms = [
        Algorithm::Sequential,
        Algorithm::BinomialTree,
        Algorithm::Chain,
        Algorithm::BinomialPipeline,
    ];
    for algorithm in &algorithms {
        for &n in &[2usize, 4, 7] {
            let k = 4u32;
            let events = traced_run(n, u64::from(k), algorithm.clone());
            let cfg = config_for(algorithm, n as u32, k);
            let stats = check_events(&events, &cfg)
                .unwrap_or_else(|v| panic!("{algorithm:?} n={n}: oracle violations: {v:#?}"));
            // The oracle saw the whole conversation, not a fragment:
            // every non-root member delivers, and arrivals match issues.
            assert_eq!(stats.deliveries, n as u64, "{algorithm:?} n={n}");
            assert_eq!(stats.issues, stats.arrivals, "{algorithm:?} n={n}");
            // The run used the schedule's full depth and no more: its
            // highest step index + 1 satisfies the analyzer's bound.
            let bound = analyzer::StepBound::for_algorithm(algorithm, n as u32, k);
            let max_step = stats.max_step.expect("blocks moved");
            assert!(
                bound.admits(max_step + 1),
                "{algorithm:?} n={n}: max step {max_step} vs bound {bound}"
            );
        }
    }
}

#[test]
fn hybrid_algorithms_pass_the_oracle() {
    // Two racks of four on a flat fabric: the schedule shapes are what
    // the oracle vets; the topology does not need to match.
    let rack_of: Vec<u32> = vec![0, 0, 0, 0, 1, 1, 1, 1];
    for algorithm in [
        Algorithm::Hybrid {
            rack_of: rack_of.clone(),
        },
        Algorithm::HybridPipelined { rack_of },
    ] {
        let k = 4u32;
        let events = traced_run(8, u64::from(k), algorithm.clone());
        let cfg = config_for(&algorithm, 8, k);
        check_events(&events, &cfg)
            .unwrap_or_else(|v| panic!("{algorithm:?}: oracle violations: {v:#?}"));
    }
}

#[test]
fn oracle_rejects_a_tampered_recording() {
    let mut events = traced_run(4, 4, Algorithm::BinomialPipeline);
    // Erase one block send: its arrival is now uncaused.
    let idx = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::BlockSendIssued { .. }))
        .expect("sends recorded");
    events.remove(idx);
    let err = check_events(&events, &CheckConfig::default()).expect_err("tampered trace must fail");
    assert!(
        err.iter()
            .any(|v| v.contains("no matching send") || v.contains("FIFO")),
        "unexpected violations: {err:#?}"
    );
}

#[test]
fn ring_mode_drops_oldest_but_keeps_recent_window() {
    // A small ring on a real run: the recorder must report drops (so
    // oracle users know the capture is partial) and retain the tail.
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4))
        .flight_recorder(trace::Mode::Ring(64))
        .build();
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: (0..4).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 16 * BLOCK);
    cluster.run();
    let events = recorder.events();
    assert_eq!(events.len(), 64, "ring stays at capacity");
    assert!(recorder.dropped() > 0, "a 16-block run overflows 64 slots");
    // The tail always ends with the final deliveries.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Delivered { .. })),
        "the last deliveries stay in the window"
    );
}
