//! Differential testing of the atomic multicast overlay: the
//! multi-sender total order must equal what a *pinned single sender*
//! would produce — the rotation, null elision, and frontier machinery
//! may change *when* slots become deliverable but never *what* order
//! they come out in. A pure-Rust rotation model predicts every log
//! entry; the overlay, swept across all four dissemination algorithms
//! and with and without seeded fabric loss (geo profile, erasure
//! protection), must match it exactly, and the pinned-sender case must
//! agree with the legacy §4.6 single-sender stable-delivery path.

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, ReliabilityPolicy, SimCluster};
use simnet::{FaultProfile, LinkFault};

const KB: u64 = 1 << 10;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sequential),
        Just(Algorithm::Chain),
        Just(Algorithm::BinomialTree),
        Just(Algorithm::BinomialPipeline),
    ]
}

/// The oracle: replay the submission plan through a trivial sequential
/// model of the rotation — no concurrency, no frontiers, no fabric —
/// and emit the `(slot, sender, seq, size)` tuples a correct overlay
/// must deliver, in order. `seq` is dense per owner across nulls *and*
/// data, exactly like the overlay's slot ledger.
fn model_log(n: usize, plan: &[(usize, u64)]) -> Vec<(u64, u32, u64, u64)> {
    let mut cursor = 0usize;
    let mut owned = vec![0u64; n];
    let mut slot = 0u64;
    let mut log = Vec::new();
    for &(origin, size) in plan {
        while cursor != origin {
            owned[cursor] += 1; // null slot
            cursor = (cursor + 1) % n;
            slot += 1;
        }
        log.push((slot, origin as u32, owned[origin], size));
        owned[origin] += 1;
        cursor = (cursor + 1) % n;
        slot += 1;
    }
    log
}

/// One differential run: an `n`-member atomic group on the given
/// algorithm, optionally on a lossy geo fabric under erasure
/// protection, fed the submission plan through `submit_atomic_from`.
fn differential_run(
    n: usize,
    algorithm: Algorithm,
    plan: &[(usize, u64)],
    loss: Option<(u64, u32)>,
) -> SimCluster {
    let spec = GroupSpec {
        members: (0..n).collect(),
        algorithm,
        block_size: 64 * KB,
        ready_window: 2,
        max_outstanding_sends: 2,
    };
    let mut builder = if loss.is_some() {
        // The WAN shape from the paper's geo scenario: long fat pipes,
        // seeded per-link loss, erasure-coded repair.
        ClusterBuilder::new(ClusterSpec::geo(n)).reliability(ReliabilityPolicy::erasure(2, 1))
    } else {
        ClusterBuilder::new(ClusterSpec::fractus(n))
    };
    if let Some((seed, ppm)) = loss {
        let mut profile = FaultProfile::new(seed);
        profile.set_default(LinkFault::lossy(f64::from(ppm) / 1e6));
        builder = builder.fault_profile(profile);
    }
    let mut cluster = builder
        .flight_recorder(trace::Mode::Full)
        .atomic(spec)
        .build();
    for &(origin, size) in plan {
        cluster.submit_atomic_from(0, origin, size);
    }
    cluster.run();
    cluster
}

fn assert_matches_model(cluster: &SimCluster, n: usize, plan: &[(usize, u64)], ctx: &str) {
    let expected = model_log(n, plan);
    for m in 0..n {
        let log: Vec<_> = cluster
            .atomic_log(0, m)
            .iter()
            .map(|d| (d.slot, d.sender, d.seq, d.size))
            .collect();
        assert_eq!(log, expected, "{ctx}: member {m} diverged from the model");
    }
    let oracle = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    );
    if let Err(violations) = &oracle {
        panic!("{ctx}: trace oracle found violations: {violations:#?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random multi-sender submission plans, all four algorithms, with
    /// and without seeded loss: every member's log equals the
    /// sequential rotation model, bit-for-bit reproducibly.
    #[test]
    fn multi_sender_log_matches_the_pinned_model(
        n in prop::sample::select(vec![3usize, 4, 6]),
        algorithm in arb_algorithm(),
        origins in prop::collection::vec(any::<prop::sample::Index>(), 2..8),
        size_sel in prop::sample::select(vec![64u64, 96, 160]),
        lossy in any::<bool>(),
        loss_seed in any::<u64>(),
        loss_ppm in prop::sample::select(vec![1_000u32, 5_000]),
    ) {
        let loss = lossy.then_some((loss_seed, loss_ppm));
        let plan: Vec<(usize, u64)> = origins
            .iter()
            .enumerate()
            .map(|(i, o)| (o.index(n), (size_sel + 32 * (i as u64 % 3)) * KB))
            .collect();
        let ctx = format!("n={n} {algorithm:?} loss={loss:?} plan={plan:?}");
        let cluster = differential_run(n, algorithm.clone(), &plan, loss);
        prop_assert!(
            cluster.recovery_stats().reconfigurations.is_empty(),
            "{ctx}: loss escalated into an eviction"
        );
        assert_matches_model(&cluster, n, &plan, &ctx);
        let rerun = differential_run(n, algorithm, &plan, loss);
        prop_assert_eq!(cluster.state_digest(), rerun.state_digest(), "{}: rerun diverged", ctx);
    }
}

/// Pinning every submission to one sender reduces the overlay to the
/// legacy §4.6 single-sender atomic delivery: same count, same
/// submission order, and the overlay's upcall never precedes the moment
/// the legacy status-table path would release the same message.
#[test]
fn pinned_sender_agrees_with_the_legacy_stability_path() {
    let n = 4;
    let sizes = [128 * KB, 192 * KB, 64 * KB, 256 * KB, 128 * KB];
    let plan: Vec<(usize, u64)> = sizes.iter().map(|&s| (0usize, s)).collect();
    let overlay = differential_run(n, Algorithm::BinomialPipeline, &plan, None);
    assert_matches_model(&overlay, n, &plan, "pinned");

    let mut legacy = ClusterBuilder::new(ClusterSpec::fractus(n)).build();
    let group = legacy.create_group(GroupSpec {
        members: (0..n).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: 64 * KB,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    legacy.enable_atomic_delivery(group);
    for &s in &sizes {
        legacy.submit_send(group, s);
    }
    legacy.run();
    for m in 0..n {
        let log = overlay.atomic_log(0, m);
        let stable = legacy.stable_deliveries(group, m as u32);
        assert_eq!(
            log.len(),
            stable.len(),
            "member {m}: delivery counts differ"
        );
        // Submission order both ways, and the legacy path's stable
        // times are monotone just like the overlay's slot order.
        assert!(log.windows(2).all(|w| w[0].slot < w[1].slot));
        assert!(stable.windows(2).all(|w| w[0] <= w[1]));
        for (d, &s) in log.iter().zip(&sizes) {
            assert_eq!(d.size, s, "member {m}: sizes out of submission order");
        }
    }
}
