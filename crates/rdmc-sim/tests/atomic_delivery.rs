//! Derecho-style atomic delivery (paper §4.6): RDMC deliveries buffered
//! until the replicated status table shows every member holds the
//! message. Validates the paper's claim that the added delay is small and
//! no bandwidth is lost.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, SimCluster};

const MB: u64 = 1 << 20;

fn spec_group(members: Vec<usize>) -> GroupSpec {
    GroupSpec {
        members,
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    }
}

fn run(atomic: bool, count: usize, size: u64) -> (SimCluster, usize) {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(8)).build();
    let group = cluster.create_group(spec_group((0..8).collect()));
    if atomic {
        cluster.enable_atomic_delivery(group);
    }
    for _ in 0..count {
        cluster.submit_send(group, size);
    }
    cluster.run();
    (cluster, group)
}

#[test]
fn every_member_stably_delivers_every_message() {
    let (cluster, group) = run(true, 5, 8 * MB);
    for rank in 0..8u32 {
        let stable = cluster.stable_deliveries(group, rank);
        assert_eq!(stable.len(), 5, "rank {rank}: {} stable", stable.len());
        // Stable times are monotone.
        assert!(stable.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn stability_never_precedes_local_delivery() {
    let (cluster, group) = run(true, 3, 16 * MB);
    let results = cluster.message_results();
    for rank in 0..8u32 {
        let stable = cluster.stable_deliveries(group, rank);
        for (idx, &s) in stable.iter().enumerate() {
            // Stable delivery at `rank` must follow EVERY member's local
            // RDMC completion of that message.
            for r in &results[idx..=idx] {
                for t in r.delivered_at.iter().flatten() {
                    assert!(
                        s >= *t,
                        "rank {rank} msg {idx}: stable {s:?} before local {t:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn added_delay_is_small_and_bandwidth_is_kept() {
    // The paper: "No loss of bandwidth is experienced, and the added delay
    // is surprisingly small."
    let count = 6;
    let size = 32 * MB;
    let (plain, _pg) = run(false, count, size);
    let (atomic, ag) = run(true, count, size);
    let end_plain = plain
        .message_results()
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten().copied())
        .max()
        .unwrap();
    let end_stable = (0..8u32)
        .flat_map(|r| atomic.stable_deliveries(ag, r).iter().copied())
        .max()
        .unwrap();
    let plain_s = end_plain.as_secs_f64();
    let stable_s = end_stable.as_secs_f64();
    assert!(stable_s >= plain_s, "stability cannot be free");
    assert!(
        stable_s < plain_s * 1.05,
        "atomic delivery should cost <5% end-to-end: {plain_s} vs {stable_s}"
    );
}

#[test]
fn crash_stalls_stability_but_not_rdmc_bookkeeping() {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4)).build();
    let group = cluster.create_group(spec_group((0..4).collect()));
    cluster.enable_atomic_delivery(group);
    cluster.submit_send(group, 64 * MB);
    cluster.schedule_crash_at(2, simnet::SimTime::from_nanos(1_000_000));
    cluster.run();
    // The dead member never publishes status, so nothing becomes stable —
    // exactly why Derecho needs its leader-based cleanup (out of scope
    // here, as in the paper).
    for rank in [0u32, 1, 3] {
        assert!(
            cluster.stable_deliveries(group, rank).is_empty(),
            "rank {rank} must not deliver unstably after a crash"
        );
    }
    assert!(!cluster.wedged_members(group).is_empty());
}
