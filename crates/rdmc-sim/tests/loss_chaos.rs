//! Loss chaos harness: prove the per-group reliability policies repair
//! (or cleanly escalate) *every* possible wire loss.
//!
//! Two attack modes:
//!
//! 1. **Exhaustive targeted drops** — a [`DropNth`] scheduler answers
//!    the fabric's loss choice points (see `verbs::PointKind::LossSite`)
//!    with "deliver" everywhere except the nth site, which it drops.
//!    Sweeping n over every site of the failure-free run drops every
//!    data transfer of the multicast exactly once, under every policy.
//! 2. **Seeded random loss** — a proptest feeds `simnet::FaultProfile`
//!    with random seeds, loss rates, burst channels, and corruption and
//!    asserts the same convergence invariant plus bit-for-bit
//!    determinism of a rerun.
//!
//! The convergence invariant in both modes: survivors quiesce, the RNR
//! machinery never arms, the trace oracle (including its loss/repair
//! rule) passes, and every message is delivered at every surviving rank
//! or consistently abandoned by a recovery epoch.
//!
//! Replaying a proptest counterexample by hand:
//!
//! ```text
//! RDMC_LOSS_POLICY=erasure RDMC_LOSS_SEED=42 RDMC_LOSS_PPM=10000 \
//!   RDMC_LOSS_BURST=1 cargo test -p rdmc-sim --test loss_chaos \
//!   replay_from_env -- --ignored --nocapture
//! ```

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rdmc::Algorithm;
use rdmc_sim::{
    ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, ReliabilityPolicy, SimCluster,
};
use simnet::{FaultProfile, GilbertElliott, LinkFault};
use verbs::{CandidateKind, ChoicePoint, PointKind, Scheduler};

const N: usize = 4;
const BLOCK: u64 = 64 << 10;
const BLOCKS: u64 = 3;

/// Delivers every transfer except the `target`-th loss site, which it
/// drops. With `target: None` it is a pure counter: the run is
/// loss-free and `seen` afterwards is the number of droppable sites.
struct DropNth {
    target: Option<u64>,
    seen: u64,
    dropped: bool,
}

impl Scheduler for DropNth {
    fn choose(&mut self, point: &ChoicePoint<'_>) -> usize {
        if point.kind != PointKind::LossSite {
            return 0;
        }
        let site = self.seen;
        self.seen += 1;
        let want_drop = Some(site) == self.target;
        if want_drop {
            self.dropped = true;
        }
        point
            .candidates
            .iter()
            .position(|c| matches!(c.kind, CandidateKind::Loss { drop } if drop == want_drop))
            .unwrap_or(0)
    }
}

/// One targeted-drop run: an `N`-member binomial-pipeline group with
/// recovery and `policy` protection, one `BLOCKS`-block message, and
/// the `target`-th wire transfer dropped (or none). Returns the cluster
/// plus the number of loss sites offered and whether the drop fired.
fn drop_run(policy: ReliabilityPolicy, target: Option<u64>) -> (SimCluster, u64, bool) {
    let sched = Arc::new(Mutex::new(DropNth {
        target,
        seen: 0,
        dropped: false,
    }));
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(N))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default())
        .reliability(policy)
        .scheduler(sched.clone())
        .build();
    cluster.set_loss_choice_budget(1 << 40);
    let group = cluster.create_group(GroupSpec {
        members: (0..N).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(group, BLOCKS * BLOCK);
    cluster.run();
    let guard = sched.lock().expect("scheduler mutex");
    (cluster, guard.seen, guard.dropped)
}

/// The convergence invariant every lossy run must satisfy: survivors
/// quiescent, no RNR timer armed, trace oracle (with its loss/repair
/// rule) clean, and every message delivered at every surviving rank or
/// consistently abandoned.
fn assert_converged(cluster: &SimCluster, ctx: &str) {
    assert!(
        cluster.live_quiescent(),
        "{ctx}: survivors failed to quiesce"
    );
    assert_eq!(
        cluster.fabric().stats().rnr_arms,
        0,
        "{ctx}: an RNR timer armed"
    );
    let oracle = trace::check::check_events(
        &cluster.trace_events(),
        &trace::check::CheckConfig::default(),
    );
    if let Err(violations) = &oracle {
        panic!("{ctx}: trace oracle found violations: {violations:#?}");
    }
    let survivors = cluster.surviving_ranks(0);
    assert!(!survivors.is_empty(), "{ctx}: no survivors");
    let abandoned: Vec<usize> = cluster
        .recovery_stats()
        .reconfigurations
        .iter()
        .flat_map(|r| r.abandoned.iter().copied())
        .collect();
    for r in cluster.message_results() {
        if abandoned.contains(&r.index) {
            continue;
        }
        for &o in &survivors {
            assert!(
                r.delivered_at[o as usize].is_some(),
                "{ctx}: message {} missing at surviving rank {o}",
                r.index
            );
        }
    }
}

/// Full delivery at the *original* membership — the stronger invariant
/// for runs that must repair without escalating.
fn assert_delivered_everywhere(cluster: &SimCluster, ctx: &str) {
    for r in cluster.message_results() {
        for rank in 0..N {
            assert!(
                r.delivered_at[rank].is_some(),
                "{ctx}: message {} missing at rank {rank}",
                r.index
            );
        }
    }
}

fn policies() -> [ReliabilityPolicy; 3] {
    [
        ReliabilityPolicy::selective_ack(),
        ReliabilityPolicy::erasure(2, 1),
        ReliabilityPolicy::wedge_resume(),
    ]
}

/// Wire-level fault counters, for determinism comparison.
fn fault_counters(cluster: &SimCluster) -> (u64, u64) {
    cluster
        .fabric()
        .fault_profile()
        .map(|p| (p.drops(), p.corruptions()))
        .unwrap_or((0, 0))
}

/// Every wire transfer of the multicast dropped exactly once, under
/// every reliability policy. Selective-ack and erasure must repair
/// without any escalation and deliver everywhere; wedge/resume must
/// escalate into a recovery epoch that still converges.
#[test]
fn every_transfer_dropped_once_under_every_policy() {
    for policy in policies() {
        let name = policy.name();
        let (baseline, sites, dropped) = drop_run(policy, None);
        assert!(!dropped);
        assert!(sites > 0, "{name}: no loss sites offered");
        assert_converged(&baseline, &format!("{name} baseline"));
        assert_delivered_everywhere(&baseline, &format!("{name} baseline"));
        assert_eq!(
            baseline.reliability_stats().escalations,
            0,
            "{name} baseline escalated"
        );
        let mut total_repairs = 0u64;
        for site in 0..sites {
            let ctx = format!("{name} drop@{site}/{sites}");
            let (cluster, _, dropped) = drop_run(policy, Some(site));
            assert!(dropped, "{ctx}: target site never offered");
            assert_converged(&cluster, &ctx);
            let stats = cluster.reliability_stats();
            total_repairs += stats.repairs_received + stats.parity_repairs;
            match policy {
                ReliabilityPolicy::WedgeResume { .. } => {
                    // A drop under wedge/resume is an escalation by
                    // definition: the receiver declares the sender
                    // lossy and recovery reconfigures around it.
                    assert_eq!(stats.escalations, 1, "{ctx}: expected one escalation");
                    assert!(
                        !cluster.recovery_stats().reconfigurations.is_empty(),
                        "{ctx}: escalation did not reconfigure"
                    );
                }
                _ => {
                    // A single drop must be absorbed by the policy:
                    // no escalation, everyone delivers.
                    assert_eq!(stats.escalations, 0, "{ctx}: single drop escalated");
                    assert_delivered_everywhere(&cluster, &ctx);
                    assert!(
                        cluster.recovery_stats().reconfigurations.is_empty(),
                        "{ctx}: single drop triggered recovery"
                    );
                }
            }
        }
        if !matches!(policy, ReliabilityPolicy::WedgeResume { .. }) {
            // The sweep is not vacuous: at least one dropped transfer
            // was a data block that needed an actual repair.
            assert!(total_repairs > 0, "{name}: sweep repaired nothing");
        }
    }
}

/// One seeded random-loss run on the WAN-ish fault profile.
fn seeded_lossy_run(
    policy: ReliabilityPolicy,
    seed: u64,
    loss_ppm: u32,
    burst: bool,
    corrupt: bool,
) -> SimCluster {
    let loss = f64::from(loss_ppm) / 1e6;
    let fault = LinkFault {
        loss: if burst { 0.0 } else { loss },
        burst: if burst {
            Some(GilbertElliott::bursty(loss))
        } else {
            None
        },
        corrupt: if corrupt { loss / 4.0 } else { 0.0 },
    };
    let mut profile = FaultProfile::new(seed);
    profile.set_default(fault);
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(N))
        .flight_recorder(trace::Mode::Full)
        .recovery(RecoveryConfig::default())
        .fault_profile(profile)
        .reliability(policy)
        .build();
    let group = cluster.create_group(GroupSpec {
        members: (0..N).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(group, BLOCKS * BLOCK);
    cluster.submit_send(group, 2 * BLOCK);
    cluster.run();
    cluster
}

fn arb_policy() -> impl Strategy<Value = ReliabilityPolicy> {
    prop_oneof![
        Just(ReliabilityPolicy::selective_ack()),
        Just(ReliabilityPolicy::erasure(2, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random seeded loss (uniform or bursty, optionally with
    /// corruption) at rates up to 5%: the protected group always
    /// converges — no hangs, oracle-clean — and the run is bit-for-bit
    /// deterministic.
    #[test]
    fn seeded_loss_always_converges(
        policy in arb_policy(),
        seed in any::<u64>(),
        loss_ppm in prop::sample::select(vec![1_000u32, 10_000, 50_000]),
        burst in any::<bool>(),
        corrupt in any::<bool>(),
    ) {
        let cluster = seeded_lossy_run(policy, seed, loss_ppm, burst, corrupt);
        let ctx = format!(
            "{} seed={seed} loss={loss_ppm}ppm burst={burst} corrupt={corrupt}",
            policy.name()
        );
        assert_converged(&cluster, &ctx);

        // Determinism: an identical rerun reproduces the run exactly.
        let rerun = seeded_lossy_run(policy, seed, loss_ppm, burst, corrupt);
        prop_assert_eq!(cluster.events_fed(), rerun.events_fed());
        prop_assert_eq!(
            cluster.fabric().now().as_nanos(),
            rerun.fabric().now().as_nanos()
        );
        prop_assert_eq!(cluster.reliability_stats(), rerun.reliability_stats());
        prop_assert_eq!(fault_counters(&cluster), fault_counters(&rerun));
    }
}

/// Manual replay hook for proptest counterexamples; see the module doc
/// for the environment variables.
#[test]
#[ignore = "manual replay hook; driven by RDMC_LOSS_* env vars"]
fn replay_from_env() {
    let policy = match std::env::var("RDMC_LOSS_POLICY").as_deref() {
        Ok("erasure") => ReliabilityPolicy::erasure(2, 1),
        Ok("wedge-resume") => ReliabilityPolicy::wedge_resume(),
        _ => ReliabilityPolicy::selective_ack(),
    };
    let seed: u64 = std::env::var("RDMC_LOSS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let loss_ppm: u32 = std::env::var("RDMC_LOSS_PPM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let burst = std::env::var("RDMC_LOSS_BURST").is_ok();
    let corrupt = std::env::var("RDMC_LOSS_CORRUPT").is_ok();
    let cluster = seeded_lossy_run(policy, seed, loss_ppm, burst, corrupt);
    eprintln!(
        "policy={} seed={seed} loss={loss_ppm}ppm burst={burst} corrupt={corrupt}\n\
         events_fed={} now_ns={} stats={:?} faults={:?}",
        policy.name(),
        cluster.events_fed(),
        cluster.fabric().now().as_nanos(),
        cluster.reliability_stats(),
        fault_counters(&cluster),
    );
    assert_converged(&cluster, "replay");
}
