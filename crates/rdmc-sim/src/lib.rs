//! # rdmc-sim — RDMC over simulated RDMA
//!
//! Binds the transport-agnostic `rdmc` protocol engine to the simulated
//! verbs fabric, reproducing the paper's experimental setups under
//! deterministic virtual time:
//!
//! - [`ClusterSpec`] presets for the paper's testbeds (Fractus, Stampede,
//!   Sierra, Apt).
//! - [`ClusterBuilder`]: typed one-shot configuration — recovery, flight
//!   recorder, per-NIC send pacing, completion modes, jitter — producing a
//!   [`SimCluster`]: multiple (possibly overlapping) RDMC groups over one
//!   fabric, timed message injection, crash injection, and per-message
//!   completion records filed under [`MessageId`] handles.
//! - [`ClusterBuilder::recovery`]: the §2.4 external membership
//!   service — epoch-based reconfiguration of wedged groups with
//!   block-wise resumption of interrupted multicasts, instrumented by
//!   [`RecoveryStats`].
//! - [`ClusterBuilder::pacing`]: the multi-tenant admission layer — a
//!   bound on each NIC's concurrent outbound block sends plus a
//!   [`PacingPolicy`] ordering the queued sends of overlapping groups.
//! - [`ClusterBuilder::atomic`]: the Derecho-style atomic multicast
//!   overlay — one RDMC subgroup per sender (rotated member lists),
//!   SST stability frontiers, and total-order delivery logs identical
//!   at every member (see [`SimCluster::atomic_log`]).
//! - [`run_single_multicast`] and friends: the one-line harnesses the
//!   benchmark suite sweeps.
//!
//! ## Example
//!
//! ```
//! use rdmc::Algorithm;
//! use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
//!
//! // 4 Fractus nodes, one group, one 8 MB multicast over the binomial
//! // pipeline with 1 MB blocks.
//! let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4)).build();
//! let group = cluster.create_group(GroupSpec {
//!     members: vec![0, 1, 2, 3],
//!     algorithm: Algorithm::BinomialPipeline,
//!     block_size: 1 << 20,
//!     ready_window: 2,
//!     max_outstanding_sends: 2,
//! });
//! let id = cluster.submit_send(group, 8 << 20);
//! cluster.run();
//! let result = cluster.result(id).expect("submitted");
//! let latency = result.latency().expect("all members delivered");
//! assert!(latency.as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod builder;
mod cluster;
mod experiment;
mod offload;
mod pacer;
mod profiles;
mod reliability;

pub use atomic::{AtomicDelivery, AtomicGroupId};
pub use builder::ClusterBuilder;
pub use cluster::{
    Cluster, DetectionRecord, EngineLogEntry, GroupId, GroupSpec, MessageId, MessageResult,
    Mutation, ReconfigRecord, RecoveryConfig, RecoveryStats, SimCluster, TraceKind, TraceRecord,
};
pub use experiment::{
    run_concurrent_overlapping, run_open_loop, run_open_loop_with, run_single_multicast,
    run_stream, run_traced_multicast, wire_model_for, GroupLoadReport, MulticastOutcome,
    OpenLoopArrival, OpenLoopOutcome,
};
pub use offload::run_offloaded_chain;
pub use pacer::{PacerConfig, PacingPolicy, PacingStats};
pub use profiles::{ClusterSpec, TopoSpec};
pub use reliability::{ReliabilityPolicy, ReliabilityStats, RetryConfig};
