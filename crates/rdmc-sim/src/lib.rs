//! # rdmc-sim — RDMC over simulated RDMA
//!
//! Binds the transport-agnostic `rdmc` protocol engine to the simulated
//! verbs fabric, reproducing the paper's experimental setups under
//! deterministic virtual time:
//!
//! - [`ClusterSpec`] presets for the paper's testbeds (Fractus, Stampede,
//!   Sierra, Apt).
//! - [`SimCluster`]: multiple (possibly overlapping) RDMC groups over one
//!   fabric, timed message injection, crash injection, jitter injection,
//!   protocol tracing, and per-message completion records.
//! - [`SimCluster::enable_recovery`]: the §2.4 external membership
//!   service — epoch-based reconfiguration of wedged groups with
//!   block-wise resumption of interrupted multicasts, instrumented by
//!   [`RecoveryStats`].
//! - [`run_single_multicast`] and friends: the one-line harnesses the
//!   benchmark suite sweeps.
//!
//! ## Example
//!
//! ```
//! use rdmc::Algorithm;
//! use rdmc_sim::{ClusterSpec, GroupSpec, SimCluster};
//!
//! // 4 Fractus nodes, one group, one 8 MB multicast over the binomial
//! // pipeline with 1 MB blocks.
//! let mut cluster = SimCluster::new(ClusterSpec::fractus(4).build());
//! let group = cluster.create_group(GroupSpec {
//!     members: vec![0, 1, 2, 3],
//!     algorithm: Algorithm::BinomialPipeline,
//!     block_size: 1 << 20,
//!     ready_window: 2,
//!     max_outstanding_sends: 2,
//! });
//! cluster.submit_send(group, 8 << 20);
//! cluster.run();
//! let results = cluster.message_results();
//! let latency = results[0].latency().expect("all members delivered");
//! assert!(latency.as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod experiment;
mod offload;
mod profiles;

pub use cluster::{
    DetectionRecord, GroupId, GroupSpec, MessageResult, ReconfigRecord, RecoveryConfig,
    RecoveryStats, SimCluster, TraceKind, TraceRecord,
};
pub use experiment::{
    run_concurrent_overlapping, run_single_multicast, run_stream, run_traced_multicast,
    wire_model_for, MulticastOutcome,
};
pub use offload::run_offloaded_chain;
pub use profiles::{ClusterSpec, TopoSpec};
