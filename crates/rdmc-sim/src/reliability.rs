//! Per-group reliability policies for lossy fabrics.
//!
//! RDMC proper assumes a lossless network (§2.2): a dropped block either
//! hangs the transfer or breaks the connection. This module supplies the
//! *software-defined reliability* layer that SDR-RDMA argues belongs
//! above the transport: when a group is configured with a
//! [`ReliabilityPolicy`], every block send carries a per-connection
//! sequence number in its immediate (packed by
//! [`trace::check::wire::pack_imm`]), receivers reorder and gap-detect,
//! and missing blocks are recovered by the policy:
//!
//! - [`ReliabilityPolicy::SelectiveAck`] — receivers NACK detected gaps
//!   (tiny control writes on the reliable side channel); senders
//!   retransmit exactly the missing blocks as one-sided writes. Each
//!   interior loss costs about one round trip; a retry timer with
//!   exponential backoff re-NACKs when repairs are themselves lost.
//! - [`ReliabilityPolicy::ErasureCode`] — senders close every `data`
//!   consecutive blocks on a connection into a *generation* and follow
//!   it with `parity` parity writes; a receiver missing at most as many
//!   blocks as it has parity for reconstructs locally, without paying
//!   the retransmission round trip (the WAN story). NACK retransmission
//!   remains as the fallback for losses beyond the code's budget.
//! - [`ReliabilityPolicy::WedgeResume`] — no repair at all: the first
//!   detected loss escalates straight to the epoch-recovery path.
//!
//! Whatever the policy, a receiver whose retry budget is exhausted
//! *escalates*: it records [`trace::EventKind::LossEscalated`], feeds
//! `PeerFailed` into its engine, and lets the membership service resume
//! the transfer in a new epoch — no configuration hangs.
//!
//! Trailing losses (the last blocks of a burst, with no later arrival to
//! reveal the gap) are covered by a sender-side *probe*: after a quiet
//! period the sender announces its send frontier on the reliable side
//! channel, and the receiver NACKs (or escalates on) anything missing
//! below it. Control traffic — NACKs, probes — rides the fabric's
//! tiny-write bypass and is never subject to the fault model; block
//! retransmissions and parity are full-size writes and remain lossy.
//!
//! Groups without a policy are untouched: block immediates stay the raw
//! total size and no per-connection state exists, so lossless runs are
//! bit-for-bit identical to a build without this module.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use simnet::SimDuration;

/// Retry knobs shared by the repairing policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Base receiver retry timeout: when known-missing blocks stay
    /// missing this long, the receiver re-NACKs. Doubled per attempt
    /// (capped). Must comfortably exceed the path round trip.
    pub rto: SimDuration,
    /// Re-NACK rounds before the receiver gives up and escalates to
    /// epoch recovery.
    pub budget: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        // WAN-safe: geo links in the bench run at 50 ms one-way, so the
        // repair round trip is ~100 ms plus transfer time. Virtual time
        // is free, so a generous default costs LAN runs nothing.
        RetryConfig {
            rto: SimDuration::from_millis(250),
            budget: 6,
        }
    }
}

/// How a group recovers blocks the fabric loses (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReliabilityPolicy {
    /// NACK-driven selective retransmission.
    SelectiveAck {
        /// Retry timing and budget.
        retry: RetryConfig,
    },
    /// `data`-blocks-per-generation erasure coding with `parity` parity
    /// writes per generation, NACK retransmission as the fallback.
    ///
    /// Keep `data < ready_window`: the sender's credit window must span
    /// a whole generation, or a mid-generation loss stalls the sender
    /// before the generation closes and recovery waits for the
    /// quiet-period parity flush instead of completing inline.
    ErasureCode {
        /// Data blocks per generation (k).
        data: u32,
        /// Parity writes per generation (r): up to `r` losses per
        /// generation reconstruct without a retransmission round trip.
        parity: u32,
        /// Retry timing and budget for the NACK fallback.
        retry: RetryConfig,
    },
    /// No repair: the first detected loss escalates to epoch recovery
    /// (or wedges the group when recovery is off).
    WedgeResume {
        /// Quiet period before the sender probes its send frontier (the
        /// trailing-loss detector).
        probe: SimDuration,
    },
}

impl ReliabilityPolicy {
    /// Selective-ack retransmission with default retry knobs.
    pub fn selective_ack() -> Self {
        ReliabilityPolicy::SelectiveAck {
            retry: RetryConfig::default(),
        }
    }

    /// Erasure coding: `data` blocks per generation, `parity` parity
    /// writes, default retry knobs for the NACK fallback.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `parity` is zero.
    pub fn erasure(data: u32, parity: u32) -> Self {
        assert!(data >= 1, "erasure generation needs at least one block");
        assert!(parity >= 1, "erasure coding needs at least one parity");
        ReliabilityPolicy::ErasureCode {
            data,
            parity,
            retry: RetryConfig::default(),
        }
    }

    /// Escalate-on-first-loss with the default probe period.
    pub fn wedge_resume() -> Self {
        ReliabilityPolicy::WedgeResume {
            probe: SimDuration::from_millis(250),
        }
    }

    /// Short label for reports and bench tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReliabilityPolicy::SelectiveAck { .. } => "selective-ack",
            ReliabilityPolicy::ErasureCode { .. } => "erasure",
            ReliabilityPolicy::WedgeResume { .. } => "wedge-resume",
        }
    }

    /// The retry knobs (wedge-resume: zero budget, so any retry attempt
    /// escalates).
    pub(crate) fn retry(&self) -> RetryConfig {
        match *self {
            ReliabilityPolicy::SelectiveAck { retry }
            | ReliabilityPolicy::ErasureCode { retry, .. } => retry,
            ReliabilityPolicy::WedgeResume { probe } => RetryConfig {
                rto: probe,
                budget: 0,
            },
        }
    }

    /// Sender quiet period before the trailing-loss frontier probe.
    pub(crate) fn probe_delay(&self) -> SimDuration {
        match *self {
            ReliabilityPolicy::WedgeResume { probe } => probe,
            _ => {
                let rto = self.retry().rto;
                SimDuration::from_nanos(rto.as_nanos().saturating_mul(2))
            }
        }
    }
}

/// Counters of everything the reliability layer did (cluster-wide).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Gap-repair requests sent (one per contiguous missing range).
    pub nacks_sent: u64,
    /// Blocks retransmitted by senders (NACK responses).
    pub repairs_sent: u64,
    /// Retransmitted blocks that arrived at receivers.
    pub repairs_received: u64,
    /// Parity writes emitted by erasure-coding senders.
    pub parity_writes_sent: u64,
    /// Missing blocks reconstructed from parity, no retransmission.
    pub parity_repairs: u64,
    /// Frontier probes sent after sender quiet periods.
    pub probes_sent: u64,
    /// Duplicate arrivals discarded (late repairs racing re-NACKs).
    pub duplicates: u64,
    /// Receivers that exhausted their retry budget and escalated.
    pub escalations: u64,
}

/// Sender-side per-connection state (keyed by the sender's local
/// [`verbs::QpHandle`]; dies with the queue pair at epoch teardown).
#[derive(Default)]
pub(crate) struct RelSendState {
    /// Next block sequence number on this connection.
    pub(crate) next_seq: u64,
    /// Everything sent, for retransmission: seq -> (length, imm total).
    /// Never pruned — the protocol is NACK-only, so no acknowledgement
    /// ever licenses forgetting (a real implementation would piggyback
    /// cumulative acks on the credit channel; entries are 24 bytes and
    /// simulated runs are finite).
    pub(crate) ledger: BTreeMap<u64, (u64, u64)>,
    /// Open erasure generation: (seq, length, imm total) per data block.
    pub(crate) gen_slots: Vec<(u64, u64, u64)>,
    /// Next erasure generation id.
    pub(crate) next_gen: u64,
    /// When the last block was posted (virtual ns), for the quiet-period
    /// probe.
    pub(crate) last_post_ns: u64,
    /// A probe timer is outstanding.
    pub(crate) probe_armed: bool,
    /// Send frontier already announced by a probe.
    pub(crate) probed_upto: u64,
}

/// One erasure generation as seen by the receiver.
pub(crate) struct ParityGen {
    /// Parity writes that arrived for this generation.
    pub(crate) received: u32,
    /// The data blocks the generation covers: (seq, imm total).
    pub(crate) slots: Vec<(u64, u64)>,
}

/// Receiver-side per-connection state (keyed by the receiver's local
/// [`verbs::QpHandle`]).
#[derive(Default)]
pub(crate) struct RelRecvState {
    /// Next sequence the engine will be fed (FIFO hole frontier).
    pub(crate) next_expected: u64,
    /// Arrived out of order, waiting for the hole to fill: seq -> total.
    pub(crate) buffered: BTreeMap<u64, u64>,
    /// Known-missing sequences awaiting repair.
    pub(crate) missing: BTreeSet<u64>,
    /// A retry (re-NACK) timer is outstanding.
    pub(crate) rto_armed: bool,
    /// Re-NACK rounds spent on the current hole set.
    pub(crate) rto_attempt: u32,
    /// Erasure generations with outstanding parity bookkeeping.
    pub(crate) parity: BTreeMap<u64, ParityGen>,
    /// This connection already escalated; suppress further repair.
    pub(crate) escalated: bool,
}

// ---- control-channel payload codecs -----------------------------------
//
// All control payloads ride one-sided writes. NACKs and probes must stay
// under the fabric's tiny-write bypass threshold (256 bytes) so they are
// never themselves lost; repairs and parity are padded to block size so
// they cost honest bandwidth and remain subject to the fault model.

/// Encodes a NACK for the contiguous missing range `[base, base+span)`.
pub(crate) fn encode_nack(base: u64, span: u32) -> Bytes {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&base.to_le_bytes());
    buf.extend_from_slice(&span.to_le_bytes());
    Bytes::from(buf)
}

/// Decodes a NACK payload; `None` on a malformed length.
pub(crate) fn decode_nack(payload: &[u8]) -> Option<(u64, u32)> {
    let base = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let span = u32::from_le_bytes(payload.get(8..12)?.try_into().ok()?);
    Some((base, span))
}

/// Encodes a block retransmission: 24-byte header (seq, imm total,
/// block length) padded to the block's full length so the repair costs
/// the bandwidth the original did.
pub(crate) fn encode_repair(seq: u64, total: u64, len: u64) -> Bytes {
    let wire_len = (len as usize).max(24);
    let mut buf = vec![0u8; wire_len];
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..16].copy_from_slice(&total.to_le_bytes());
    buf[16..24].copy_from_slice(&len.to_le_bytes());
    Bytes::from(buf)
}

/// Decodes a retransmission header; `None` on a malformed length.
pub(crate) fn decode_repair(payload: &[u8]) -> Option<(u64, u64)> {
    let seq = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let total = u64::from_le_bytes(payload.get(8..16)?.try_into().ok()?);
    Some((seq, total))
}

/// Encodes one parity write: generation id, the covered slots, padded
/// to the generation's largest block (a real Reed–Solomon parity block
/// is block-sized).
pub(crate) fn encode_parity(gen: u64, slots: &[(u64, u64)], pad: u64) -> Bytes {
    let header = 16 + 16 * slots.len();
    let wire_len = header.max(pad as usize);
    let mut buf = vec![0u8; wire_len];
    buf[..8].copy_from_slice(&gen.to_le_bytes());
    buf[8..16].copy_from_slice(&(slots.len() as u64).to_le_bytes());
    for (i, &(seq, total)) in slots.iter().enumerate() {
        let at = 16 + 16 * i;
        buf[at..at + 8].copy_from_slice(&seq.to_le_bytes());
        buf[at + 8..at + 16].copy_from_slice(&total.to_le_bytes());
    }
    Bytes::from(buf)
}

/// Decodes a parity header; `None` on a malformed length.
pub(crate) fn decode_parity(payload: &[u8]) -> Option<(u64, Vec<(u64, u64)>)> {
    let gen = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let count = u64::from_le_bytes(payload.get(8..16)?.try_into().ok()?) as usize;
    let mut slots = Vec::with_capacity(count);
    for i in 0..count {
        let at = 16 + 16 * i;
        let seq = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
        let total = u64::from_le_bytes(payload.get(at + 8..at + 16)?.try_into().ok()?);
        slots.push((seq, total));
    }
    Some((gen, slots))
}

/// Encodes a frontier probe (the sender's `next_seq`).
pub(crate) fn encode_probe(frontier: u64) -> Bytes {
    Bytes::copy_from_slice(&frontier.to_le_bytes())
}

/// Decodes a frontier probe; `None` on a malformed length.
pub(crate) fn decode_probe(payload: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(payload.get(..8)?.try_into().ok()?))
}

/// Collapses a sorted sequence list into contiguous `(base, span)`
/// ranges, one NACK each.
pub(crate) fn contiguous_ranges(seqs: &[u64]) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    for &s in seqs {
        match out.last_mut() {
            Some((base, span)) if *base + u64::from(*span) == s => *span += 1,
            _ => out.push((s, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_codec_roundtrip_and_is_tiny() {
        let b = encode_nack(42, 7);
        assert!(b.len() <= 256, "NACKs must ride the reliable bypass");
        assert_eq!(decode_nack(&b), Some((42, 7)));
        assert_eq!(decode_nack(&b[..5]), None);
    }

    #[test]
    fn repair_codec_pads_to_block_length() {
        let b = encode_repair(9, 1 << 20, 65536);
        assert_eq!(b.len(), 65536);
        assert_eq!(decode_repair(&b), Some((9, 1 << 20)));
        // Tiny blocks still carry the full header.
        assert_eq!(encode_repair(0, 10, 10).len(), 24);
    }

    #[test]
    fn parity_codec_roundtrip() {
        let slots = vec![(4, 1000), (5, 1000), (6, 1000)];
        let b = encode_parity(2, &slots, 65536);
        assert_eq!(b.len(), 65536);
        assert_eq!(decode_parity(&b), Some((2, slots)));
        assert_eq!(decode_parity(&b[..20]), None);
    }

    #[test]
    fn probe_codec_roundtrip() {
        let b = encode_probe(123);
        assert!(b.len() <= 256);
        assert_eq!(decode_probe(&b), Some(123));
    }

    #[test]
    fn ranges_collapse_contiguous_runs() {
        assert_eq!(
            contiguous_ranges(&[1, 2, 3, 7, 9, 10]),
            vec![(1, 3), (7, 1), (9, 2)]
        );
        assert!(contiguous_ranges(&[]).is_empty());
    }

    #[test]
    fn policy_presets() {
        assert_eq!(ReliabilityPolicy::selective_ack().name(), "selective-ack");
        let ec = ReliabilityPolicy::erasure(4, 2);
        assert_eq!(ec.name(), "erasure");
        assert_eq!(ec.retry(), RetryConfig::default());
        let wr = ReliabilityPolicy::wedge_resume();
        assert_eq!(wr.retry().budget, 0);
        // Probe waits two RTOs for the repairing policies.
        assert_eq!(
            ReliabilityPolicy::selective_ack().probe_delay().as_nanos(),
            RetryConfig::default().rto.as_nanos() * 2
        );
    }

    #[test]
    #[should_panic(expected = "parity")]
    fn erasure_rejects_zero_parity() {
        let _ = ReliabilityPolicy::erasure(4, 0);
    }
}
