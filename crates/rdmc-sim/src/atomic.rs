//! Data model of the Derecho-style **atomic multicast** overlay.
//!
//! RDMC groups have one sender (rank 0). Derecho turns that into a
//! multi-sender atomic multicast by creating *one RDMC subgroup per
//! sender*, each with the member list rotated so that sender sits at
//! rank 0, and interleaving the senders' messages round-robin into a
//! single global **slot** sequence: slot `s` belongs to member
//! `s mod n`. Every member delivers slots in slot order, which makes
//! the delivery sequence identical at every member by construction —
//! the only question is *when* a slot may be delivered.
//!
//! That question is answered by per-sender **received frontiers** in
//! SST rows ([`sst::ViewTracker::with_frontiers`]): member `i`
//! publishes, for every sender `j`, how many of `j`'s slots it has
//! resolved (received via RDMC, or learned to be *null*). The minimum
//! over live rows is the **stability frontier**: once every live member
//! holds a slot, delivering it can never be undone by a failure, so the
//! delivery engine releases it. A sender with nothing to say fills its
//! slot with a *null* that is announced purely through the sender's own
//! frontier row — no data multicast at all (Spindle's null-send
//! elision).
//!
//! On a view change the overlay applies the **ragged trim**: slots that
//! the failed sender's subgroup had to abandon (no survivor can
//! complete them) and nulls the failed sender never announced to anyone
//! are trimmed from the sequence at every survivor, so all survivors
//! converge on identical gapless delivery prefixes. Stability is what
//! makes the trim safe — a slot delivered anywhere was stable, stable
//! slots are fully replicated, and fully replicated slots are never
//! abandoned.
//!
//! This module holds the overlay's data types; the driver logic lives
//! in `cluster.rs` (the `impl SimCluster` overlay block), mirroring how
//! the reliability shim splits codec/state from orchestration.

use std::collections::BTreeSet;

use simnet::SimTime;
use sst::ViewTracker;

use crate::cluster::{GroupId, MessageId};

/// Identifies an atomic (multi-sender) group within a
/// [`SimCluster`](crate::SimCluster), as returned by
/// [`SimCluster::create_atomic_group`](crate::SimCluster::create_atomic_group).
pub type AtomicGroupId = usize;

/// One total-order delivery upcall at one member of an atomic group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtomicDelivery {
    /// Global slot number — the message's total-order position. Every
    /// member's log carries the same `(slot, sender, seq, size)`
    /// sequence; only `at` differs.
    pub slot: u64,
    /// Member index (in the unrotated member list) that sent it.
    pub sender: u32,
    /// Index among the sender's own submissions (its per-sender
    /// sequence number).
    pub seq: u64,
    /// Message size in bytes.
    pub size: u64,
    /// Virtual time of the upcall at this member.
    pub at: SimTime,
    /// Handle of the underlying RDMC message
    /// ([`SimCluster::result`](crate::SimCluster::result) resolves it).
    pub message: MessageId,
}

/// What one slot of the global sequence carries.
pub(crate) enum SlotKind {
    /// A real message, multicast on the owner's subgroup.
    Data {
        /// Message index within the owner's subgroup (submission order).
        index: usize,
        /// Message size in bytes.
        size: u64,
        /// The handle its completion record is filed under.
        message: MessageId,
    },
    /// The owner had nothing to send: announced via the owner's own
    /// frontier row, never multicast.
    Null,
}

/// One slot of the global total-order sequence.
pub(crate) struct Slot {
    /// Member index that owns the slot (`slot mod n` over live members).
    pub(crate) owner: usize,
    /// Index among the owner's slots (dense per owner).
    pub(crate) seq: u64,
    pub(crate) kind: SlotKind,
    /// Ragged-trimmed on a view change: skipped by every survivor.
    pub(crate) trimmed: bool,
}

/// Per-member overlay state.
pub(crate) struct AtomicMember {
    /// This member's SST replica: row `r` is member `r`'s published
    /// per-sender received frontiers.
    pub(crate) tracker: ViewTracker,
    /// Next slot index the delivery engine will examine.
    pub(crate) next_deliver: usize,
    /// Last stability frontier announced (and traced) per sender;
    /// delivery gates on this recorded value so the `StableFrontier`
    /// trace event always precedes the `AtomicDelivered` it justifies.
    pub(crate) stable_seen: Vec<u64>,
    /// The total-order delivery log.
    pub(crate) log: Vec<AtomicDelivery>,
}

/// One atomic group's runtime state.
pub(crate) struct AtomicRuntime {
    /// Fabric node of each member, in the unrotated declaration order;
    /// member index `i` herein is the canonical identity used in slots,
    /// frontiers, and trace scopes.
    pub(crate) nodes: Vec<usize>,
    /// `subgroups[j]`: the RDMC subgroup rooted at member `j` (its
    /// member list is `nodes` rotated left by `j`). `subgroups[0]` is
    /// the *anchor* — frontier epidemics run on its connections and its
    /// id names the group in trace scopes.
    pub(crate) subgroups: Vec<GroupId>,
    /// The global slot sequence, in submission order.
    pub(crate) slots: Vec<Slot>,
    /// Per member: how many slots it owns so far (the next `seq`).
    pub(crate) owned: Vec<u64>,
    pub(crate) members: Vec<AtomicMember>,
    /// Member indices evicted by a view change; their rows no longer
    /// count toward stability minima.
    pub(crate) dead: BTreeSet<usize>,
    /// Round-robin rotation cursor: the member index owning the next
    /// slot (advanced past dead members at submission time).
    pub(crate) cursor: usize,
}

impl AtomicRuntime {
    /// The live member indices, ascending — the rows stability minima
    /// run over.
    pub(crate) fn live_rows(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|r| !self.dead.contains(&(*r as usize)))
            .collect()
    }

    /// First live member at or after `from` in rotation order, or
    /// `None` if everyone is dead.
    pub(crate) fn next_live_owner(&self, from: usize) -> Option<usize> {
        let n = self.nodes.len();
        (0..n)
            .map(|k| (from + k) % n)
            .find(|m| !self.dead.contains(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(n: usize) -> AtomicRuntime {
        AtomicRuntime {
            nodes: (0..n).collect(),
            subgroups: (0..n).collect(),
            slots: Vec::new(),
            owned: vec![0; n],
            members: (0..n)
                .map(|i| AtomicMember {
                    tracker: ViewTracker::with_frontiers(i as u32, n as u32, n as u32),
                    next_deliver: 0,
                    stable_seen: vec![0; n],
                    log: Vec::new(),
                })
                .collect(),
            dead: BTreeSet::new(),
            cursor: 0,
        }
    }

    #[test]
    fn rotation_skips_dead_members() {
        let mut a = runtime(4);
        assert_eq!(a.next_live_owner(2), Some(2));
        a.dead.insert(2);
        assert_eq!(a.next_live_owner(2), Some(3));
        a.dead.insert(3);
        assert_eq!(a.next_live_owner(2), Some(0), "wraps past the dead tail");
        assert_eq!(a.live_rows(), vec![0, 1]);
    }

    #[test]
    fn extinct_group_has_no_owner() {
        let mut a = runtime(2);
        a.dead.insert(0);
        a.dead.insert(1);
        assert_eq!(a.next_live_owner(0), None);
        assert!(a.live_rows().is_empty());
    }
}
