//! One-line experiment harnesses over [`crate::SimCluster`], shared by
//! the test suite and the figure-regenerating benchmarks.

use rdmc::Algorithm;
use simnet::{SimDuration, SimTime};

use crate::{ClusterBuilder, ClusterSpec, GroupSpec, PacerConfig, PacingStats, TopoSpec};

/// Outcome of a single multicast run.
#[derive(Clone, Debug)]
pub struct MulticastOutcome {
    /// Message size in bytes.
    pub size: u64,
    /// Group size including the sender.
    pub group_size: usize,
    /// Time from submit until every member's completion upcall.
    pub latency: SimDuration,
    /// `size / latency` in Gb/s (the paper's bandwidth metric, §5.1).
    pub bandwidth_gbps: f64,
}

/// Runs one multicast of `size` bytes to a fresh group of `group_size`
/// nodes on `spec`'s cluster, returning its latency/bandwidth.
///
/// # Panics
///
/// Panics if the cluster is smaller than the group or the transfer fails
/// to complete (which would be a protocol bug).
pub fn run_single_multicast(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
) -> MulticastOutcome {
    assert!(
        group_size <= spec.topology.nodes(),
        "group larger than cluster"
    );
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let latency = result
        .latency()
        .expect("multicast did not complete at every member");
    MulticastOutcome {
        size,
        group_size,
        latency,
        bandwidth_gbps: result.bandwidth_gbps().expect("nonzero latency"),
    }
}

/// The [`trace::stall::WireModel`] matching a cluster's calibration:
/// host NIC rate (the slowest NIC on per-node topologies), one-hop
/// latency, and the fabric's fixed per-operation overhead.
pub fn wire_model_for(spec: &ClusterSpec) -> trace::stall::WireModel {
    let (gbps, latency) = match &spec.topology {
        TopoSpec::Flat { gbps, latency, .. } => (*gbps, *latency),
        TopoSpec::FlatPerNode { gbps, latency } => {
            (gbps.iter().copied().fold(f64::INFINITY, f64::min), *latency)
        }
        TopoSpec::Tor {
            host_gbps, latency, ..
        } => (*host_gbps, *latency),
        TopoSpec::FatTree {
            host_gbps, latency, ..
        } => (*host_gbps, *latency),
        // Intra-site numbers: the stall model reasons about the fast
        // local hops; WAN crossings dwarf it and show up as genuine
        // stalls, which is the point.
        TopoSpec::MultiDatacenter {
            host_gbps,
            lan_latency,
            ..
        } => (*host_gbps, *lan_latency),
    };
    trace::stall::WireModel {
        gbps,
        latency_ns: latency.as_nanos(),
        nic_op_ns: spec.fabric.nic_op_overhead.as_nanos(),
    }
}

/// Like [`run_single_multicast`], but with a full-capture flight
/// recorder attached for the whole run. Returns the outcome, the
/// recorded event stream, and the cluster's wire model so callers can
/// feed [`trace::stall::attribute`] directly.
///
/// # Panics
///
/// Panics under the same conditions as [`run_single_multicast`].
pub fn run_traced_multicast(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
) -> (
    MulticastOutcome,
    Vec<trace::TraceEvent>,
    trace::stall::WireModel,
) {
    assert!(
        group_size <= spec.topology.nodes(),
        "group larger than cluster"
    );
    let mut cluster = ClusterBuilder::new(spec.clone())
        .flight_recorder(trace::Mode::Full)
        .build();
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let latency = result
        .latency()
        .expect("multicast did not complete at every member");
    let outcome = MulticastOutcome {
        size,
        group_size,
        latency,
        bandwidth_gbps: result.bandwidth_gbps().expect("nonzero latency"),
    };
    (outcome, recorder.events(), wire_model_for(spec))
}

/// Runs a back-to-back stream of `count` equal-size messages on one group
/// and returns the aggregate bandwidth in Gb/s (total bytes over total
/// time), plus per-message latencies.
pub fn run_stream(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
    count: usize,
) -> (f64, Vec<SimDuration>) {
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    for _ in 0..count {
        cluster.submit_send(group, size);
    }
    cluster.run();
    let results = cluster.message_results();
    let latencies: Vec<SimDuration> = results
        .iter()
        .map(|r| r.latency().expect("message completed"))
        .collect();
    let total_end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten())
        .max()
        .copied()
        .expect("at least one delivery");
    let elapsed = total_end.since(results[0].submitted).as_secs_f64();
    let aggregate = (size as f64 * count as f64 * 8.0) / elapsed / 1e9;
    (aggregate, latencies)
}

/// One offered message of an open-loop schedule ([`run_open_loop`]):
/// `group_index` indexes the harness's membership list, not a live
/// [`crate::GroupId`].
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopArrival {
    /// Virtual-time nanosecond the application submits the message.
    pub at_ns: u64,
    /// Which group (tenant) the message belongs to.
    pub group_index: usize,
    /// Message size in bytes.
    pub size: u64,
}

/// What [`run_open_loop`] measured for one group.
#[derive(Clone, Debug)]
pub struct GroupLoadReport {
    /// Index into the membership list the harness was given.
    pub group_index: usize,
    /// Submit-to-last-delivery latency of each of the group's messages,
    /// in submission order.
    pub latencies: Vec<SimDuration>,
    /// Bytes the group's messages carried.
    pub bytes: u64,
    /// Stall split of every block send the group moved (traced runs
    /// only).
    pub stall: Option<trace::stall::GroupStall>,
}

/// Outcome of one open-loop run across all groups.
#[derive(Clone, Debug)]
pub struct OpenLoopOutcome {
    /// Per-group reports, in membership-list order.
    pub per_group: Vec<GroupLoadReport>,
    /// First submit to last delivery.
    pub span: SimDuration,
    /// Admission-layer counters, when the run was paced.
    pub pacing: Option<PacingStats>,
    /// Times the RNR retry machinery armed during the run; the
    /// ready-for-block discipline means this must be zero (§4.2).
    pub rnr_arms: u64,
}

impl OpenLoopOutcome {
    /// Every message latency across all groups (unsorted).
    pub fn all_latencies(&self) -> Vec<SimDuration> {
        self.per_group
            .iter()
            .flat_map(|g| g.latencies.iter().copied())
            .collect()
    }

    /// Goodput over the whole run: every delivered payload byte,
    /// counted once per group (not per replica), over the span.
    pub fn aggregate_gbps(&self) -> f64 {
        let bytes: u64 = self.per_group.iter().map(|g| g.bytes).sum();
        let secs = self.span.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        bytes as f64 * 8.0 / secs / 1e9
    }
}

/// Drives a multi-tenant steady state: one RDMC group per membership
/// set, fed by a pre-computed open-loop arrival schedule
/// ([`crate::SimCluster::schedule_send_at`] keeps the offered timing
/// independent of delivery progress). `pacing` bounds each NIC's
/// concurrent outbound block sends; `traced` attaches a full-capture
/// flight recorder and returns a per-group stall split.
///
/// # Panics
///
/// Panics if a membership set does not fit the cluster, an arrival
/// references a missing group, or a message never completes (open-loop
/// schedules are finite, so every message must eventually deliver).
pub fn run_open_loop(
    spec: &ClusterSpec,
    memberships: &[Vec<usize>],
    arrivals: &[OpenLoopArrival],
    block_size: u64,
    pacing: Option<PacerConfig>,
    traced: bool,
) -> OpenLoopOutcome {
    run_open_loop_with(
        spec,
        memberships,
        arrivals,
        block_size,
        pacing,
        traced,
        false,
    )
}

/// [`run_open_loop`] with the kernel's flow-set interning switched on —
/// the configuration the datacenter-scale benchmark runs, where the
/// multicast groups put many flows on identical paths
/// ([`ClusterBuilder::intern_paths`]).
#[allow(clippy::too_many_arguments)]
pub fn run_open_loop_with(
    spec: &ClusterSpec,
    memberships: &[Vec<usize>],
    arrivals: &[OpenLoopArrival],
    block_size: u64,
    pacing: Option<PacerConfig>,
    traced: bool,
    intern_paths: bool,
) -> OpenLoopOutcome {
    let mut builder = ClusterBuilder::new(spec.clone());
    if intern_paths {
        builder = builder.intern_paths();
    }
    if let Some(config) = pacing {
        builder = builder.pacing(config);
    }
    if traced {
        builder = builder.flight_recorder(trace::Mode::Full);
    }
    let mut cluster = builder.build();
    let recorder = cluster.recorder().clone();
    let groups: Vec<_> = memberships
        .iter()
        .map(|members| {
            assert!(
                members.iter().all(|&m| m < spec.topology.nodes()),
                "membership {members:?} does not fit the cluster"
            );
            cluster.create_group(GroupSpec {
                members: members.clone(),
                algorithm: Algorithm::BinomialPipeline,
                block_size,
                ready_window: 6,
                max_outstanding_sends: 6,
            })
        })
        .collect();
    for a in arrivals {
        cluster.schedule_send_at(groups[a.group_index], SimTime::from_nanos(a.at_ns), a.size);
    }
    cluster.run();

    let rollup =
        traced.then(|| trace::stall::rollup_by_group(&recorder.events(), &wire_model_for(spec)));
    let mut per_group: Vec<GroupLoadReport> = groups
        .iter()
        .enumerate()
        .map(|(i, &g)| GroupLoadReport {
            group_index: i,
            latencies: Vec::new(),
            bytes: 0,
            stall: rollup
                .as_ref()
                .map(|r| r.get(&(g as u32)).copied().unwrap_or_default()),
        })
        .collect();
    let mut first_submit = None;
    let mut last_delivery = None;
    for r in cluster.message_results() {
        let latency = r
            .latency()
            .unwrap_or_else(|| panic!("message {}/{} never completed", r.group, r.index));
        let i = groups
            .iter()
            .position(|&g| g == r.group)
            .expect("result for a group this run created");
        per_group[i].latencies.push(latency);
        per_group[i].bytes += r.size;
        first_submit = Some(first_submit.map_or(r.submitted, |t: SimTime| t.min(r.submitted)));
        let done = r.delivered_at.iter().flatten().max().copied();
        last_delivery = last_delivery.max(done);
    }
    let span = match (first_submit, last_delivery) {
        (Some(a), Some(b)) => b.since(a),
        _ => SimDuration::ZERO,
    };
    OpenLoopOutcome {
        per_group,
        span,
        pacing: cluster.pacing_stats(),
        rnr_arms: cluster.fabric().stats().rnr_arms,
    }
}

/// The paper's Fig. 10 pattern: `senders` groups with *identical
/// membership* (`group_size` nodes) but distinct roots, each root streaming
/// `per_sender_bytes` in `message_size` messages concurrently. Returns the
/// aggregate bandwidth in Gb/s over total bytes moved.
pub fn run_concurrent_overlapping(
    spec: &ClusterSpec,
    group_size: usize,
    senders: usize,
    algorithm: Algorithm,
    message_size: u64,
    messages_per_sender: usize,
    block_size: u64,
) -> f64 {
    assert!(senders >= 1 && senders <= group_size);
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let mut groups = Vec::new();
    for s in 0..senders {
        // Same members, rotated so member `s` is the root.
        let members: Vec<usize> = (0..group_size).map(|i| (s + i) % group_size).collect();
        groups.push(cluster.create_group(GroupSpec {
            members,
            algorithm: algorithm.clone(),
            block_size,
            ready_window: 3,
            max_outstanding_sends: 3,
        }));
    }
    for &g in &groups {
        for _ in 0..messages_per_sender {
            cluster.submit_send(g, message_size);
        }
    }
    cluster.run();
    let results = cluster.message_results();
    let total_end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten())
        .max()
        .copied()
        .expect("deliveries exist");
    let start = results
        .iter()
        .map(|r| r.submitted)
        .min()
        .expect("submissions exist");
    let elapsed = total_end.since(start).as_secs_f64();
    let total_bytes = message_size as f64 * messages_per_sender as f64 * senders as f64;
    total_bytes * 8.0 / elapsed / 1e9
}
