//! One-line experiment harnesses over [`SimCluster`], shared by the test
//! suite and the figure-regenerating benchmarks.

use rdmc::Algorithm;
use simnet::SimDuration;

use crate::{ClusterSpec, GroupSpec, SimCluster, TopoSpec};

/// Outcome of a single multicast run.
#[derive(Clone, Debug)]
pub struct MulticastOutcome {
    /// Message size in bytes.
    pub size: u64,
    /// Group size including the sender.
    pub group_size: usize,
    /// Time from submit until every member's completion upcall.
    pub latency: SimDuration,
    /// `size / latency` in Gb/s (the paper's bandwidth metric, §5.1).
    pub bandwidth_gbps: f64,
}

/// Runs one multicast of `size` bytes to a fresh group of `group_size`
/// nodes on `spec`'s cluster, returning its latency/bandwidth.
///
/// # Panics
///
/// Panics if the cluster is smaller than the group or the transfer fails
/// to complete (which would be a protocol bug).
pub fn run_single_multicast(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
) -> MulticastOutcome {
    assert!(
        group_size <= spec.topology.nodes(),
        "group larger than cluster"
    );
    let mut cluster = SimCluster::new(spec.build());
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let latency = result
        .latency()
        .expect("multicast did not complete at every member");
    MulticastOutcome {
        size,
        group_size,
        latency,
        bandwidth_gbps: result.bandwidth_gbps().expect("nonzero latency"),
    }
}

/// The [`trace::stall::WireModel`] matching a cluster's calibration:
/// host NIC rate (the slowest NIC on per-node topologies), one-hop
/// latency, and the fabric's fixed per-operation overhead.
pub fn wire_model_for(spec: &ClusterSpec) -> trace::stall::WireModel {
    let (gbps, latency) = match &spec.topology {
        TopoSpec::Flat { gbps, latency, .. } => (*gbps, *latency),
        TopoSpec::FlatPerNode { gbps, latency } => {
            (gbps.iter().copied().fold(f64::INFINITY, f64::min), *latency)
        }
        TopoSpec::Tor {
            host_gbps, latency, ..
        } => (*host_gbps, *latency),
    };
    trace::stall::WireModel {
        gbps,
        latency_ns: latency.as_nanos(),
        nic_op_ns: spec.fabric.nic_op_overhead.as_nanos(),
    }
}

/// Like [`run_single_multicast`], but with a full-capture flight
/// recorder attached for the whole run. Returns the outcome, the
/// recorded event stream, and the cluster's wire model so callers can
/// feed [`trace::stall::attribute`] directly.
///
/// # Panics
///
/// Panics under the same conditions as [`run_single_multicast`].
pub fn run_traced_multicast(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
) -> (
    MulticastOutcome,
    Vec<trace::TraceEvent>,
    trace::stall::WireModel,
) {
    assert!(
        group_size <= spec.topology.nodes(),
        "group larger than cluster"
    );
    let mut cluster = SimCluster::new(spec.build());
    let recorder = cluster.enable_flight_recorder(trace::Mode::Full);
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let latency = result
        .latency()
        .expect("multicast did not complete at every member");
    let outcome = MulticastOutcome {
        size,
        group_size,
        latency,
        bandwidth_gbps: result.bandwidth_gbps().expect("nonzero latency"),
    };
    (outcome, recorder.events(), wire_model_for(spec))
}

/// Runs a back-to-back stream of `count` equal-size messages on one group
/// and returns the aggregate bandwidth in Gb/s (total bytes over total
/// time), plus per-message latencies.
pub fn run_stream(
    spec: &ClusterSpec,
    group_size: usize,
    algorithm: Algorithm,
    size: u64,
    block_size: u64,
    count: usize,
) -> (f64, Vec<SimDuration>) {
    let mut cluster = SimCluster::new(spec.build());
    let group = cluster.create_group(GroupSpec {
        members: (0..group_size).collect(),
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    for _ in 0..count {
        cluster.submit_send(group, size);
    }
    cluster.run();
    let results = cluster.message_results();
    let latencies: Vec<SimDuration> = results
        .iter()
        .map(|r| r.latency().expect("message completed"))
        .collect();
    let total_end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten())
        .max()
        .copied()
        .expect("at least one delivery");
    let elapsed = total_end.since(results[0].submitted).as_secs_f64();
    let aggregate = (size as f64 * count as f64 * 8.0) / elapsed / 1e9;
    (aggregate, latencies)
}

/// The paper's Fig. 10 pattern: `senders` groups with *identical
/// membership* (`group_size` nodes) but distinct roots, each root streaming
/// `per_sender_bytes` in `message_size` messages concurrently. Returns the
/// aggregate bandwidth in Gb/s over total bytes moved.
pub fn run_concurrent_overlapping(
    spec: &ClusterSpec,
    group_size: usize,
    senders: usize,
    algorithm: Algorithm,
    message_size: u64,
    messages_per_sender: usize,
    block_size: u64,
) -> f64 {
    assert!(senders >= 1 && senders <= group_size);
    let mut cluster = SimCluster::new(spec.build());
    let mut groups = Vec::new();
    for s in 0..senders {
        // Same members, rotated so member `s` is the root.
        let members: Vec<usize> = (0..group_size).map(|i| (s + i) % group_size).collect();
        groups.push(cluster.create_group(GroupSpec {
            members,
            algorithm: algorithm.clone(),
            block_size,
            ready_window: 3,
            max_outstanding_sends: 3,
        }));
    }
    for &g in &groups {
        for _ in 0..messages_per_sender {
            cluster.submit_send(g, message_size);
        }
    }
    cluster.run();
    let results = cluster.message_results();
    let total_end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten())
        .max()
        .copied()
        .expect("deliveries exist");
    let start = results
        .iter()
        .map(|r| r.submitted)
        .min()
        .expect("submissions exist");
    let elapsed = total_end.since(start).as_secs_f64();
    let total_bytes = message_size as f64 * messages_per_sender as f64 * senders as f64;
    total_bytes * 8.0 / elapsed / 1e9
}
