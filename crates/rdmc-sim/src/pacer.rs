//! Per-NIC send admission and pacing for multi-tenant clusters.
//!
//! With many overlapping groups on one fabric (the Derecho-style
//! deployment of §I/§VII), every group's engine paces itself, but
//! nothing bounds what one *NIC* has in flight across groups: on an
//! oversubscribed fabric dozens of concurrent block sends share the
//! uplink, every transfer slows down, and tail latency balloons. The
//! pacer is the cluster's admission layer: each node may have at most
//! [`PacerConfig::max_inflight`] outbound block sends posted at once,
//! and when a slot frees, the queued candidates — which may belong to
//! different groups — are admitted in [`PacingPolicy`] order.
//!
//! Pacing is off by default; an unpaced cluster behaves bit-for-bit as
//! before (the golden-trace suite pins this). Control traffic
//! (readiness grants, failure relays, status and view writes) is never
//! paced: it is latency-critical and tiny.

use std::collections::{BTreeMap, VecDeque};

use rdmc::Rank;
use verbs::{QpHandle, WrId};

use crate::cluster::GroupId;

/// How queued block sends contending for a NIC's admission slots are
/// ordered when a slot frees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacingPolicy {
    /// Admit in arrival order (the unpaced ordering, just bounded).
    Fifo,
    /// Admit the send belonging to the smallest message first
    /// (shortest-job-first across groups; ties break by arrival).
    SmallestFirst,
    /// Rotate admission across groups so no tenant starves another.
    RoundRobin,
}

impl PacingPolicy {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PacingPolicy::Fifo => "fifo",
            PacingPolicy::SmallestFirst => "smallest_first",
            PacingPolicy::RoundRobin => "round_robin",
        }
    }
}

/// Configuration of the per-node send admission layer
/// ([`crate::ClusterBuilder::pacing`]).
#[derive(Clone, Copy, Debug)]
#[must_use = "pass the config to `ClusterBuilder::pacing`"]
pub struct PacerConfig {
    /// Outbound block sends one node may have posted at once (≥ 1;
    /// admission keeps at least one send moving so progress never
    /// stalls).
    pub max_inflight: u32,
    /// Admission order for queued sends.
    pub policy: PacingPolicy,
}

impl PacerConfig {
    /// A bound with the given policy.
    pub fn new(max_inflight: u32, policy: PacingPolicy) -> Self {
        assert!(max_inflight >= 1, "pacer needs at least one inflight send");
        PacerConfig {
            max_inflight,
            policy,
        }
    }
}

/// Counters the pacer accumulates over a run, for load reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacingStats {
    /// Block sends that were held in an admission queue (at least once).
    pub deferred_sends: u64,
    /// Deepest any single node's admission queue ever got.
    pub peak_queue_depth: usize,
}

/// One block send held back by admission control.
#[derive(Clone, Debug)]
pub(crate) struct QueuedSend {
    pub group: GroupId,
    pub rank: Rank,
    pub to: Rank,
    pub block: u32,
    pub bytes: u64,
    pub total_size: u64,
    /// Recorder time the engine issued the send (for the
    /// `SendAdmitted` trace event's queue-wait field).
    pub enqueued_ns: u64,
}

/// Per-node admission state.
#[derive(Default)]
pub(crate) struct NodePacer {
    /// Block sends currently posted to the fabric from this node.
    pub inflight: u32,
    /// Held sends, in arrival order.
    pub queue: VecDeque<QueuedSend>,
    /// Group admitted last (the round-robin cursor).
    pub rr_last: Option<GroupId>,
}

/// The cluster-wide pacer: per-node admission plus the posted-send
/// ledger that maps completions back to their node.
pub(crate) struct PacerState {
    pub config: PacerConfig,
    /// Ordered map: reconfiguration iterates it, and iteration order
    /// must not depend on hashing (the determinism audit).
    pub nodes: BTreeMap<usize, NodePacer>,
    /// (queue pair, work request) -> posting node, for every block send
    /// the pacer admitted and the fabric accepted. Entries leave on
    /// `SendDone` or `WrFlushed`; control writes never enter.
    pub admitted: BTreeMap<(QpHandle, WrId), usize>,
    pub stats: PacingStats,
}

impl PacerState {
    pub fn new(config: PacerConfig) -> Self {
        PacerState {
            config,
            nodes: BTreeMap::new(),
            admitted: BTreeMap::new(),
            stats: PacingStats::default(),
        }
    }

    /// All equally-preferred queue indices under the policy, in arrival
    /// order; the first entry is the default (uncontrolled)
    /// choice. More than one entry means the policy is indifferent — a
    /// genuine admission tie that a controlled scheduler may resolve
    /// either way. Only smallest-first produces real ties (equal
    /// message sizes); FIFO and round-robin orders are total.
    pub fn pick_tied(config: &PacerConfig, np: &NodePacer) -> Vec<usize> {
        if np.queue.is_empty() {
            return Vec::new();
        }
        match config.policy {
            PacingPolicy::Fifo => vec![0],
            PacingPolicy::SmallestFirst => {
                let min = np
                    .queue
                    .iter()
                    .map(|q| q.total_size)
                    .min()
                    .expect("non-empty queue");
                np.queue
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.total_size == min)
                    .map(|(i, _)| i)
                    .collect()
            }
            PacingPolicy::RoundRobin => {
                // The next distinct group after the cursor (cycling);
                // within a group, arrival order.
                let mut groups: Vec<GroupId> = np.queue.iter().map(|q| q.group).collect();
                groups.sort_unstable();
                groups.dedup();
                let next = match np.rr_last {
                    Some(last) => groups
                        .iter()
                        .copied()
                        .find(|&g| g > last)
                        .unwrap_or(groups[0]),
                    None => groups[0],
                };
                np.queue
                    .iter()
                    .position(|q| q.group == next)
                    .into_iter()
                    .collect()
            }
        }
    }
}
