//! Cluster presets modelled on the paper's four testbeds (§5.1).
//!
//! Absolute constants are calibrations, not measurements: the simulator's
//! job is to reproduce the *shape* of the paper's results (who wins, where
//! crossovers fall), and those shapes are set by link speeds, topology,
//! and the ratio of per-block overhead to block transfer time.

use simnet::{FlowNet, HostProfile, SimDuration, Topology};
use verbs::{CompletionMode, Fabric, FabricParams};

/// Which fabric shape to build.
#[derive(Clone, Debug, PartialEq)]
pub enum TopoSpec {
    /// Single non-blocking switch (Fractus, Stampede stand-ins).
    Flat {
        /// Node count.
        nodes: usize,
        /// Per-NIC link speed, Gb/s.
        gbps: f64,
        /// One-hop latency.
        latency: SimDuration,
    },
    /// Flat switch with one custom-speed node (slow-NIC experiments).
    FlatPerNode {
        /// Per-node link speeds, Gb/s.
        gbps: Vec<f64>,
        /// One-hop latency.
        latency: SimDuration,
    },
    /// Racks behind (possibly oversubscribed) uplinks (Apt, Sierra
    /// stand-ins).
    Tor {
        /// Rack count.
        racks: usize,
        /// Hosts per rack.
        per_rack: usize,
        /// Host NIC speed, Gb/s.
        host_gbps: f64,
        /// Per-rack uplink speed, Gb/s (each direction).
        uplink_gbps: f64,
        /// One-hop latency.
        latency: SimDuration,
    },
    /// Non-blocking fat-tree: pods whose aggregation links carry exactly
    /// `per_pod * host_gbps` and are declared transparent to the
    /// allocator (never a bottleneck), so edge-link rate churn stays
    /// inside one pod — the datacenter-scale profile.
    FatTree {
        /// Pod count.
        pods: usize,
        /// Hosts per pod.
        per_pod: usize,
        /// Host NIC speed, Gb/s.
        host_gbps: f64,
        /// One-hop latency.
        latency: SimDuration,
    },
    /// Geo-replication: datacenter sites with fast local fabrics joined
    /// by slow, high-latency WAN uplinks (the real bottleneck links —
    /// retrievable via [`simnet::Topology::wan_links`] for targeted
    /// fault injection).
    MultiDatacenter {
        /// Site count.
        sites: usize,
        /// Hosts per site.
        per_site: usize,
        /// Host NIC speed within a site, Gb/s.
        host_gbps: f64,
        /// Per-site WAN uplink speed, Gb/s (each direction).
        wan_gbps: f64,
        /// Intra-site one-hop latency.
        lan_latency: SimDuration,
        /// Cross-site one-way latency.
        wan_latency: SimDuration,
    },
}

impl TopoSpec {
    /// Total node count.
    pub fn nodes(&self) -> usize {
        match self {
            TopoSpec::Flat { nodes, .. } => *nodes,
            TopoSpec::FlatPerNode { gbps, .. } => gbps.len(),
            TopoSpec::Tor {
                racks, per_rack, ..
            } => racks * per_rack,
            TopoSpec::FatTree { pods, per_pod, .. } => pods * per_pod,
            TopoSpec::MultiDatacenter {
                sites, per_site, ..
            } => sites * per_site,
        }
    }
}

/// Everything needed to stand up a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Fabric shape.
    pub topology: TopoSpec,
    /// Host software cost constants (applied to every node).
    pub profile: HostProfile,
    /// Fabric-wide hardware constants.
    pub fabric: FabricParams,
    /// Completion mode for every node (override per node afterwards if
    /// needed).
    pub completion_mode: CompletionMode,
}

impl ClusterSpec {
    /// Fractus: 16 RDMA nodes on a non-blocking 100 Gb/s switch.
    pub fn fractus(nodes: usize) -> Self {
        ClusterSpec {
            topology: TopoSpec::Flat {
                nodes,
                gbps: 100.0,
                latency: SimDuration::from_micros(2),
            },
            profile: HostProfile::default(),
            fabric: FabricParams::default(),
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Stampede-1: FDR NICs but ~40 Gb/s measured unicast; higher
    /// per-block overheads than Fractus (the Table 1 cluster).
    pub fn stampede(nodes: usize) -> Self {
        ClusterSpec {
            topology: TopoSpec::Flat {
                nodes,
                gbps: 40.0,
                latency: SimDuration::from_micros(3),
            },
            profile: HostProfile {
                post_overhead: SimDuration::from_micros(2),
                completion_overhead: SimDuration::from_micros(1),
                ..HostProfile::default()
            },
            fabric: FabricParams {
                nic_op_overhead: SimDuration::from_micros(2),
                ..FabricParams::default()
            },
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Sierra: 4x QDR (40 Gb/s), ~2,000 nodes behind a federated fat-tree
    /// — modelled as pods with full-bisection uplinks but higher
    /// cross-pod latency exposure.
    pub fn sierra(nodes: usize) -> Self {
        let per_pod = 16usize;
        let pods = nodes.div_ceil(per_pod).max(1);
        ClusterSpec {
            topology: TopoSpec::Tor {
                racks: pods,
                per_rack: per_pod,
                host_gbps: 40.0,
                uplink_gbps: 40.0 * per_pod as f64, // full bisection
                latency: SimDuration::from_micros(4),
            },
            profile: HostProfile::default(),
            fabric: FabricParams::default(),
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Apt: 56 Gb/s FDR NICs behind a significantly oversubscribed TOR
    /// that degrades to ~16 Gb/s per host under load (§5.1).
    pub fn apt(racks: usize, per_rack: usize) -> Self {
        ClusterSpec {
            topology: TopoSpec::Tor {
                racks,
                per_rack,
                host_gbps: 56.0,
                uplink_gbps: 16.0 * per_rack as f64,
                latency: SimDuration::from_micros(3),
            },
            profile: HostProfile::default(),
            fabric: FabricParams::default(),
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Datacenter: `nodes` 100 Gb/s hosts in pods of 32 behind a
    /// non-blocking fat-tree whose aggregation tier is transparent to
    /// the allocator — the 1000-node scale profile (ROADMAP item 5).
    pub fn datacenter(nodes: usize) -> Self {
        let nodes = nodes.max(1);
        // Prefer an exact pod division (largest pod size up to 32) so the
        // cluster has exactly the requested node count; otherwise round
        // up to whole pods of 32.
        let per_pod = (16..=32.min(nodes))
            .rev()
            .find(|p| nodes.is_multiple_of(*p))
            .unwrap_or(32.min(nodes));
        let pods = nodes.div_ceil(per_pod);
        ClusterSpec {
            topology: TopoSpec::FatTree {
                pods,
                per_pod,
                host_gbps: 100.0,
                latency: SimDuration::from_micros(4),
            },
            profile: HostProfile::default(),
            fabric: FabricParams::default(),
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Geo-replication: `nodes` hosts split across two datacenter sites
    /// — 100 Gb/s within a site, 10 Gb/s WAN uplinks at 50 ms one-way
    /// between them (the SDR-RDMA wide-area setting). Cross-site
    /// transfers ride lossy, high-latency WAN links, so pair this with
    /// [`crate::ClusterBuilder::reliability`] when injecting faults.
    ///
    /// ```
    /// use rdmc::Algorithm;
    /// use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, ReliabilityPolicy};
    ///
    /// // 4 nodes in 2 sites; erasure coding rides out WAN loss without
    /// // paying the 100 ms retransmission round trip.
    /// let mut cluster = ClusterBuilder::new(ClusterSpec::geo(4))
    ///     .reliability(ReliabilityPolicy::erasure(2, 1))
    ///     .build();
    /// let group = cluster.create_group(GroupSpec {
    ///     members: vec![0, 1, 2, 3],
    ///     algorithm: Algorithm::BinomialPipeline,
    ///     block_size: 1 << 20,
    ///     ready_window: 4,
    ///     max_outstanding_sends: 2,
    /// });
    /// let id = cluster.submit_send(group, 8 << 20);
    /// cluster.run();
    /// assert!(cluster.result(id).expect("submitted").latency().is_some());
    /// ```
    pub fn geo(nodes: usize) -> Self {
        let nodes = nodes.max(2);
        ClusterSpec {
            topology: TopoSpec::MultiDatacenter {
                sites: 2,
                per_site: nodes.div_ceil(2),
                host_gbps: 100.0,
                wan_gbps: 10.0,
                lan_latency: SimDuration::from_micros(2),
                wan_latency: SimDuration::from_millis(50),
            },
            profile: HostProfile::default(),
            fabric: FabricParams::default(),
            completion_mode: CompletionMode::Hybrid,
        }
    }

    /// Builds the fabric: flow network, topology, node profiles.
    pub fn build(&self) -> Fabric {
        let mut net = FlowNet::new();
        let topo = match &self.topology {
            TopoSpec::Flat {
                nodes,
                gbps,
                latency,
            } => Topology::flat(&mut net, *nodes, *gbps, *latency),
            TopoSpec::FlatPerNode { gbps, latency } => {
                Topology::flat_per_node(&mut net, gbps, *latency)
            }
            TopoSpec::Tor {
                racks,
                per_rack,
                host_gbps,
                uplink_gbps,
                latency,
            } => Topology::oversubscribed_tor(
                &mut net,
                *racks,
                *per_rack,
                *host_gbps,
                *uplink_gbps,
                *latency,
            ),
            TopoSpec::FatTree {
                pods,
                per_pod,
                host_gbps,
                latency,
            } => Topology::fat_tree(&mut net, *pods, *per_pod, *host_gbps, *latency),
            TopoSpec::MultiDatacenter {
                sites,
                per_site,
                host_gbps,
                wan_gbps,
                lan_latency,
                wan_latency,
            } => Topology::multi_datacenter(
                &mut net,
                *sites,
                *per_site,
                *host_gbps,
                *wan_gbps,
                *lan_latency,
                *wan_latency,
            ),
        };
        let nodes = topo.num_nodes();
        let mut fabric = Fabric::new(net, topo, self.fabric.clone());
        for i in 0..nodes {
            let node = verbs::NodeId(i as u32);
            fabric.set_profile(node, self.profile.clone());
            fabric.set_completion_mode(node, self.completion_mode);
        }
        fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        assert_eq!(ClusterSpec::fractus(16).build().topology().num_nodes(), 16);
        assert_eq!(ClusterSpec::stampede(4).build().topology().num_nodes(), 4);
        assert_eq!(ClusterSpec::apt(4, 8).build().topology().num_nodes(), 32);
        let sierra = ClusterSpec::sierra(512);
        assert_eq!(sierra.build().topology().num_nodes(), 512);
        let dc = ClusterSpec::datacenter(1000);
        assert_eq!(dc.topology.nodes(), 1000); // 40 pods of 25
        assert_eq!(dc.build().topology().num_nodes(), 1000);
        assert_eq!(ClusterSpec::datacenter(1024).topology.nodes(), 1024);
        assert_eq!(ClusterSpec::datacenter(4).topology.nodes(), 4);
        assert_eq!(ClusterSpec::datacenter(37).topology.nodes(), 64); // no divisor
    }

    #[test]
    fn geo_preset_builds_two_sites_with_wan_links() {
        let spec = ClusterSpec::geo(6);
        assert_eq!(spec.topology.nodes(), 6);
        let fabric = spec.build();
        assert_eq!(fabric.topology().num_nodes(), 6);
        // Two sites, each with an up and a down WAN uplink.
        assert_eq!(fabric.topology().wan_links().len(), 4);
        // Odd requests round up to whole sites.
        assert_eq!(ClusterSpec::geo(5).topology.nodes(), 6);
    }

    #[test]
    fn topo_spec_node_counts() {
        assert_eq!(
            TopoSpec::FlatPerNode {
                gbps: vec![10.0, 20.0],
                latency: SimDuration::ZERO
            }
            .nodes(),
            2
        );
    }
}
