//! The simulation driver: binds `rdmc` protocol engines to the simulated
//! RDMA fabric and runs whole experiments under virtual time.
//!
//! A [`SimCluster`] hosts every group member's [`GroupEngine`] in one
//! process. Engine [`Action`]s become verbs (block sends carry the
//! message size as the immediate; ready-for-block notices and failure
//! relays are one-sided writes); fabric [`Delivery`]s become engine
//! [`Event`]s. Multiple groups — including fully overlapping ones with
//! different senders, as in the paper's Figs. 9–10 — run concurrently over
//! one fabric and contend for real link bandwidth.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};
use simnet::{JitterModel, SimDuration, SimTime};
use verbs::{CompletionMode, CpuReport, Delivery, Fabric, NodeId, QpHandle, WrId};

/// One-sided-write tag for ready-for-block notices.
const TAG_READY: u64 = 0;
/// One-sided-write tag for relayed failure notices.
const TAG_FAILURE: u64 = 1;
/// One-sided-write tag for atomic-delivery status counters (§4.6).
const TAG_STATUS: u64 = 2;

/// Identifies a group within a [`SimCluster`].
pub type GroupId = usize;

/// A group to instantiate on the cluster.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// Fabric node index of each member; `members[0]` is the root.
    pub members: Vec<usize>,
    /// Block-dissemination algorithm.
    pub algorithm: Algorithm,
    /// Block size in bytes.
    pub block_size: u64,
    /// Readiness credits granted ahead per peer.
    pub ready_window: u32,
    /// Block sends that may be posted to the NIC at once.
    pub max_outstanding_sends: u32,
}

/// Completion record of one multicast message.
#[derive(Clone, Debug)]
pub struct MessageResult {
    /// The group it was sent on.
    pub group: GroupId,
    /// Message index within the group (send order).
    pub index: usize,
    /// Message size in bytes.
    pub size: u64,
    /// When the root submitted the send.
    pub submitted: SimTime,
    /// Local-completion time per member rank (the paper measures until
    /// *all* members have the upcall).
    pub delivered_at: Vec<Option<SimTime>>,
}

impl MessageResult {
    /// Time until every member completed, if all did.
    pub fn latency(&self) -> Option<SimDuration> {
        let last = self
            .delivered_at
            .iter()
            .copied()
            .collect::<Option<Vec<SimTime>>>()?
            .into_iter()
            .max()?;
        Some(last.since(self.submitted))
    }

    /// `size / latency`, in gigabits per second.
    pub fn bandwidth_gbps(&self) -> Option<f64> {
        let lat = self.latency()?.as_secs_f64();
        (lat > 0.0).then(|| self.size as f64 * 8.0 / lat / 1e9)
    }
}

/// A timestamped protocol-level event, recorded when tracing is enabled
/// (used to regenerate the paper's Table 1 and Fig. 5).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The protocol moments the tracer distinguishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// We told `to` we are ready for its next block.
    ReadySent {
        /// The notified peer rank.
        to: Rank,
    },
    /// `from` told us it is ready for our next block.
    ReadyHeard {
        /// The ready peer rank.
        from: Rank,
    },
    /// We posted a block send.
    SendPosted {
        /// Target rank.
        to: Rank,
        /// Block number.
        block: u32,
    },
    /// A posted block send completed.
    SendFinished {
        /// Target rank.
        to: Rank,
    },
    /// A block landed (block number from the schedule; `None` means it was
    /// the size-announcing first block of a message).
    BlockArrived {
        /// Sending peer rank.
        from: Rank,
        /// Derived block number, if the transfer was already active.
        block: Option<u32>,
    },
    /// The application was asked for a receive buffer.
    BufferAllocated,
    /// The message completed locally.
    Delivered,
}

enum TimerAction {
    Send { group: GroupId, size: u64 },
    Crash { node: usize },
}

struct GroupRuntime {
    spec: GroupSpec,
    engines: Vec<GroupEngine>,
    /// (my rank, peer rank) -> my queue pair endpoint.
    qps: HashMap<(Rank, Rank), QpHandle>,
    submit_times: Vec<SimTime>,
    /// Per rank: completion times in message order.
    delivered: Vec<Vec<SimTime>>,
    sizes: Vec<u64>,
    /// Derecho-style atomic delivery (None = plain RDMC semantics).
    atomic: Option<AtomicState>,
}

/// Derecho's §4.6 scheme: RDMC deliveries are buffered; each member
/// publishes its received-count in a replicated status table (one-sided
/// writes); a message is *stably delivered* once every member is known to
/// hold it.
struct AtomicState {
    /// status[me][peer] = peer's completed count as known at `me`.
    status: Vec<Vec<u64>>,
    /// Per rank: how many messages have been stably delivered.
    stable_count: Vec<u64>,
    /// Per rank: stable-delivery times in message order.
    stable_at: Vec<Vec<SimTime>>,
}

/// A simulated RDMC deployment: fabric + engines + bookkeeping.
pub struct SimCluster {
    fabric: Fabric,
    groups: Vec<GroupRuntime>,
    qp_owner: HashMap<QpHandle, (GroupId, Rank, Rank)>,
    timers: HashMap<u64, TimerAction>,
    next_timer: u64,
    tracing: bool,
    traces: HashMap<(GroupId, Rank), Vec<TraceRecord>>,
}

impl SimCluster {
    /// Wraps a built fabric (see
    /// [`ClusterSpec::build`](crate::ClusterSpec::build)).
    pub fn new(fabric: Fabric) -> Self {
        SimCluster {
            fabric,
            groups: Vec::new(),
            qp_owner: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
            tracing: false,
            traces: HashMap::new(),
        }
    }

    /// Enables protocol-event tracing (Table 1 / Fig. 5 instrumentation).
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Access the underlying fabric (topology, link accounting, CPU).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Sets one node's completion mode (polling / interrupt / hybrid).
    pub fn set_completion_mode(&mut self, node: usize, mode: CompletionMode) {
        self.fabric.set_completion_mode(NodeId(node as u32), mode);
    }

    /// Sets one node's scheduling-jitter model.
    pub fn set_jitter(&mut self, node: usize, jitter: JitterModel) {
        self.fabric.set_jitter(NodeId(node as u32), jitter);
    }

    /// One node's CPU usage report.
    pub fn cpu_report(&self, node: usize) -> CpuReport {
        self.fabric.cpu_report(NodeId(node as u32))
    }

    /// Creates a group; all members instantiate their engines and
    /// receivers pre-grant their first ready-for-block credit (the
    /// out-of-band bootstrap of §3 step 1).
    ///
    /// # Panics
    ///
    /// Panics if the member list is empty, repeats a node, or names a node
    /// outside the topology.
    pub fn create_group(&mut self, spec: GroupSpec) -> GroupId {
        let planner = Arc::new(SchedulePlanner::new(spec.algorithm.clone()));
        self.create_group_with_planner(spec, planner)
    }

    /// Like [`SimCluster::create_group`], but with an explicit schedule
    /// planner — how custom schedule families (e.g. the `baselines`
    /// crate's MPI broadcast) run on the fabric. `spec.algorithm` is kept
    /// only as a label.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimCluster::create_group`].
    pub fn create_group_with_planner(
        &mut self,
        spec: GroupSpec,
        planner: Arc<SchedulePlanner>,
    ) -> GroupId {
        assert!(!spec.members.is_empty(), "group needs members");
        let n = spec.members.len() as u32;
        let total_nodes = self.fabric.topology().num_nodes();
        let mut rank_of_node = HashMap::new();
        for (rank, &node) in spec.members.iter().enumerate() {
            assert!(node < total_nodes, "member node {node} outside topology");
            let prev = rank_of_node.insert(node, rank as Rank);
            assert!(prev.is_none(), "node {node} appears twice in the group");
        }
        let gid = self.groups.len();
        let mut engines = Vec::with_capacity(spec.members.len());
        let mut initial: Vec<(Rank, Vec<Action>)> = Vec::new();
        for rank in 0..n {
            let (engine, actions) = GroupEngine::new(EngineConfig {
                rank,
                num_nodes: n,
                block_size: spec.block_size,
                ready_window: spec.ready_window,
                max_outstanding_sends: spec.max_outstanding_sends,
                planner: Arc::clone(&planner),
            });
            engines.push(engine);
            initial.push((rank, actions));
        }
        self.groups.push(GroupRuntime {
            spec,
            engines,
            qps: HashMap::new(),
            submit_times: Vec::new(),
            delivered: vec![Vec::new(); n as usize],
            sizes: Vec::new(),
            atomic: None,
        });
        for (rank, actions) in initial {
            self.execute(gid, rank, actions);
        }
        gid
    }

    /// Submits a multicast of `size` random-content bytes on `group` now.
    pub fn submit_send(&mut self, group: GroupId, size: u64) {
        let now = self.fabric.now();
        self.groups[group].submit_times.push(now);
        self.groups[group].sizes.push(size);
        self.feed(group, 0, Event::StartSend { size });
    }

    /// Schedules a multicast submission at an absolute virtual time.
    pub fn schedule_send_at(&mut self, group: GroupId, at: SimTime, size: u64) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, TimerAction::Send { group, size });
        let root_node = self.groups[group].spec.members[0];
        let delay = at.saturating_since(self.fabric.now());
        self.fabric
            .schedule_timer(NodeId(root_node as u32), delay, token);
    }

    /// Schedules a node crash at an absolute virtual time.
    pub fn schedule_crash_at(&mut self, node: usize, at: SimTime) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, TimerAction::Crash { node });
        let delay = at.saturating_since(self.fabric.now());
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
    }

    /// Switches a group to Derecho-style *atomic delivery* (§4.6): RDMC
    /// completions are buffered and a message is delivered only once the
    /// replicated status table shows every member holds it. Call right
    /// after [`SimCluster::create_group`], before any sends.
    ///
    /// # Panics
    ///
    /// Panics if messages were already sent on the group.
    pub fn enable_atomic_delivery(&mut self, group: GroupId) {
        let g = &mut self.groups[group];
        assert!(
            g.submit_times.is_empty(),
            "enable atomic delivery before sending"
        );
        let n = g.spec.members.len();
        g.atomic = Some(AtomicState {
            status: vec![vec![0; n]; n],
            stable_count: vec![0; n],
            stable_at: vec![Vec::new(); n],
        });
    }

    /// Stable-delivery times per member for an atomic group, in message
    /// order (empty vectors for a plain group).
    pub fn stable_deliveries(&self, group: GroupId, rank: Rank) -> &[SimTime] {
        self.groups[group]
            .atomic
            .as_ref()
            .map(|a| a.stable_at[rank as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Checks whether new messages became stable at `rank` and records
    /// their delivery times.
    fn advance_stability(&mut self, group: GroupId, rank: Rank) {
        let now = self.fabric.now();
        let g = &mut self.groups[group];
        let Some(atomic) = g.atomic.as_mut() else {
            return;
        };
        let me = rank as usize;
        let stable_idx = atomic.status[me].iter().copied().min().expect("members");
        while atomic.stable_count[me] < stable_idx {
            atomic.stable_count[me] += 1;
            atomic.stable_at[me].push(now);
        }
    }

    /// Runs the simulation until no events remain.
    pub fn run(&mut self) {
        while let Some((time, node, delivery)) = self.fabric.advance() {
            self.dispatch(time, node, delivery);
        }
        // Runtime mirror of the analyzer's static posting-order lint: the
        // ready-for-block discipline means no send ever finds its receiver
        // without a posted receive, so the RNR machinery must never arm
        // (§4.2) — not even on failure runs, where connections break via
        // crash detection rather than retry exhaustion.
        debug_assert_eq!(
            self.fabric.stats().rnr_arms,
            0,
            "a send raced ahead of receive posting and armed an RNR timer"
        );
    }

    /// Completion records for every message submitted so far.
    pub fn message_results(&self) -> Vec<MessageResult> {
        let mut out = Vec::new();
        for (gid, g) in self.groups.iter().enumerate() {
            for (idx, (&submitted, &size)) in g.submit_times.iter().zip(g.sizes.iter()).enumerate()
            {
                let delivered_at = g
                    .delivered
                    .iter()
                    .map(|per_rank| per_rank.get(idx).copied())
                    .collect();
                out.push(MessageResult {
                    group: gid,
                    index: idx,
                    size,
                    submitted,
                    delivered_at,
                });
            }
        }
        out
    }

    /// The trace recorded for one member (empty unless
    /// [`SimCluster::enable_tracing`] was called before the transfer).
    pub fn trace(&self, group: GroupId, rank: Rank) -> &[TraceRecord] {
        self.traces
            .get(&(group, rank))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if every engine is idle and unwedged — the condition under
    /// which a group close ("destroy") would report success, guaranteeing
    /// every message reached every destination (§4.6).
    pub fn all_quiescent(&self) -> bool {
        self.groups
            .iter()
            .flat_map(|g| g.engines.iter())
            .all(|e| e.is_idle() && !e.is_wedged())
    }

    /// Ranks that consider the group wedged (learned of a failure).
    pub fn wedged_members(&self, group: GroupId) -> Vec<Rank> {
        self.groups[group]
            .engines
            .iter()
            .filter(|e| e.is_wedged())
            .map(|e| e.rank())
            .collect()
    }

    fn record(&mut self, group: GroupId, rank: Rank, kind: TraceKind) {
        if self.tracing {
            let time = self.fabric.now();
            self.traces
                .entry((group, rank))
                .or_default()
                .push(TraceRecord { time, kind });
        }
    }

    fn dispatch(&mut self, _time: SimTime, node: NodeId, delivery: Delivery) {
        match delivery {
            Delivery::RecvDone { qp, imm, .. } => {
                let (group, me, peer) = self.qp_owner[&qp];
                let block = self.groups[group].engines[me as usize].next_expected_block(peer);
                self.record(
                    group,
                    me,
                    TraceKind::BlockArrived {
                        from: peer,
                        block: block.map(|(b, _, _)| b),
                    },
                );
                self.feed(
                    group,
                    me,
                    Event::BlockReceived {
                        from: peer,
                        total_size: imm,
                    },
                );
            }
            Delivery::SendDone { qp, .. } => {
                let (group, me, peer) = self.qp_owner[&qp];
                self.record(group, me, TraceKind::SendFinished { to: peer });
                self.feed(group, me, Event::SendCompleted { to: peer });
            }
            Delivery::WriteDone { .. } => {}
            Delivery::WriteArrived { qp, tag, payload } => {
                let (group, me, peer) = self.qp_owner[&qp];
                match tag {
                    TAG_READY => {
                        self.record(group, me, TraceKind::ReadyHeard { from: peer });
                        self.feed(group, me, Event::ReadyReceived { from: peer });
                    }
                    TAG_FAILURE => {
                        let failed =
                            u32::from_le_bytes(payload[..4].try_into().expect("failure payload"));
                        self.feed(group, me, Event::PeerFailed { rank: failed });
                    }
                    TAG_STATUS => {
                        let count =
                            u64::from_le_bytes(payload[..8].try_into().expect("status payload"));
                        if let Some(a) = self.groups[group].atomic.as_mut() {
                            let cell = &mut a.status[me as usize][peer as usize];
                            *cell = (*cell).max(count);
                        }
                        self.advance_stability(group, me);
                    }
                    other => panic!("unknown control tag {other}"),
                }
            }
            Delivery::QpBroken { qp } => {
                if let Some(&(group, me, peer)) = self.qp_owner.get(&qp) {
                    self.feed(group, me, Event::PeerFailed { rank: peer });
                }
            }
            Delivery::Timer { token } => match self.timers.remove(&token) {
                Some(TimerAction::Send { group, size }) => {
                    let now = self.fabric.now();
                    self.groups[group].submit_times.push(now);
                    self.groups[group].sizes.push(size);
                    self.feed(group, 0, Event::StartSend { size });
                }
                Some(TimerAction::Crash { node }) => {
                    self.fabric.crash(NodeId(node as u32));
                }
                None => {
                    let _ = node; // stale or foreign timer: ignore
                }
            },
        }
    }

    /// Feeds an event to one engine and executes the resulting actions.
    fn feed(&mut self, group: GroupId, rank: Rank, event: Event) {
        let node = self.groups[group].spec.members[rank as usize];
        if self.fabric.is_crashed(NodeId(node as u32)) {
            return; // dead software runs no handlers
        }
        let actions = self.groups[group].engines[rank as usize]
            .handle(event)
            .unwrap_or_else(|e| panic!("group {group} rank {rank}: protocol violation: {e}"));
        self.execute(group, rank, actions);
    }

    /// Lazily creates the queue pair between two group members.
    fn ensure_qp(&mut self, group: GroupId, a: Rank, b: Rank) -> QpHandle {
        if let Some(&qp) = self.groups[group].qps.get(&(a, b)) {
            return qp;
        }
        let na = NodeId(self.groups[group].spec.members[a as usize] as u32);
        let nb = NodeId(self.groups[group].spec.members[b as usize] as u32);
        let (qa, qb) = self.fabric.connect(na, nb);
        self.groups[group].qps.insert((a, b), qa);
        self.groups[group].qps.insert((b, a), qb);
        self.qp_owner.insert(qa, (group, a, b));
        self.qp_owner.insert(qb, (group, b, a));
        qa
    }

    fn execute(&mut self, group: GroupId, rank: Rank, actions: Vec<Action>) {
        let node = NodeId(self.groups[group].spec.members[rank as usize] as u32);
        // The first-block copy is charged *after* all posts from this
        // handler: the paper's receivers post their receives first "and in
        // parallel, copy the first block" (§4.2), so the copy must not
        // delay readiness grants or relays.
        let mut deferred_copy = SimDuration::ZERO;
        for action in actions {
            match action {
                Action::SendReady { to } => {
                    let qp = self.ensure_qp(group, rank, to);
                    // Readiness implies the receive is pre-posted (§4.2):
                    // post it first so the peer's send always lands.
                    let block_size = self.groups[group].spec.block_size;
                    // Ignore failures: the group is wedging if the QP broke.
                    let _ = self.fabric.post_recv(qp, WrId(0), block_size);
                    let _ = self.fabric.post_write(
                        qp,
                        WrId(0),
                        TAG_READY,
                        Bytes::from_static(b"RDY"),
                        None,
                    );
                    self.record(group, rank, TraceKind::ReadySent { to });
                }
                Action::SendBlock {
                    to,
                    block,
                    bytes,
                    total_size,
                    ..
                } => {
                    let qp = self.ensure_qp(group, rank, to);
                    self.record(group, rank, TraceKind::SendPosted { to, block });
                    let _ =
                        self.fabric
                            .post_send(qp, WrId(u64::from(block)), bytes, total_size, None);
                    // Debug-build mirror of the static invariant: a block
                    // send is emitted only against a ready credit, and each
                    // credit was granted after the matching receive was
                    // posted — so the receiver's queue cannot be empty here
                    // unless the connection already broke.
                    #[cfg(debug_assertions)]
                    {
                        let peer_qp = self.groups[group].qps[&(to, rank)];
                        let snap = self.fabric.posting_snapshot(peer_qp);
                        debug_assert!(
                            snap.broken || snap.posted_recvs >= 1,
                            "group {group}: rank {rank} posted block {block} to {to} \
                             with no receive posted at the target"
                        );
                    }
                }
                Action::AllocateBuffer { size } => {
                    // malloc on the critical path (§4.6) gates everything;
                    // the copy of the size-announcing first block into the
                    // new buffer (Table 1 "Copy Time") is deferred past the
                    // posts below.
                    let profile = self.fabric.profile(node).clone();
                    let first_block = size.min(self.groups[group].spec.block_size);
                    self.fabric.consume_cpu(node, profile.malloc_latency);
                    deferred_copy += profile.memcpy_time(first_block);
                    self.record(group, rank, TraceKind::BufferAllocated);
                }
                Action::DeliverMessage { size } => {
                    let now = self.fabric.now();
                    let g = &mut self.groups[group];
                    g.delivered[rank as usize].push(now);
                    let _ = size;
                    self.record(group, rank, TraceKind::Delivered);
                    // Atomic mode: publish the new received-count to every
                    // peer's status table and re-evaluate stability.
                    let count = self.groups[group].delivered[rank as usize].len() as u64;
                    let is_atomic = self.groups[group].atomic.is_some();
                    if is_atomic {
                        if let Some(a) = self.groups[group].atomic.as_mut() {
                            a.status[rank as usize][rank as usize] = count;
                        }
                        let n = self.groups[group].spec.members.len() as Rank;
                        for peer in 0..n {
                            if peer == rank {
                                continue;
                            }
                            let peer_node =
                                NodeId(self.groups[group].spec.members[peer as usize] as u32);
                            if self.fabric.is_crashed(peer_node) {
                                continue;
                            }
                            let qp = self.ensure_qp(group, rank, peer);
                            let _ = self.fabric.post_write(
                                qp,
                                WrId(count),
                                TAG_STATUS,
                                Bytes::copy_from_slice(&count.to_le_bytes()),
                                None,
                            );
                        }
                        self.advance_stability(group, rank);
                    }
                }
                Action::RelayFailure { failed } => {
                    let n = self.groups[group].spec.members.len() as Rank;
                    for peer in 0..n {
                        if peer == rank {
                            continue;
                        }
                        let peer_node =
                            NodeId(self.groups[group].spec.members[peer as usize] as u32);
                        if self.fabric.is_crashed(peer_node) {
                            continue;
                        }
                        let qp = self.ensure_qp(group, rank, peer);
                        let _ = self.fabric.post_write(
                            qp,
                            WrId(1),
                            TAG_FAILURE,
                            Bytes::copy_from_slice(&failed.to_le_bytes()),
                            None,
                        );
                    }
                }
            }
        }
        if deferred_copy > SimDuration::ZERO {
            self.fabric.consume_cpu(node, deferred_copy);
        }
    }
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("now", &self.fabric.now())
            .field("groups", &self.groups.len())
            .finish()
    }
}
