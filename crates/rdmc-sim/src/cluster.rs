//! The simulation driver: binds `rdmc` protocol engines to the simulated
//! RDMA fabric and runs whole experiments under virtual time.
//!
//! A [`SimCluster`] hosts every group member's [`GroupEngine`] in one
//! process. Engine [`Action`]s become verbs (block sends carry the
//! message size as the immediate; ready-for-block notices and failure
//! relays are one-sided writes); fabric [`Delivery`]s become engine
//! [`Event`]s. Multiple groups — including fully overlapping ones with
//! different senders, as in the paper's Figs. 9–10 — run concurrently over
//! one fabric and contend for real link bandwidth.
//!
//! ## Failure recovery
//!
//! RDMC proper stops at the *wedge* (§3 property 6); §2.4 assumes an
//! external membership service restarts interrupted transfers in a new
//! group. [`crate::ClusterBuilder::recovery`] turns that service on: each
//! member runs an SST-style [`ViewTracker`] whose suspicion updates
//! spread epidemically over the fabric (`TAG_VIEW` writes); once every
//! unsuspected member publishes the identical failure set, the agreed
//! view is installed — old queue pairs torn down, survivors renumbered,
//! and every interrupted message resumed block-wise from the survivors'
//! wedge-time bitmaps via the `recovery` planner (with sender-side
//! re-multicast when one member holds everything, and consistent
//! whole-group discard when the failed members took the only copy of a
//! block with them). Reconfiguration attempts are paced by a grace
//! timer with bounded exponential backoff, and after `force_after`
//! fruitless attempts the orchestrator force-feeds the failure evidence
//! rather than waiting for the epidemic — the simulation's stand-in for
//! a heavyweight external failure detector.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crate::atomic::{AtomicDelivery, AtomicGroupId, AtomicMember, AtomicRuntime, Slot, SlotKind};
use crate::pacer::{PacerConfig, PacerState, PacingStats, QueuedSend};
use crate::reliability::{
    self, ParityGen, RelRecvState, RelSendState, ReliabilityPolicy, ReliabilityStats,
};
use bytes::Bytes;
use rdmc::engine::{
    Action, EngineConfig, EpochInstall, Event, GroupEngine, ResumeTransfer, TransferStatus,
};
use rdmc::rotation;
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};
use recovery::{plan_message_resume, resume_transfers, MessagePlan, ResumeStrategy};
use simnet::{SimDuration, SimTime};
use sst::{View, ViewTracker};
use trace::check::wire;
use verbs::{CpuReport, Delivery, Fabric, NodeId, QpHandle, Transport, WrId};

/// One-sided-write tag for ready-for-block notices.
const TAG_READY: u64 = 0;
/// One-sided-write tag for relayed failure notices.
const TAG_FAILURE: u64 = 1;
/// One-sided-write tag for atomic-delivery status counters (§4.6).
const TAG_STATUS: u64 = 2;
/// One-sided-write tag for membership-view (suspicion/epoch) updates.
const TAG_VIEW: u64 = 3;
/// One-sided-write tag for gap-repair requests (reliability layer).
const TAG_NACK: u64 = 4;
/// One-sided-write tag for retransmitted blocks (reliability layer).
const TAG_RETRANS: u64 = 5;
/// One-sided-write tag for erasure-coded parity writes.
const TAG_PARITY: u64 = 6;
/// One-sided-write tag for sender send-frontier probes (trailing-loss
/// detection after a quiet period).
const TAG_PROBE: u64 = 7;
/// One-sided-write tag for atomic-multicast SST frontier-row updates
/// (the stability epidemic; see [`AtomicGroupId`]).
const TAG_FRONTIER: u64 = 8;

/// Identifies a group within a [`SimCluster`].
pub type GroupId = usize;

/// Opaque handle to one multicast message submitted on a [`SimCluster`]
/// (returned by [`SimCluster::submit_send`] and
/// [`SimCluster::schedule_send_at`]). Look its completion record up with
/// [`SimCluster::result`] — the handle-based replacement for positional
/// indexing into [`SimCluster::message_results`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(u64);

/// A group to instantiate on the cluster.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// Fabric node index of each member; `members[0]` is the root.
    pub members: Vec<usize>,
    /// Block-dissemination algorithm.
    pub algorithm: Algorithm,
    /// Block size in bytes.
    pub block_size: u64,
    /// Readiness credits granted ahead per peer.
    pub ready_window: u32,
    /// Block sends that may be posted to the NIC at once.
    pub max_outstanding_sends: u32,
}

/// Completion record of one multicast message.
#[derive(Clone, Debug)]
pub struct MessageResult {
    /// The group it was sent on.
    pub group: GroupId,
    /// Message index within the group (send order).
    pub index: usize,
    /// Message size in bytes.
    pub size: u64,
    /// When the root submitted the send.
    pub submitted: SimTime,
    /// Local-completion time per member rank (the paper measures until
    /// *all* members have the upcall).
    pub delivered_at: Vec<Option<SimTime>>,
}

impl MessageResult {
    /// Time until every member completed, if all did.
    pub fn latency(&self) -> Option<SimDuration> {
        let last = self
            .delivered_at
            .iter()
            .copied()
            .collect::<Option<Vec<SimTime>>>()?
            .into_iter()
            .max()?;
        Some(last.since(self.submitted))
    }

    /// `size / latency`, in gigabits per second.
    pub fn bandwidth_gbps(&self) -> Option<f64> {
        let lat = self.latency()?.as_secs_f64();
        (lat > 0.0).then(|| self.size as f64 * 8.0 / lat / 1e9)
    }
}

/// A timestamped protocol-level event, recorded when tracing is enabled
/// (used to regenerate the paper's Table 1 and Fig. 5).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The protocol moments the tracer distinguishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// We told `to` we are ready for its next block.
    ReadySent {
        /// The notified peer rank.
        to: Rank,
    },
    /// `from` told us it is ready for our next block.
    ReadyHeard {
        /// The ready peer rank.
        from: Rank,
    },
    /// We posted a block send.
    SendPosted {
        /// Target rank.
        to: Rank,
        /// Block number.
        block: u32,
    },
    /// A posted block send completed.
    SendFinished {
        /// Target rank.
        to: Rank,
    },
    /// A block landed (block number from the schedule; `None` means it was
    /// the size-announcing first block of a message).
    BlockArrived {
        /// Sending peer rank.
        from: Rank,
        /// Derived block number, if the transfer was already active.
        block: Option<u32>,
    },
    /// The application was asked for a receive buffer.
    BufferAllocated,
    /// The message completed locally.
    Delivered,
}

/// Configuration of the epoch-based recovery orchestration
/// ([`crate::ClusterBuilder::recovery`]).
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Delay from a member's first failure suspicion to the first
    /// reconfiguration attempt (lets the epidemic converge and batches
    /// near-simultaneous failures into one view change).
    pub grace: SimDuration,
    /// Cap on the exponential backoff between reconfiguration attempts.
    pub max_backoff: SimDuration,
    /// Fruitless attempts after which the orchestrator force-feeds the
    /// failure evidence instead of waiting for the epidemic.
    pub force_after: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            grace: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(16),
            force_after: 5,
        }
    }
}

/// First suspicion of one failed member (detection-latency accounting).
#[derive(Clone, Debug)]
pub struct DetectionRecord {
    /// The group that noticed.
    pub group: GroupId,
    /// The suspected member, in *original* group ranks.
    pub failed: Rank,
    /// The suspected member's fabric node.
    pub node: usize,
    /// When the first survivor suspected it.
    pub suspected_at: SimTime,
}

/// One completed reconfiguration.
#[derive(Clone, Debug)]
pub struct ReconfigRecord {
    /// The reconfigured group.
    pub group: GroupId,
    /// The installed epoch number.
    pub epoch: u64,
    /// Members removed by this view change, in original ranks.
    pub removed: Vec<Rank>,
    /// Surviving members, in original ranks (new rank = index).
    pub survivors: Vec<Rank>,
    /// When the triggering failure was first suspected.
    pub first_suspected_at: SimTime,
    /// When the new epoch was installed on every survivor.
    pub installed_at: SimTime,
    /// Messages resumed block-wise.
    pub resumed: usize,
    /// Messages resumed by sender-side re-multicast.
    pub remulticast: usize,
    /// Messages where every survivor already held every block.
    pub already_complete: usize,
    /// Total block transfers across all resume schedules (the bytes the
    /// new epoch must move — only the *missing* blocks).
    pub resumed_blocks: usize,
    /// Message indices discarded group-wide (a failed member took the
    /// only copy of some block).
    pub abandoned: Vec<usize>,
    /// Whether the orchestrator had to force the view.
    pub forced: bool,
}

/// Everything the recovery orchestration measured.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// First-suspicion records, in suspicion order.
    pub detections: Vec<DetectionRecord>,
    /// Completed reconfigurations, in installation order.
    pub reconfigurations: Vec<ReconfigRecord>,
}

/// Per-group membership/recovery state (present when recovery is on).
///
/// Trackers for single-member groups are degenerate (no peer can fail);
/// `ViewTracker` itself requires `n >= 1` only.
struct GroupRecovery {
    /// One tracker per *original* rank; dead members' trackers freeze.
    trackers: Vec<ViewTracker>,
    /// Original ranks already counted in the detection stats.
    detected: BTreeSet<Rank>,
    /// Bumped at every install; reconfiguration timers carry the version
    /// they were armed under and go stale when it moves.
    version: u64,
    /// First suspicion time of the in-progress cycle.
    cycle_started: Option<SimTime>,
}

impl GroupRecovery {
    fn new(n: usize) -> Self {
        GroupRecovery {
            trackers: (0..n)
                .map(|r| ViewTracker::new(r as u32, n as u32))
                .collect(),
            detected: BTreeSet::new(),
            version: 0,
            cycle_started: None,
        }
    }
}

enum TimerAction {
    Send {
        group: GroupId,
        size: u64,
        message: MessageId,
    },
    Crash {
        node: usize,
    },
    Reconfigure {
        group: GroupId,
        version: u64,
        attempt: u32,
    },
    /// Receiver retry timeout: re-NACK still-missing blocks on `qp` (or
    /// escalate once the budget is spent).
    RelRto {
        qp: QpHandle,
    },
    /// Sender quiet-period check: probe the send frontier on `qp` if no
    /// block has been posted for the policy's probe delay.
    RelProbe {
        qp: QpHandle,
    },
    /// Submit a rotated atomic-multicast message when the timer fires
    /// (the slot owner is resolved at fire time, from the then-current
    /// rotation cursor and live set).
    AtomicSend {
        ag: AtomicGroupId,
        size: u64,
        message: MessageId,
    },
}

struct GroupRuntime {
    spec: GroupSpec,
    engines: Vec<GroupEngine>,
    /// (my rank, peer rank) -> my queue pair endpoint (current epoch).
    /// Ordered: epoch teardown iterates it, and iteration order must be
    /// run-to-run stable (the determinism audit; the PR 5 regression).
    qps: BTreeMap<(Rank, Rank), QpHandle>,
    /// Completion record of every message, in submission order (the
    /// `delivered_at` rows are indexed by *original* rank).
    results: Vec<MessageResult>,
    /// Per original rank: undelivered, unabandoned message indices in
    /// delivery order (the engines deliver strictly in order, so the
    /// front of the queue names the message a `DeliverMessage` is for).
    pending: Vec<VecDeque<usize>>,
    /// Original rank that submitted each message (its app buffer holds
    /// every block, so it can re-seed a resume).
    senders: Vec<usize>,
    /// High-water mark of the root's send-side backlog, sampled at every
    /// submission (the traffic engine's overload evidence).
    peak_backlog: usize,
    /// Fabric node of each *original* rank (never shrinks).
    orig_members: Vec<usize>,
    /// Current rank -> original rank (identity until a reconfiguration).
    orig_rank: Vec<usize>,
    /// Derecho-style atomic delivery (None = plain RDMC semantics).
    atomic: Option<AtomicState>,
    /// Set when this group is one sender's subgroup of an atomic
    /// multicast overlay: `(atomic group id, sender member index)`.
    /// Deliveries and reconfigurations then feed the overlay's frontier
    /// and trim machinery.
    overlay: Option<(AtomicGroupId, usize)>,
    /// Membership/recovery state (None = wedge-only semantics).
    recovery: Option<GroupRecovery>,
    /// How this group recovers blocks the fabric loses (None = the
    /// paper's lossless assumption: block immediates carry the raw
    /// message size and a loss stalls or wedges the transfer).
    reliability: Option<ReliabilityPolicy>,
}

impl GroupRuntime {
    /// Current rank of an original rank, if still a member.
    fn current_of(&self, orig: usize) -> Option<Rank> {
        self.orig_rank
            .iter()
            .position(|&o| o == orig)
            .map(|c| c as Rank)
    }
}

/// Derecho's §4.6 scheme: RDMC deliveries are buffered; each member
/// publishes its received-count in a replicated status table (one-sided
/// writes); a message is *stably delivered* once every member is known to
/// hold it.
struct AtomicState {
    /// status[me][peer] = peer's completed count as known at `me`.
    status: Vec<Vec<u64>>,
    /// Per rank: how many messages have been stably delivered.
    stable_count: Vec<u64>,
    /// Per rank: stable-delivery times in message order.
    stable_at: Vec<Vec<SimTime>>,
}

/// An RDMC deployment over any [`Transport`]: transport + engines +
/// bookkeeping. The orchestration — group creation, pacer admission,
/// epoch recovery, reliability policies, atomic overlays, the flight
/// recorder — is written once against the [`Transport`] contract and
/// runs unchanged over the simulated verbs fabric
/// (`Cluster<Fabric>`, aliased [`SimCluster`]) or the real nonblocking
/// TCP backend (`rdmc-tcp`'s `TcpFabric`).
pub struct Cluster<T: Transport = Fabric> {
    fabric: T,
    groups: Vec<GroupRuntime>,
    qp_owner: BTreeMap<QpHandle, (GroupId, Rank, Rank)>,
    timers: BTreeMap<u64, TimerAction>,
    next_timer: u64,
    /// Message handle -> (group, per-group message index). A scheduled
    /// send's slot is bound when its timer fires.
    message_slots: BTreeMap<u64, (GroupId, usize)>,
    next_message: u64,
    /// Flight recorder shared by the fabric, the net, and every engine
    /// (disabled — one branch per instrumentation point — by default).
    recorder: trace::Recorder,
    recovery_config: Option<RecoveryConfig>,
    recovery_stats: RecoveryStats,
    /// When each crashed node went down (detection-latency baseline).
    crash_times: BTreeMap<usize, SimTime>,
    /// Engine events fed so far (the chaos harness's notion of a
    /// deterministic protocol step).
    fed_events: u64,
    /// Step -> nodes to crash just before feeding that step's event.
    event_crashes: BTreeMap<u64, Vec<usize>>,
    /// Per-NIC send admission (None = unpaced, the default; see
    /// [`crate::PacerConfig`]).
    pacer: Option<PacerState>,
    /// Pool of recycled engine-action buffers: `feed` pops one, fills it
    /// via [`GroupEngine::handle_into`], executes, and returns it — no
    /// per-event `Vec` allocation. A pool (not a single buffer) because
    /// executing actions can feed further events reentrantly.
    action_pool: Vec<Vec<Action>>,
    /// Controlled scheduler shared with the fabric when exploration is
    /// driving the run; the cluster consults it for pacer admission
    /// ties so every layer's choices form one global sequence.
    scheduler: Option<verbs::SharedScheduler>,
    /// Deliberately seeded ordering bugs (mutation testing of the
    /// exploration harness); empty in normal operation.
    mutations: Vec<Mutation>,
    /// [`Mutation::LazyRecvPost`] state: receives whose posting was
    /// (buggily) deferred, flushed at the owning node's next delivery.
    lazy_recvs: BTreeMap<usize, Vec<(QpHandle, u64)>>,
    /// Reliability policy newly created groups inherit
    /// ([`crate::ClusterBuilder::reliability`]).
    default_reliability: Option<ReliabilityPolicy>,
    /// Sender-side reliability state, keyed by the sender's local
    /// endpoint; entries die with the queue pair at epoch teardown.
    rel_send: BTreeMap<QpHandle, RelSendState>,
    /// Receiver-side reliability state, keyed by the receiver's local
    /// endpoint.
    rel_recv: BTreeMap<QpHandle, RelRecvState>,
    /// Cluster-wide counters of everything the reliability layer did.
    rel_stats: ReliabilityStats,
    /// Multi-sender atomic multicast overlays (see
    /// [`SimCluster::create_atomic_group`]); each owns one RDMC
    /// subgroup per sender.
    atomics: Vec<AtomicRuntime>,
    /// When capturing ([`Cluster::enable_engine_log`]), every engine
    /// event in feed order — the raw material of the
    /// `transport_equivalence` gate.
    engine_log: Option<Vec<EngineLogEntry>>,
}

/// One captured engine event (see [`Cluster::enable_engine_log`]): the
/// exact [`Event`] fed to `group`'s engine at `rank`, in feed order.
/// Deliberately time-free, so logs from different transports compare
/// bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineLogEntry {
    /// The group whose engine received the event.
    pub group: GroupId,
    /// The member rank the event was fed to.
    pub rank: Rank,
    /// The protocol event itself.
    pub event: Event,
}

/// A cluster over the simulated verbs fabric — the classic simulation
/// driver, and the reference [`Transport`] every other backend is
/// gated against.
pub type SimCluster = Cluster<Fabric>;

/// A deliberately seeded ordering bug, for mutation-testing the
/// `analyzer::explore` harness: each variant re-introduces a class of
/// bug the invariant suite must catch mechanically. Hidden from docs —
/// this is test scaffolding, not API.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Resurrects the PR 5 determinism bug: epoch teardown iterates the
    /// queue-pair map in hash order, so two runs of the *same* choice
    /// sequence diverge. Caught by the replay-determinism audit.
    UnsortedQpTeardown,
    /// Reorders the §4.2 same-instant receive/send pair: a readiness
    /// grant posts its one-sided write first and defers the receive
    /// post until the node's next delivery (a plausible "batch the recv
    /// posts off the critical path" optimisation). Under orderings
    /// where the peer's block send beats that next delivery, the send
    /// finds no posted receive and the RNR machinery arms. Caught by
    /// the zero-RNR invariant.
    LazyRecvPost,
    /// Classic off-by-one in gap repair: every NACK requests the range
    /// starting one past its first missing block, so the first loss of
    /// each gap is never retransmitted. The receiver's retry budget
    /// drains re-requesting the same wrong range and it escalates,
    /// evicting a healthy sender — caught by the crash-free
    /// completeness invariant (messages the evicted sender alone held
    /// go undelivered on a run with no injected crash).
    NackOffByOne,
    /// Classic off-by-one in the atomic delivery gate: a data slot is
    /// released when the stability frontier reaches its sequence number
    /// instead of strictly exceeding it, so every message is delivered
    /// one step *before* it is stable (and possibly before it is even
    /// locally received). The `StableFrontier` trace events still
    /// record the true minima, so the trace oracle's ordering rule
    /// catches the premature `AtomicDelivered` mechanically.
    FrontierOffByOne,
}

impl<T: Transport> Cluster<T> {
    /// The constructor proper ([`crate::ClusterBuilder::build`] ends
    /// here).
    pub(crate) fn from_transport(fabric: T) -> Self {
        Cluster {
            fabric,
            groups: Vec::new(),
            qp_owner: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_timer: 0,
            message_slots: BTreeMap::new(),
            next_message: 0,
            recorder: trace::Recorder::disabled(),
            recovery_config: None,
            recovery_stats: RecoveryStats::default(),
            crash_times: BTreeMap::new(),
            fed_events: 0,
            event_crashes: BTreeMap::new(),
            pacer: None,
            action_pool: Vec::new(),
            scheduler: None,
            mutations: Vec::new(),
            lazy_recvs: BTreeMap::new(),
            default_reliability: None,
            rel_send: BTreeMap::new(),
            rel_recv: BTreeMap::new(),
            rel_stats: ReliabilityStats::default(),
            atomics: Vec::new(),
            engine_log: None,
        }
    }

    /// Starts capturing every engine event ([`EngineLogEntry`]) fed
    /// from now on. The log is the transport-equivalence evidence: two
    /// backends carrying the same workload must produce identical
    /// per-channel event sequences. Call before any traffic.
    pub fn enable_engine_log(&mut self) {
        if self.engine_log.is_none() {
            self.engine_log = Some(Vec::new());
        }
    }

    /// The captured engine events, in feed order (empty unless
    /// [`Cluster::enable_engine_log`] ran first).
    pub fn engine_log(&self) -> &[EngineLogEntry] {
        self.engine_log.as_deref().unwrap_or(&[])
    }

    /// Attaches a controlled scheduler ([`crate::ClusterBuilder::scheduler`]
    /// is the public path): the fabric's same-instant delivery races and
    /// the pacer's admission ties become explicit choice points resolved
    /// by `scheduler`. Call before running any traffic.
    pub(crate) fn set_scheduler(&mut self, scheduler: verbs::SharedScheduler) {
        self.fabric.set_scheduler(scheduler.clone());
        self.scheduler = Some(scheduler);
    }

    /// Seeds a deliberate ordering bug (mutation testing of the
    /// exploration harness — see [`Mutation`]). Not for normal use.
    #[doc(hidden)]
    pub fn seed_mutation(&mut self, mutation: Mutation) {
        if !self.mutations.contains(&mutation) {
            self.mutations.push(mutation);
        }
    }

    fn has_mutation(&self, mutation: Mutation) -> bool {
        self.mutations.contains(&mutation)
    }

    /// Turns on per-NIC send admission ([`crate::ClusterBuilder::pacing`]
    /// is the public path). Call before any sends.
    pub(crate) fn set_pacing(&mut self, config: PacerConfig) {
        self.pacer = Some(PacerState::new(config));
    }

    /// Counters of the send admission layer, if pacing is enabled.
    pub fn pacing_stats(&self) -> Option<PacingStats> {
        self.pacer.as_ref().map(|p| p.stats)
    }

    /// Default reliability policy for groups created from now on
    /// ([`crate::ClusterBuilder::reliability`] is the public path).
    pub(crate) fn set_default_reliability(&mut self, policy: ReliabilityPolicy) {
        self.default_reliability = Some(policy);
    }

    /// Sets one group's reliability policy (see [`ReliabilityPolicy`]):
    /// block sends start carrying per-connection sequence numbers and
    /// losses are repaired per the policy instead of stalling the
    /// transfer. Call right after [`SimCluster::create_group`], before
    /// any sends — mixing tagged and untagged blocks on one connection
    /// is not supported.
    ///
    /// # Panics
    ///
    /// Panics if messages were already submitted on the group.
    pub fn set_reliability(&mut self, group: GroupId, policy: ReliabilityPolicy) {
        let g = &mut self.groups[group];
        assert!(
            g.results.is_empty(),
            "set the reliability policy before sending"
        );
        g.reliability = Some(policy);
    }

    /// Everything the reliability layer did so far, cluster-wide.
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.rel_stats
    }

    /// Recovery switch proper ([`crate::ClusterBuilder::recovery`]).
    pub(crate) fn set_recovery(&mut self, config: RecoveryConfig) {
        self.recovery_config = Some(config);
        for g in &mut self.groups {
            if g.recovery.is_none() {
                g.recovery = Some(GroupRecovery::new(g.orig_members.len()));
            }
        }
    }

    /// What the recovery orchestration detected and reconfigured so far.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// The group's current membership as original ranks, ascending (new
    /// rank = index). Before any reconfiguration this is `0..n`.
    pub fn surviving_ranks(&self, group: GroupId) -> Vec<Rank> {
        self.groups[group]
            .orig_rank
            .iter()
            .map(|&o| o as Rank)
            .collect()
    }

    /// The configuration epoch the group's members currently run.
    pub fn group_epoch(&self, group: GroupId) -> u64 {
        self.groups[group]
            .engines
            .first()
            .map(|e| e.epoch())
            .unwrap_or(0)
    }

    /// Recorder attach proper ([`crate::ClusterBuilder::flight_recorder`]).
    /// The transport stamps the recorder with its own clock and every
    /// layer — flow network, verbs, protocol engines (present and
    /// future), membership orchestration — streams structured events
    /// into it. Returns a clone of the handle for direct
    /// export/analysis; calling again replaces the recorder.
    pub(crate) fn attach_recorder(&mut self, mode: trace::Mode) -> trace::Recorder {
        let recorder = trace::Recorder::new(mode);
        self.recorder = recorder.clone();
        self.fabric.set_recorder(recorder.clone());
        for (gid, g) in self.groups.iter_mut().enumerate() {
            for (rank, engine) in g.engines.iter_mut().enumerate() {
                let scope = trace::Scope {
                    node: Some(g.spec.members[rank] as u32),
                    group: Some(gid as u32),
                    rank: Some(rank as u32),
                };
                engine.set_recorder(recorder.clone(), scope);
            }
        }
        recorder
    }

    /// The attached flight recorder (disabled unless
    /// [`crate::ClusterBuilder::flight_recorder`] or
    /// [`crate::ClusterBuilder::tracing`] configured one).
    pub fn recorder(&self) -> &trace::Recorder {
        &self.recorder
    }

    /// Snapshot of every recorded event so far, in order.
    pub fn trace_events(&self) -> Vec<trace::TraceEvent> {
        self.recorder.events()
    }

    /// One node's CPU usage report.
    pub fn cpu_report(&self, node: usize) -> CpuReport {
        self.fabric.cpu_report(NodeId(node as u32))
    }

    /// Access the underlying transport.
    pub fn transport(&self) -> &T {
        &self.fabric
    }

    /// Consumes the cluster and returns the transport — how a real
    /// backend (e.g. `rdmc-tcp`) gets its sockets back for an
    /// error-surfacing shutdown.
    pub fn into_transport(self) -> T {
        self.fabric
    }

    /// Closes a group — the §4.6 close barrier. Drains every
    /// outstanding event first (like [`Cluster::run`]), then reports
    /// whether delivery is *certified*: no member crashed, every
    /// engine is idle and unwedged, and every submitted message was
    /// delivered at every member. A `true` from every member's
    /// destroy proves every message reached every destination; a
    /// failure or incomplete transfer anywhere reports `false`.
    pub fn destroy_group(&mut self, group: GroupId) -> bool {
        self.run();
        let g = &self.groups[group];
        let all_live = g
            .spec
            .members
            .iter()
            .all(|&m| !self.fabric.is_crashed(NodeId(m as u32)));
        let engines_quiet = g.engines.iter().all(|e| e.is_idle() && !e.is_wedged());
        let delivered = g
            .results
            .iter()
            .all(|m| m.delivered_at.iter().all(|d| d.is_some()));
        all_live && engines_quiet && delivered
    }

    /// Creates a group; all members instantiate their engines and
    /// receivers pre-grant their first ready-for-block credit (the
    /// out-of-band bootstrap of §3 step 1).
    ///
    /// # Panics
    ///
    /// Panics if the member list is empty, repeats a node, or names a node
    /// outside the topology.
    pub fn create_group(&mut self, spec: GroupSpec) -> GroupId {
        let planner = Arc::new(SchedulePlanner::new(spec.algorithm.clone()));
        self.create_group_with_planner(spec, planner)
    }

    /// Like [`SimCluster::create_group`], but with an explicit schedule
    /// planner — how custom schedule families (e.g. the `baselines`
    /// crate's MPI broadcast) run on the fabric. `spec.algorithm` is kept
    /// only as a label.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimCluster::create_group`].
    pub fn create_group_with_planner(
        &mut self,
        spec: GroupSpec,
        planner: Arc<SchedulePlanner>,
    ) -> GroupId {
        assert!(!spec.members.is_empty(), "group needs members");
        let n = spec.members.len() as u32;
        let total_nodes = self.fabric.num_nodes();
        let mut rank_of_node = BTreeMap::new();
        for (rank, &node) in spec.members.iter().enumerate() {
            assert!(node < total_nodes, "member node {node} outside topology");
            let prev = rank_of_node.insert(node, rank as Rank);
            assert!(prev.is_none(), "node {node} appears twice in the group");
        }
        let gid = self.groups.len();
        let mut engines = Vec::with_capacity(spec.members.len());
        let mut initial: Vec<(Rank, Vec<Action>)> = Vec::new();
        for rank in 0..n {
            let (mut engine, actions) = GroupEngine::new(EngineConfig {
                rank,
                num_nodes: n,
                block_size: spec.block_size,
                ready_window: spec.ready_window,
                max_outstanding_sends: spec.max_outstanding_sends,
                planner: Arc::clone(&planner),
            });
            if self.recorder.is_enabled() {
                let scope = trace::Scope {
                    node: Some(spec.members[rank as usize] as u32),
                    group: Some(gid as u32),
                    rank: Some(rank),
                };
                engine.set_recorder(self.recorder.clone(), scope);
                // The constructor's idle-state credit predates the
                // recorder attach; restate it so credit accounting in the
                // trace starts balanced.
                for a in &actions {
                    if let Action::SendReady { to } = *a {
                        self.recorder
                            .record(scope, || trace::EventKind::ReadyGranted { to });
                    }
                }
            }
            engines.push(engine);
            initial.push((rank, actions));
        }
        let orig_members = spec.members.clone();
        self.groups.push(GroupRuntime {
            spec,
            engines,
            qps: BTreeMap::new(),
            results: Vec::new(),
            pending: vec![VecDeque::new(); n as usize],
            senders: Vec::new(),
            peak_backlog: 0,
            orig_members,
            orig_rank: (0..n as usize).collect(),
            atomic: None,
            overlay: None,
            recovery: self
                .recovery_config
                .is_some()
                .then(|| GroupRecovery::new(n as usize)),
            reliability: self.default_reliability,
        });
        for (rank, mut actions) in initial {
            self.execute(gid, rank, &mut actions);
        }
        gid
    }

    /// Submits a multicast of `size` random-content bytes on `group` now,
    /// returning the handle its completion record is filed under.
    pub fn submit_send(&mut self, group: GroupId, size: u64) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        let idx = self.do_submit(group, size);
        self.message_slots.insert(id.0, (group, idx));
        id
    }

    /// Records a submission's bookkeeping (delivery slots for every
    /// original member, pending-queue entries for the current ones) and
    /// hands the send to the current root engine. Returns the message's
    /// index within the group.
    fn do_submit(&mut self, group: GroupId, size: u64) -> usize {
        let now = self.fabric.now();
        let idx = {
            let g = &mut self.groups[group];
            let idx = g.results.len();
            g.results.push(MessageResult {
                group,
                index: idx,
                size,
                submitted: now,
                delivered_at: vec![None; g.orig_members.len()],
            });
            g.senders.push(g.orig_rank[0]);
            let members = g.orig_rank.clone();
            for o in members {
                g.pending[o].push_back(idx);
            }
            idx
        };
        self.feed(group, 0, Event::StartSend { size });
        let g = &mut self.groups[group];
        if let Some(root) = g.engines.first() {
            g.peak_backlog = g.peak_backlog.max(root.queue_pressure().backlog());
        }
        idx
    }

    /// Schedules a multicast submission at an absolute virtual time,
    /// returning its handle immediately. The handle resolves to a
    /// completion record ([`SimCluster::result`]) once the timer fires
    /// and the send is actually submitted.
    pub fn schedule_send_at(&mut self, group: GroupId, at: SimTime, size: u64) -> MessageId {
        let message = MessageId(self.next_message);
        self.next_message += 1;
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(
            token,
            TimerAction::Send {
                group,
                size,
                message,
            },
        );
        let root_node = self.groups[group].spec.members[0];
        let delay = at.saturating_since(self.fabric.now());
        self.fabric
            .schedule_timer(NodeId(root_node as u32), delay, token);
        message
    }

    /// The completion record of one message, by handle. `None` for a
    /// scheduled send whose timer has not fired yet.
    pub fn result(&self, id: MessageId) -> Option<&MessageResult> {
        let &(group, idx) = self.message_slots.get(&id.0)?;
        self.groups.get(group)?.results.get(idx)
    }

    /// High-water mark of the group root's send-side backlog (active +
    /// queued + resuming messages), sampled at every submission — the
    /// per-group queue-pressure evidence the traffic engine reports.
    pub fn peak_backlog(&self, group: GroupId) -> usize {
        self.groups[group].peak_backlog
    }

    /// Schedules a node crash at an absolute virtual time.
    pub fn schedule_crash_at(&mut self, node: usize, at: SimTime) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, TimerAction::Crash { node });
        let delay = at.saturating_since(self.fabric.now());
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
    }

    /// Switches a group to Derecho-style *atomic delivery* (§4.6): RDMC
    /// completions are buffered and a message is delivered only once the
    /// replicated status table shows every member holds it. Call right
    /// after [`SimCluster::create_group`], before any sends.
    ///
    /// # Panics
    ///
    /// Panics if messages were already sent on the group.
    pub fn enable_atomic_delivery(&mut self, group: GroupId) {
        let g = &mut self.groups[group];
        assert!(
            g.results.is_empty(),
            "enable atomic delivery before sending"
        );
        let n = g.spec.members.len();
        g.atomic = Some(AtomicState {
            status: vec![vec![0; n]; n],
            stable_count: vec![0; n],
            stable_at: vec![Vec::new(); n],
        });
    }

    /// Stable-delivery times per member for an atomic group, in message
    /// order (empty vectors for a plain group).
    pub fn stable_deliveries(&self, group: GroupId, rank: Rank) -> &[SimTime] {
        self.groups[group]
            .atomic
            .as_ref()
            .map(|a| a.stable_at[rank as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Checks whether new messages became stable at `rank` and records
    /// their delivery times.
    fn advance_stability(&mut self, group: GroupId, rank: Rank) {
        let now = self.fabric.now();
        let g = &mut self.groups[group];
        let Some(atomic) = g.atomic.as_mut() else {
            return;
        };
        let me = rank as usize;
        let stable_idx = atomic.status[me].iter().copied().min().expect("members");
        while atomic.stable_count[me] < stable_idx {
            atomic.stable_count[me] += 1;
            atomic.stable_at[me].push(now);
        }
    }

    /// Advances the simulation by one software-visible delivery (and
    /// everything it triggers). Returns `false` once no events remain.
    /// [`SimCluster::run`] is `while self.step() {}` plus the end-of-run
    /// asserts; model checkers call `step` directly so they can sample
    /// state digests and stop on invariant violations without tripping
    /// the terminal asserts first.
    pub fn step(&mut self) -> bool {
        match self.fabric.advance() {
            Some((time, node, delivery)) => {
                self.dispatch(time, node, delivery);
                true
            }
            None => false,
        }
    }

    /// Runs the simulation until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
        // Runtime mirror of the analyzer's static posting-order lint: the
        // ready-for-block discipline means no send ever finds its receiver
        // without a posted receive, so the RNR machinery must never arm
        // (§4.2) — not even on failure runs, where connections break via
        // crash detection rather than retry exhaustion.
        debug_assert_eq!(
            self.fabric.stats().rnr_arms,
            0,
            "a send raced ahead of receive posting and armed an RNR timer"
        );
    }

    /// Completion records for every message submitted so far, grouped by
    /// group and ordered by submission within each group. Prefer
    /// [`SimCluster::result`] with the [`MessageId`] a submission
    /// returned over positional indexing into this list.
    pub fn message_results(&self) -> Vec<MessageResult> {
        self.groups
            .iter()
            .flat_map(|g| g.results.iter().cloned())
            .collect()
    }

    /// The trace of one member (empty unless [`ClusterBuilder::tracing`](crate::ClusterBuilder::tracing)
    /// or the flight recorder was enabled before the transfer), projected
    /// from the recorder's event stream into the coarse [`TraceKind`]
    /// vocabulary the Table 1 / Fig. 5 reports consume.
    pub fn trace(&self, group: GroupId, rank: Rank) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for ev in self.recorder.events() {
            if ev.scope.group != Some(group as u32) || ev.scope.rank != Some(rank) {
                continue;
            }
            let kind = match ev.kind {
                trace::EventKind::ReadyGranted { to } => TraceKind::ReadySent { to },
                trace::EventKind::ReadyHeard { from } => TraceKind::ReadyHeard { from },
                trace::EventKind::BlockSendIssued { to, block, .. } => {
                    TraceKind::SendPosted { to, block }
                }
                trace::EventKind::BlockSendCompleted { to } => TraceKind::SendFinished { to },
                trace::EventKind::BlockArrived {
                    from, block, first, ..
                } => TraceKind::BlockArrived {
                    from,
                    // The size-announcing first block of a message keeps
                    // its classic `None` encoding.
                    block: (!first).then_some(block),
                },
                trace::EventKind::BufferRequested { .. } => TraceKind::BufferAllocated,
                trace::EventKind::Delivered { .. } => TraceKind::Delivered,
                _ => continue,
            };
            out.push(TraceRecord {
                time: SimTime::from_nanos(ev.t_ns),
                kind,
            });
        }
        out
    }

    /// True if every engine is idle and unwedged — the condition under
    /// which a group close ("destroy") would report success, guaranteeing
    /// every message reached every destination (§4.6).
    pub fn all_quiescent(&self) -> bool {
        self.groups
            .iter()
            .flat_map(|g| g.engines.iter())
            .all(|e| e.is_idle() && !e.is_wedged())
    }

    /// True if every engine hosted on a *live* node is idle and unwedged —
    /// quiescence from the survivors' point of view. With recovery
    /// enabled this is the terminal condition every chaos run must reach:
    /// all interrupted work was either finished in a later epoch or
    /// consistently abandoned.
    pub fn live_quiescent(&self) -> bool {
        self.groups.iter().all(|g| {
            g.engines.iter().enumerate().all(|(r, e)| {
                let node = NodeId(g.spec.members[r] as u32);
                self.fabric.is_crashed(node) || (e.is_idle() && !e.is_wedged())
            })
        })
    }

    /// A canonical digest of all protocol-visible cluster state,
    /// deliberately *time-free*: two executions that moved the same
    /// messages to the same members through the same epochs digest
    /// equally even if virtual timestamps differ. The explorer's
    /// determinism audit compares digests across replays of one choice
    /// sequence (must match bit-for-bit) and across DPOR-equivalent
    /// interleavings (must converge to the same terminal state).
    pub fn state_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, w: u64) {
            *h ^= w;
            *h = h.wrapping_mul(PRIME);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (gid, g) in self.groups.iter().enumerate() {
            mix(&mut h, gid as u64);
            mix(&mut h, g.orig_rank.len() as u64);
            for &o in &g.orig_rank {
                mix(&mut h, o as u64);
            }
            for e in &g.engines {
                for w in e.state_digest() {
                    mix(&mut h, w);
                }
            }
            mix(&mut h, g.results.len() as u64);
            for m in &g.results {
                mix(&mut h, m.size);
                for d in &m.delivered_at {
                    mix(&mut h, u64::from(d.is_some()));
                }
            }
            for q in &g.pending {
                mix(&mut h, q.len() as u64);
                for &idx in q {
                    mix(&mut h, idx as u64);
                }
            }
            for &s in &g.senders {
                mix(&mut h, s as u64);
            }
            if let Some(a) = &g.atomic {
                for row in &a.status {
                    for &c in row {
                        mix(&mut h, c);
                    }
                }
                for &c in &a.stable_count {
                    mix(&mut h, c);
                }
            }
        }
        // Overlay state (mixed only when atomic groups exist, so plain
        // clusters digest bit-identically to pre-overlay builds).
        for a in &self.atomics {
            mix(&mut h, a.slots.len() as u64);
            for s in &a.slots {
                mix(&mut h, s.owner as u64);
                mix(&mut h, s.seq);
                mix(&mut h, matches!(s.kind, SlotKind::Null) as u64);
                mix(&mut h, s.trimmed as u64);
            }
            for m in &a.members {
                mix(&mut h, m.next_deliver as u64);
                mix(&mut h, m.log.len() as u64);
                for d in &m.log {
                    mix(&mut h, d.slot);
                    mix(&mut h, u64::from(d.sender));
                    mix(&mut h, d.seq);
                }
            }
            for &d in &a.dead {
                mix(&mut h, d as u64);
            }
        }
        for &node in self.crash_times.keys() {
            mix(&mut h, node as u64);
        }
        h
    }

    /// The configuration epoch each *live* member of `group` currently
    /// runs (one entry per surviving engine on an uncrashed node). The
    /// explorer's view-agreement invariant requires these to be equal at
    /// quiescence: survivors that disagree about the epoch diverged
    /// during reconfiguration.
    pub fn live_member_epochs(&self, group: GroupId) -> Vec<u64> {
        let g = &self.groups[group];
        g.engines
            .iter()
            .enumerate()
            .filter(|&(r, _)| !self.fabric.is_crashed(NodeId(g.spec.members[r] as u32)))
            .map(|(_, e)| e.epoch())
            .collect()
    }

    /// Ranks that consider the group wedged (learned of a failure).
    pub fn wedged_members(&self, group: GroupId) -> Vec<Rank> {
        self.groups[group]
            .engines
            .iter()
            .filter(|e| e.is_wedged())
            .map(|e| e.rank())
            .collect()
    }

    fn dispatch(&mut self, _time: SimTime, node: NodeId, delivery: Delivery) {
        // LazyRecvPost mutation: flush this node's deferred receive posts
        // now — "the next delivery" is exactly the too-late point the bug
        // defers them to.
        if !self.lazy_recvs.is_empty() {
            if let Some(deferred) = self.lazy_recvs.remove(&(node.index())) {
                for (qp, size) in deferred {
                    // The QP may have been torn down by a reconfiguration
                    // while the post sat deferred.
                    let _ = self.fabric.post_recv(qp, WrId(0), size);
                }
            }
        }
        match delivery {
            Delivery::RecvDone { qp, imm, .. } => {
                // Completions for torn-down (old-epoch) queue pairs are
                // stale: their owner entries are gone, so ignore them.
                let Some(&(group, me, peer)) = self.qp_owner.get(&qp) else {
                    return;
                };
                if self.groups[group].reliability.is_some() {
                    // Policy groups tag every block with its connection
                    // sequence number; route through the reorder/repair
                    // shim so the engine sees a gap-free FIFO.
                    if let (Some(seq), total) = wire::unpack_imm(imm) {
                        self.rel_data_arrival(qp, seq, total);
                        return;
                    }
                }
                self.feed(
                    group,
                    me,
                    Event::BlockReceived {
                        from: peer,
                        total_size: imm,
                    },
                );
            }
            Delivery::RecvCorrupted { qp, imm, .. } => {
                let Some(&(group, me, _peer)) = self.qp_owner.get(&qp) else {
                    return;
                };
                let Some(policy) = self.groups[group].reliability else {
                    // An unprotected group has no redelivery path: the
                    // payload is garbage, the block is gone, and the
                    // transfer stalls — exactly what a lossless-assuming
                    // deployment does on a corrupting fabric. The trace
                    // oracle flags the unrepaired loss.
                    return;
                };
                // The immediate survives (headers and payload carry
                // separate CRCs), so the receiver knows exactly which
                // block to re-request — no need to wait for the gap to
                // show up in the sequence stream.
                let (Some(seq), _total) = wire::unpack_imm(imm) else {
                    return;
                };
                let fresh = {
                    let st = self.rel_recv.entry(qp).or_default();
                    !st.escalated
                        && seq >= st.next_expected
                        && !st.buffered.contains_key(&seq)
                        && st.missing.insert(seq)
                };
                if !fresh {
                    return;
                }
                if matches!(policy, ReliabilityPolicy::WedgeResume { .. }) {
                    self.rel_escalate(qp);
                } else {
                    self.rel_request(qp, group, me, &[seq]);
                    self.rel_arm_rto(qp, group, me);
                }
            }
            Delivery::SendDone { qp, wr_id } => {
                let freed = self.release_send_slot(qp, wr_id);
                if let Some(&(group, me, peer)) = self.qp_owner.get(&qp) {
                    self.feed(group, me, Event::SendCompleted { to: peer });
                }
                // Pump after feeding: sends the completion just triggered
                // are in the queue by now, so the policy arbitrates them
                // against everything already waiting.
                if let Some(node) = freed {
                    self.pump(node);
                }
            }
            Delivery::WriteDone { .. } => {}
            Delivery::WriteArrived { qp, tag, payload } => {
                let Some(&(group, me, peer)) = self.qp_owner.get(&qp) else {
                    return;
                };
                match tag {
                    TAG_READY => {
                        self.feed(group, me, Event::ReadyReceived { from: peer });
                    }
                    TAG_FAILURE => {
                        let failed =
                            u32::from_le_bytes(payload[..4].try_into().expect("failure payload"));
                        self.feed(group, me, Event::PeerFailed { rank: failed });
                        self.note_suspicion(group, me, failed);
                    }
                    TAG_STATUS => {
                        let count =
                            u64::from_le_bytes(payload[..8].try_into().expect("status payload"));
                        if let Some(a) = self.groups[group].atomic.as_mut() {
                            let cell = &mut a.status[me as usize][peer as usize];
                            *cell = (*cell).max(count);
                        }
                        self.advance_stability(group, me);
                    }
                    TAG_VIEW => {
                        self.view_update(group, me, peer, &payload);
                    }
                    TAG_NACK => {
                        let (base, span) =
                            reliability::decode_nack(&payload).expect("nack payload");
                        self.rel_retransmit(qp, group, me, base, span);
                    }
                    TAG_RETRANS => {
                        let (seq, total) =
                            reliability::decode_repair(&payload).expect("repair payload");
                        self.rel_stats.repairs_received += 1;
                        self.record_rel(group, me, || trace::EventKind::RepairDelivered {
                            conn: qp.conn_id(),
                            seq,
                            coded: false,
                        });
                        self.rel_data_arrival(qp, seq, total);
                    }
                    TAG_PARITY => {
                        let (generation, slots) =
                            reliability::decode_parity(&payload).expect("parity payload");
                        self.rel_parity_arrival(qp, group, me, generation, slots);
                    }
                    TAG_PROBE => {
                        let frontier = reliability::decode_probe(&payload).expect("probe payload");
                        self.rel_probe_arrival(qp, group, me, frontier);
                    }
                    TAG_FRONTIER => {
                        self.atomic_frontier_arrival(group, me, &payload);
                    }
                    other => panic!("unknown control tag {other}"),
                }
            }
            Delivery::WrFlushed { qp, wr_id, recv } => {
                // Flushed WRs carry no protocol state the engines need;
                // the QpBroken notice that follows triggers wedging. But a
                // flushed *send* never gets a SendDone, so its admission
                // slot must be released here. (A flushed control write with
                // a colliding work-request id may release the slot a beat
                // early; the ledger entry leaves exactly once either way,
                // so the accounting stays balanced through teardown.)
                if !recv {
                    if let Some(node) = self.release_send_slot(qp, wr_id) {
                        self.pump(node);
                    }
                }
            }
            Delivery::QpBroken { qp } => {
                if let Some(&(group, me, peer)) = self.qp_owner.get(&qp) {
                    self.feed(group, me, Event::PeerFailed { rank: peer });
                    self.note_suspicion(group, me, peer);
                }
            }
            Delivery::Timer { token } => match self.timers.remove(&token) {
                Some(TimerAction::Send {
                    group,
                    size,
                    message,
                }) => {
                    let idx = self.do_submit(group, size);
                    self.message_slots.insert(message.0, (group, idx));
                }
                Some(TimerAction::Crash { node }) => {
                    self.crash_now(node);
                }
                Some(TimerAction::Reconfigure {
                    group,
                    version,
                    attempt,
                }) => {
                    self.try_reconfigure(group, version, attempt);
                }
                Some(TimerAction::RelRto { qp }) => {
                    self.rel_rto_fired(qp);
                }
                Some(TimerAction::RelProbe { qp }) => {
                    self.rel_probe_fired(qp);
                }
                Some(TimerAction::AtomicSend { ag, size, message }) => {
                    self.atomic_send_fired(ag, size, message);
                }
                None => {
                    let _ = node; // stale or foreign timer: ignore
                }
            },
        }
    }

    /// Feeds an event to one engine and executes the resulting actions.
    fn feed(&mut self, group: GroupId, rank: Rank, event: Event) {
        // Deterministic chaos trigger: crash nodes scheduled for this
        // protocol step just before the event reaches its engine.
        if let Some(nodes) = self.event_crashes.remove(&self.fed_events) {
            for victim in nodes {
                self.crash_now(victim);
            }
        }
        self.fed_events += 1;
        let node = self.groups[group].spec.members[rank as usize];
        if self.fabric.is_crashed(NodeId(node as u32)) {
            return; // dead software runs no handlers
        }
        if let Some(log) = self.engine_log.as_mut() {
            log.push(EngineLogEntry {
                group,
                rank,
                event: event.clone(),
            });
        }
        let mut actions = self.action_pool.pop().unwrap_or_default();
        self.groups[group].engines[rank as usize]
            .handle_into(event, &mut actions)
            .unwrap_or_else(|e| panic!("group {group} rank {rank}: protocol violation: {e}"));
        self.execute(group, rank, &mut actions);
        actions.clear();
        self.action_pool.push(actions);
    }

    /// Lazily creates the queue pair between two group members.
    fn ensure_qp(&mut self, group: GroupId, a: Rank, b: Rank) -> QpHandle {
        if let Some(&qp) = self.groups[group].qps.get(&(a, b)) {
            return qp;
        }
        let na = NodeId(self.groups[group].spec.members[a as usize] as u32);
        let nb = NodeId(self.groups[group].spec.members[b as usize] as u32);
        let (qa, qb) = self.fabric.connect(na, nb);
        self.groups[group].qps.insert((a, b), qa);
        self.groups[group].qps.insert((b, a), qb);
        self.qp_owner.insert(qa, (group, a, b));
        self.qp_owner.insert(qb, (group, b, a));
        qa
    }

    fn execute(&mut self, group: GroupId, rank: Rank, actions: &mut Vec<Action>) {
        let node = NodeId(self.groups[group].spec.members[rank as usize] as u32);
        // The first-block copy is charged *after* all posts from this
        // handler: the paper's receivers post their receives first "and in
        // parallel, copy the first block" (§4.2), so the copy must not
        // delay readiness grants or relays.
        let mut deferred_copy = SimDuration::ZERO;
        for action in actions.drain(..) {
            match action {
                Action::SendReady { to } => {
                    let qp = self.ensure_qp(group, rank, to);
                    let block_size = self.groups[group].spec.block_size;
                    if self.has_mutation(Mutation::LazyRecvPost) {
                        // Seeded §4.2 inversion: announce readiness first
                        // and batch the receive post to "the next time this
                        // node's software runs". Under most interleavings
                        // the deferred post still wins the race; under some
                        // the peer's block send arrives first and finds no
                        // receive — the RNR bug the explorer must find.
                        let _ = self.fabric.post_write(
                            qp,
                            WrId(0),
                            TAG_READY,
                            Bytes::from_static(b"RDY"),
                            None,
                        );
                        self.lazy_recvs
                            .entry(node.index())
                            .or_default()
                            .push((qp, block_size));
                        continue;
                    }
                    // Readiness implies the receive is pre-posted (§4.2):
                    // post it first so the peer's send always lands.
                    // Ignore failures: the group is wedging if the QP broke.
                    let _ = self.fabric.post_recv(qp, WrId(0), block_size);
                    let _ = self.fabric.post_write(
                        qp,
                        WrId(0),
                        TAG_READY,
                        Bytes::from_static(b"RDY"),
                        None,
                    );
                }
                Action::SendBlock {
                    to,
                    block,
                    bytes,
                    total_size,
                    ..
                } => {
                    self.admit_or_queue_block(group, rank, to, block, bytes, total_size);
                }
                Action::AllocateBuffer { size } => {
                    // malloc on the critical path (§4.6) gates everything;
                    // the copy of the size-announcing first block into the
                    // new buffer (Table 1 "Copy Time") is deferred past the
                    // posts below.
                    let profile = self.fabric.profile(node).clone();
                    let first_block = size.min(self.groups[group].spec.block_size);
                    self.fabric.consume_cpu(node, profile.malloc_latency);
                    deferred_copy += profile.memcpy_time(first_block);
                }
                Action::DeliverMessage { size } => {
                    let now = self.fabric.now();
                    let g = &mut self.groups[group];
                    let orig = g.orig_rank[rank as usize];
                    let idx = g.pending[orig].pop_front().unwrap_or_else(|| {
                        panic!("group {group} rank {rank}: delivery with no pending message")
                    });
                    g.results[idx].delivered_at[orig] = Some(now);
                    let _ = size;
                    // Atomic mode: publish the new received-count to every
                    // peer's status table and re-evaluate stability.
                    let count = {
                        let g = &self.groups[group];
                        let o = g.orig_rank[rank as usize];
                        g.results
                            .iter()
                            .filter(|m| m.delivered_at[o].is_some())
                            .count() as u64
                    };
                    let is_atomic = self.groups[group].atomic.is_some();
                    if is_atomic {
                        if let Some(a) = self.groups[group].atomic.as_mut() {
                            a.status[rank as usize][rank as usize] = count;
                        }
                        let n = self.groups[group].spec.members.len() as Rank;
                        for peer in 0..n {
                            if peer == rank {
                                continue;
                            }
                            let peer_node =
                                NodeId(self.groups[group].spec.members[peer as usize] as u32);
                            if self.fabric.is_crashed(peer_node) {
                                continue;
                            }
                            let qp = self.ensure_qp(group, rank, peer);
                            let _ = self.fabric.post_write(
                                qp,
                                WrId(count),
                                TAG_STATUS,
                                Bytes::copy_from_slice(&count.to_le_bytes()),
                                None,
                            );
                        }
                        self.advance_stability(group, rank);
                    }
                    // Atomic overlay: a subgroup delivery resolves one of
                    // its sender's data slots at this member — advance
                    // the member's received frontier and re-run its
                    // delivery engine.
                    if self.groups[group].overlay.is_some() {
                        self.atomic_on_rdmc_delivery(group, rank);
                    }
                }
                Action::RelayFailure { failed } => {
                    let n = self.groups[group].spec.members.len() as Rank;
                    for peer in 0..n {
                        if peer == rank {
                            continue;
                        }
                        let peer_node =
                            NodeId(self.groups[group].spec.members[peer as usize] as u32);
                        if self.fabric.is_crashed(peer_node) {
                            continue;
                        }
                        let qp = self.ensure_qp(group, rank, peer);
                        let _ = self.fabric.post_write(
                            qp,
                            WrId(1),
                            TAG_FAILURE,
                            Bytes::copy_from_slice(&failed.to_le_bytes()),
                            None,
                        );
                    }
                }
            }
        }
        if deferred_copy > SimDuration::ZERO {
            self.fabric.consume_cpu(node, deferred_copy);
        }
    }

    /// Routes an engine block send through the admission layer: unpaced
    /// clusters post straight to the fabric; paced ones enqueue and let
    /// the policy decide what the NIC's free slots carry.
    fn admit_or_queue_block(
        &mut self,
        group: GroupId,
        rank: Rank,
        to: Rank,
        block: u32,
        bytes: u64,
        total_size: u64,
    ) {
        let node = self.groups[group].spec.members[rank as usize];
        let Some(p) = self.pacer.as_mut() else {
            self.post_block(group, rank, to, block, bytes, total_size);
            return;
        };
        let max = p.config.max_inflight;
        let np = p.nodes.entry(node).or_default();
        // Invariant: after every pump, a non-empty queue means the NIC is
        // saturated — so a send arriving with a free slot is admitted by
        // the pump below without ever waiting.
        if np.inflight >= max {
            p.stats.deferred_sends += 1;
        }
        let enqueued_ns = self.recorder.now();
        np.queue.push_back(QueuedSend {
            group,
            rank,
            to,
            block,
            bytes,
            total_size,
            enqueued_ns,
        });
        let depth = np.queue.len();
        p.stats.peak_queue_depth = p.stats.peak_queue_depth.max(depth);
        self.pump(node);
    }

    /// Admits queued sends on `node` while it has free admission slots,
    /// in policy order. With a controlled scheduler attached, genuine
    /// admission ties (more than one equally-preferred send) become
    /// explicit choice points the scheduler resolves.
    fn pump(&mut self, node: usize) {
        loop {
            // Borrow scope: compute the policy's tied candidates, then
            // release the pacer borrow before consulting the scheduler.
            let (first, candidates) = {
                let Some(p) = self.pacer.as_mut() else {
                    return;
                };
                let config = p.config;
                let Some(np) = p.nodes.get_mut(&node) else {
                    return;
                };
                if np.inflight >= config.max_inflight {
                    return;
                }
                let tied = PacerState::pick_tied(&config, np);
                let Some(&first) = tied.first() else {
                    return;
                };
                let candidates: Vec<verbs::Candidate> = if tied.len() > 1 {
                    tied.iter()
                        .map(|&slot| verbs::Candidate {
                            seq: slot as u64,
                            node: node as u32,
                            conn: None,
                            kind: verbs::CandidateKind::PacerSend {
                                group: np.queue[slot].group as u64,
                                slot: slot as u64,
                            },
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                (first, candidates)
            };
            let i = match (&self.scheduler, candidates.len()) {
                (Some(sched), 2..) => {
                    let point = verbs::ChoicePoint {
                        time_ns: self.fabric.now().as_nanos(),
                        kind: verbs::PointKind::PacerTie,
                        candidates: &candidates,
                    };
                    let chosen = verbs::sched::pick(sched, &point);
                    match candidates[chosen].kind {
                        verbs::CandidateKind::PacerSend { slot, .. } => slot as usize,
                        _ => first,
                    }
                }
                _ => first,
            };
            let p = self.pacer.as_mut().expect("pacing on");
            let np = p.nodes.get_mut(&node).expect("node has a pacer entry");
            let qs = np.queue.remove(i).expect("picked index in range");
            np.rr_last = Some(qs.group);
            // A rejected post (the connection broke while the send sat in
            // the queue) takes no slot, so the loop just tries the next
            // candidate.
            if self.post_block(qs.group, qs.rank, qs.to, qs.block, qs.bytes, qs.total_size) {
                self.recorder
                    .record(trace::Scope::group_rank(qs.group as u32, qs.rank), || {
                        trace::EventKind::SendAdmitted {
                            to: qs.to,
                            block: qs.block,
                            queued_ns: self.recorder.now().saturating_sub(qs.enqueued_ns),
                        }
                    });
            }
        }
    }

    /// Posts one block send to the fabric, recording it in the pacer's
    /// ledger (so its completion releases the admission slot) when pacing
    /// is on. Returns whether the fabric accepted the post.
    fn post_block(
        &mut self,
        group: GroupId,
        rank: Rank,
        to: Rank,
        block: u32,
        bytes: u64,
        total_size: u64,
    ) -> bool {
        let qp = self.ensure_qp(group, rank, to);
        // Policy groups tag each block with its connection sequence
        // number (packed alongside the message size) and ledger it for
        // retransmission; plain groups keep the raw size immediate, so
        // lossless runs stay bit-for-bit unchanged.
        let policy = self.groups[group].reliability;
        let now_ns = self.fabric.now().as_nanos();
        let imm = match policy {
            Some(p) => {
                let st = self.rel_send.entry(qp).or_default();
                let seq = st.next_seq;
                st.next_seq += 1;
                st.ledger.insert(seq, (bytes, total_size));
                st.last_post_ns = now_ns;
                if matches!(p, ReliabilityPolicy::ErasureCode { .. }) {
                    st.gen_slots.push((seq, bytes, total_size));
                }
                wire::pack_imm(seq, total_size)
            }
            None => total_size,
        };
        let posted = self
            .fabric
            .post_send(qp, WrId(u64::from(block)), bytes, imm, None)
            .is_ok();
        // Debug-build mirror of the static invariant: a block send is
        // emitted only against a ready credit, and each credit was granted
        // after the matching receive was posted — so the receiver's queue
        // cannot be empty here unless the connection already broke.
        #[cfg(debug_assertions)]
        {
            let peer_qp = self.groups[group].qps[&(to, rank)];
            let snap = self.fabric.posting_snapshot(peer_qp);
            debug_assert!(
                snap.broken || snap.posted_recvs >= 1,
                "group {group}: rank {rank} posted block {block} to {to} \
                 with no receive posted at the target"
            );
        }
        if posted {
            let node = self.groups[group].spec.members[rank as usize];
            if let Some(p) = self.pacer.as_mut() {
                p.admitted.insert((qp, WrId(u64::from(block))), node);
                p.nodes.entry(node).or_default().inflight += 1;
            }
            if policy.is_some() {
                // Closes the erasure generation if this block filled it,
                // and (re)arms the quiet-period frontier probe.
                self.rel_flush_parity(group, rank, qp, false);
                self.rel_arm_probe(qp, group, rank);
            }
        }
        posted
    }

    /// Releases the admission slot a retiring work request held, if it
    /// was a pacer-admitted block send. Returns the posting node so the
    /// caller can pump its queue.
    fn release_send_slot(&mut self, qp: QpHandle, wr_id: WrId) -> Option<usize> {
        let p = self.pacer.as_mut()?;
        let node = p.admitted.remove(&(qp, wr_id))?;
        if let Some(np) = p.nodes.get_mut(&node) {
            np.inflight = np.inflight.saturating_sub(1);
        }
        Some(node)
    }
}

/// Simulation-only surface: knobs and accessors that exist on the
/// simulated verbs [`Fabric`] but have no meaning on a real transport.
impl Cluster<Fabric> {
    /// Attaches a fault model to the fabric: allocator-visible transfers
    /// (block sends, retransmissions, parity — anything above the tiny
    /// control-write bypass) become subject to seeded loss and
    /// corruption per [`simnet::FaultProfile`]. A clean profile leaves
    /// the fabric lossless and runs bit-for-bit identical to one that
    /// never called this.
    pub fn set_fault_profile(&mut self, profile: simnet::FaultProfile) {
        self.fabric.set_fault_profile(profile);
    }

    /// Offers up to `budget` deliver-or-drop choice points to the
    /// attached controlled scheduler (model-checking loss sites instead
    /// of sampling them; requires a scheduler).
    pub fn set_loss_choice_budget(&mut self, budget: u64) {
        self.fabric.set_loss_choice_budget(budget);
    }

    /// Access the underlying fabric (topology, link accounting, CPU).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

/// Failure injection and the epoch-based recovery orchestration (the
/// module docs' "membership service"). Everything here runs *outside*
/// the protocol engines: engines only ever see `PeerFailed` events and
/// `install_epoch` calls, exactly like a real RDMC deployment under an
/// external membership layer (§2.4).
impl<T: Transport> Cluster<T> {
    /// Crashes a node immediately: its queues drop, in-flight work is
    /// flushed, and peers detect the broken connections.
    pub fn crash_now(&mut self, node: usize) {
        let now = self.fabric.now();
        self.crash_times.entry(node).or_insert(now);
        self.fabric.crash(NodeId(node as u32));
        // Dead software posts nothing: whatever the node's admission queue
        // still held dies with it (its posted sends flush separately).
        if let Some(p) = self.pacer.as_mut() {
            if let Some(np) = p.nodes.get_mut(&node) {
                np.queue.clear();
            }
        }
    }

    /// Crashes `node` just before the `n`-th engine event (0-based,
    /// cluster-wide) is fed — the chaos harness's deterministic "crash at
    /// protocol step `n`" trigger. `n = 0` crashes before any protocol
    /// activity at all.
    pub fn crash_after_events(&mut self, node: usize, n: u64) {
        self.event_crashes.entry(n).or_default().push(node);
    }

    /// Engine events fed so far (the protocol-step counter
    /// [`SimCluster::crash_after_events`] indexes into).
    pub fn events_fed(&self) -> u64 {
        self.fed_events
    }

    /// When `node` went down, if it crashed.
    pub fn crash_time(&self, node: usize) -> Option<SimTime> {
        self.crash_times.get(&node).copied()
    }

    /// Severs the queue pair between two current members of `group`
    /// without crashing either node (a link flap). Both endpoints will
    /// suspect each other; because there is no rejoin path, the agreed
    /// view evicts every suspected member even though its node is alive.
    pub fn inject_link_flap(&mut self, group: GroupId, a: Rank, b: Rank) {
        let qp = self.ensure_qp(group, a, b);
        self.fabric.break_qp(qp);
    }

    /// Registers `me`'s suspicion that current-rank `failed` is gone,
    /// spreads it epidemically, and arms a reconfiguration timer.
    fn note_suspicion(&mut self, group: GroupId, me: Rank, failed: Rank) {
        let Some(config) = self.recovery_config.clone() else {
            return;
        };
        let now = self.fabric.now();
        let me_node = self.groups[group].spec.members[me as usize];
        if self.fabric.is_crashed(NodeId(me_node as u32)) {
            return;
        }
        let orig_me = self.groups[group].orig_rank[me as usize];
        let orig_failed = self.groups[group].orig_rank[failed as usize];
        if orig_me == orig_failed {
            return;
        }
        let (payload, newly, version) = {
            let g = &mut self.groups[group];
            let Some(rec) = g.recovery.as_mut() else {
                return;
            };
            let Some(payload) = rec.trackers[orig_me].suspect(orig_failed as u32) else {
                return; // already suspected locally: nothing new to spread
            };
            rec.cycle_started.get_or_insert(now);
            let newly = rec.detected.insert(orig_failed as Rank);
            (payload, newly, rec.version)
        };
        self.recorder.record(
            trace::Scope {
                node: Some(me_node as u32),
                group: Some(group as u32),
                rank: Some(me),
            },
            || trace::EventKind::Suspected {
                failed: orig_failed as u32,
            },
        );
        if newly {
            let node = self.groups[group].orig_members[orig_failed];
            self.recovery_stats.detections.push(DetectionRecord {
                group,
                failed: orig_failed as Rank,
                node,
                suspected_at: now,
            });
        }
        self.broadcast_view(group, me, &payload);
        self.arm_reconfigure(group, me, version, 0, config.grace);
    }

    /// Handles an incoming `TAG_VIEW` write: merge it monotonically, wedge
    /// the local engine on any newly learned failure, echo growth, and arm
    /// a reconfiguration timer.
    fn view_update(&mut self, group: GroupId, me: Rank, peer: Rank, payload: &[u8]) {
        let Some(config) = self.recovery_config.clone() else {
            return;
        };
        let now = self.fabric.now();
        let me_node = self.groups[group].spec.members[me as usize];
        if self.fabric.is_crashed(NodeId(me_node as u32)) {
            return;
        }
        let orig_me = self.groups[group].orig_rank[me as usize];
        let orig_peer = self.groups[group].orig_rank[peer as usize];
        let (echo, newly_suspected, version) = {
            let g = &mut self.groups[group];
            let Some(rec) = g.recovery.as_mut() else {
                return;
            };
            let before = rec.trackers[orig_me].suspected();
            let echo = rec.trackers[orig_me].apply_remote(orig_peer as u32, payload);
            let after = rec.trackers[orig_me].suspected();
            let newly: Vec<u32> = after.difference(&before).copied().collect();
            if !newly.is_empty() {
                rec.cycle_started.get_or_insert(now);
            }
            (echo, newly, rec.version)
        };
        if !newly_suspected.is_empty() {
            let newly = newly_suspected.len() as u32;
            self.recorder.record(
                trace::Scope {
                    node: Some(me_node as u32),
                    group: Some(group as u32),
                    rank: Some(me),
                },
                || trace::EventKind::ViewMerged {
                    from: orig_peer as u32,
                    newly,
                },
            );
        }
        for &o in &newly_suspected {
            let o = o as usize;
            let newly_detected = {
                let g = &mut self.groups[group];
                g.recovery
                    .as_mut()
                    .expect("recovery on")
                    .detected
                    .insert(o as Rank)
            };
            if newly_detected {
                let node = self.groups[group].orig_members[o];
                self.recovery_stats.detections.push(DetectionRecord {
                    group,
                    failed: o as Rank,
                    node,
                    suspected_at: now,
                });
            }
            // Wedge my engine on the newly learned failure.
            if o != orig_me {
                if let Some(cur) = self.groups[group].current_of(o) {
                    self.feed(group, me, Event::PeerFailed { rank: cur });
                }
            }
        }
        if let Some(echo) = echo {
            self.broadcast_view(group, me, &echo);
        }
        if !newly_suspected.is_empty() {
            self.arm_reconfigure(group, me, version, 0, config.grace);
        }
    }

    /// Posts a view-table row update from `me` to every live current peer.
    fn broadcast_view(&mut self, group: GroupId, me: Rank, payload: &[u8]) {
        let n = self.groups[group].spec.members.len() as Rank;
        for peer in 0..n {
            if peer == me {
                continue;
            }
            let peer_node = NodeId(self.groups[group].spec.members[peer as usize] as u32);
            if self.fabric.is_crashed(peer_node) {
                continue;
            }
            let qp = self.ensure_qp(group, me, peer);
            let _ = self.fabric.post_write(
                qp,
                WrId(2),
                TAG_VIEW,
                Bytes::copy_from_slice(payload),
                None,
            );
        }
    }

    /// Schedules a reconfiguration attempt on `me`'s node after `delay`.
    fn arm_reconfigure(
        &mut self,
        group: GroupId,
        me: Rank,
        version: u64,
        attempt: u32,
        delay: SimDuration,
    ) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(
            token,
            TimerAction::Reconfigure {
                group,
                version,
                attempt,
            },
        );
        let node = self.groups[group].spec.members[me as usize];
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
    }

    /// One reconfiguration attempt: install the agreed view if the
    /// epidemic has converged, otherwise retry with bounded exponential
    /// backoff and force the view after `force_after` fruitless tries.
    fn try_reconfigure(&mut self, group: GroupId, version: u64, attempt: u32) {
        let Some(config) = self.recovery_config.clone() else {
            return;
        };
        if self.groups[group].recovery.as_ref().map(|r| r.version) != Some(version) {
            return; // a newer epoch was installed since this timer was armed
        }
        let live: Vec<Rank> = (0..self.groups[group].spec.members.len() as Rank)
            .filter(|&r| {
                let node = NodeId(self.groups[group].spec.members[r as usize] as u32);
                !self.fabric.is_crashed(node)
            })
            .collect();
        let Some(&coordinator) = live.first() else {
            // Group extinct: close the cycle so stale timers die.
            let g = &mut self.groups[group];
            if let Some(rec) = g.recovery.as_mut() {
                rec.version += 1;
                rec.cycle_started = None;
            }
            return;
        };
        // First live member with an agreement candidate (mutually
        // suspecting flap victims never produce one themselves).
        let candidate: Option<View> = {
            let g = &self.groups[group];
            let rec = g.recovery.as_ref().expect("recovery on");
            live.iter()
                .find_map(|&r| rec.trackers[g.orig_rank[r as usize]].agreed_view())
        };
        let agreed = candidate.filter(|view| {
            let g = &self.groups[group];
            let rec = g.recovery.as_ref().expect("recovery on");
            live.iter().all(|&r| {
                let o = g.orig_rank[r as usize];
                view.failed.contains(&(o as u32))
                    || rec.trackers[o].agreed_view().as_ref() == Some(view)
            })
        });
        if let Some(view) = agreed {
            // A would-be survivor whose node is already down means the
            // epidemic is behind the fabric: inject the suspicion at every
            // live member and come back, so the installed view never
            // contains a corpse.
            let undetected: Vec<u32> = view
                .members
                .iter()
                .copied()
                .filter(|&o| {
                    let node = NodeId(self.groups[group].orig_members[o as usize] as u32);
                    self.fabric.is_crashed(node)
                })
                .collect();
            if undetected.is_empty() {
                self.perform_reconfiguration(group, view, false);
                return;
            }
            for o in undetected {
                self.suspect_everywhere(group, o);
            }
            self.arm_reconfigure(group, coordinator, version, attempt + 1, config.grace);
            return;
        }
        if attempt + 1 >= config.force_after {
            self.force_reconfiguration(group, &live);
            return;
        }
        let backoff = SimDuration::from_nanos(
            config
                .grace
                .as_nanos()
                .saturating_mul(1u64 << attempt.min(20)),
        )
        .min(config.max_backoff);
        self.arm_reconfigure(group, coordinator, version, attempt + 1, backoff);
    }

    /// Makes every live member suspect original rank `o` directly — the
    /// simulation's stand-in for a heavyweight external failure detector.
    fn suspect_everywhere(&mut self, group: GroupId, o: u32) {
        let now = self.fabric.now();
        let n = self.groups[group].spec.members.len() as Rank;
        for r in 0..n {
            let node = NodeId(self.groups[group].spec.members[r as usize] as u32);
            if self.fabric.is_crashed(node) {
                continue;
            }
            let orig_r = self.groups[group].orig_rank[r as usize];
            if orig_r as u32 == o {
                continue;
            }
            let (payload, newly) = {
                let g = &mut self.groups[group];
                let Some(rec) = g.recovery.as_mut() else {
                    return;
                };
                rec.cycle_started.get_or_insert(now);
                let payload = rec.trackers[orig_r].suspect(o);
                let newly = rec.detected.insert(o as Rank);
                (payload, newly)
            };
            if payload.is_some() {
                self.recorder.record(
                    trace::Scope {
                        node: Some(node.0),
                        group: Some(group as u32),
                        rank: Some(r),
                    },
                    || trace::EventKind::Suspected { failed: o },
                );
            }
            if newly {
                let fnode = self.groups[group].orig_members[o as usize];
                self.recovery_stats.detections.push(DetectionRecord {
                    group,
                    failed: o as Rank,
                    node: fnode,
                    suspected_at: now,
                });
            }
            if let Some(cur) = self.groups[group].current_of(o as usize) {
                if cur != r {
                    self.feed(group, r, Event::PeerFailed { rank: cur });
                }
            }
            if let Some(p) = payload {
                self.broadcast_view(group, r, &p);
            }
        }
    }

    /// Last resort after `force_after` attempts: union every suspicion and
    /// every fabric-level crash into one view and install it.
    fn force_reconfiguration(&mut self, group: GroupId, live: &[Rank]) {
        let n_orig = self.groups[group].orig_members.len();
        let mut mask: BTreeSet<u32> = BTreeSet::new();
        {
            let g = &self.groups[group];
            let rec = g.recovery.as_ref().expect("recovery on");
            for &r in live {
                mask.extend(rec.trackers[g.orig_rank[r as usize]].suspected());
            }
            for o in 0..n_orig {
                let crashed = self.fabric.is_crashed(NodeId(g.orig_members[o] as u32));
                if crashed || g.current_of(o).is_none() {
                    mask.insert(o as u32);
                }
            }
        }
        let members: Vec<u32> = (0..n_orig as u32).filter(|o| !mask.contains(o)).collect();
        if members.is_empty() {
            let g = &mut self.groups[group];
            if let Some(rec) = g.recovery.as_mut() {
                rec.version += 1;
                rec.cycle_started = None;
            }
            return;
        }
        for &o in &mask {
            self.suspect_everywhere(group, o);
        }
        let epoch = {
            let g = &self.groups[group];
            let rec = g.recovery.as_ref().expect("recovery on");
            members
                .iter()
                .map(|&o| rec.trackers[o as usize].installed_epoch())
                .max()
                .expect("non-empty members")
                + 1
        };
        let view = View {
            epoch,
            failed: mask,
            members,
        };
        self.perform_reconfiguration(group, view, true);
    }

    /// Installs an agreed (or forced) view: evicts the failed members,
    /// plans a resume for every interrupted message from the survivors'
    /// wedge-time bitmaps, tears down the old epoch's queue pairs,
    /// renumbers the survivors, and installs the new epoch on every
    /// engine and tracker.
    fn perform_reconfiguration(&mut self, group: GroupId, view: View, forced: bool) {
        let now = self.fabric.now();
        assert!(
            self.groups[group].atomic.is_none(),
            "atomic-delivery groups do not reconfigure"
        );
        // Members this view change actually removes (still present in the
        // current epoch's membership), in original ranks.
        let removed: Vec<Rank> = {
            let g = &self.groups[group];
            view.failed
                .iter()
                .filter(|&&o| g.current_of(o as usize).is_some())
                .map(|&o| o as Rank)
                .collect()
        };
        if removed.is_empty() {
            let g = &mut self.groups[group];
            if let Some(rec) = g.recovery.as_mut() {
                rec.version += 1;
                rec.cycle_started = None;
            }
            return;
        }
        // Evict: a suspected member with a live node (e.g. a link-flap
        // victim) leaves the fabric too — there is no rejoin path, and a
        // half-connected member must not keep acting.
        let evict: Vec<usize> = {
            let g = &self.groups[group];
            view.failed
                .iter()
                .map(|&o| g.orig_members[o as usize])
                .filter(|&node| !self.fabric.is_crashed(NodeId(node as u32)))
                .collect()
        };
        for node in evict {
            self.crash_now(node);
        }
        // Wedge every surviving engine that has not yet learned of the
        // failure (install_epoch requires a wedged engine).
        let delta_cur: Vec<Rank> = {
            let g = &self.groups[group];
            removed
                .iter()
                .filter_map(|&o| g.current_of(o as usize))
                .collect()
        };
        let n_cur = self.groups[group].spec.members.len() as Rank;
        for r in 0..n_cur {
            let node = NodeId(self.groups[group].spec.members[r as usize] as u32);
            if self.fabric.is_crashed(node) {
                continue;
            }
            if !self.groups[group].engines[r as usize].is_wedged() {
                let failed = delta_cur.first().copied().expect("non-empty removal");
                self.feed(group, r, Event::PeerFailed { rank: failed });
            }
        }
        let survivors_orig: Vec<usize> = view.members.iter().map(|&o| o as usize).collect();
        let ns = survivors_orig.len();
        let block_size = self.groups[group].spec.block_size;
        // Snapshot every survivor's wedge-time transfer state, keyed by
        // message index. An engine's undelivered transfers line up with
        // the front of that member's pending queue (both are in message
        // order, and the engine only knows about messages it has begun).
        let mut status_of: BTreeMap<(usize, usize), TransferStatus> = BTreeMap::new();
        let mut queued_at_root: BTreeSet<usize> = BTreeSet::new();
        {
            let g = &self.groups[group];
            for &o in &survivors_orig {
                let cur = g.current_of(o).expect("survivor is a current member") as usize;
                let mut pend = g.pending[o].iter();
                for s in g.engines[cur].incomplete_transfers() {
                    if s.delivered {
                        continue; // delivered pre-wedge: holdings are full
                    }
                    let idx = *pend
                        .next()
                        .expect("undelivered engine transfer has a pending slot");
                    status_of.insert((o, idx), s);
                }
                // The surviving root's queued-but-unstarted sends restart
                // naturally in the new epoch (install_epoch keeps them);
                // they need no resume plan.
                if cur == 0 {
                    let qn = g.engines[0].queued_sizes().count();
                    for &idx in g.pending[o].iter().rev().take(qn) {
                        queued_at_root.insert(idx);
                    }
                }
            }
        }
        let incomplete: BTreeSet<usize> = {
            let g = &self.groups[group];
            survivors_orig
                .iter()
                .flat_map(|&o| g.pending[o].iter().copied())
                .filter(|idx| !queued_at_root.contains(idx))
                .collect()
        };
        // Plan every interrupted message: resume block-wise, re-multicast
        // from a lone full holder, or consistently abandon.
        let mut resumes_by_rank: Vec<Vec<ResumeTransfer>> = vec![Vec::new(); ns];
        let mut abandoned: Vec<usize> = Vec::new();
        let (mut n_resumed, mut n_remulti, mut n_complete, mut n_blocks) = (0usize, 0, 0, 0);
        for &idx in &incomplete {
            let size = self.groups[group].results[idx].size;
            let k = (size.div_ceil(block_size)).max(1) as usize;
            let (holdings, delivered_flags): (Vec<Vec<bool>>, Vec<bool>) = {
                let g = &self.groups[group];
                survivors_orig
                    .iter()
                    .map(|&o| {
                        let done = g.results[idx].delivered_at[o].is_some();
                        let have = if done || g.senders.get(idx) == Some(&o) {
                            vec![true; k]
                        } else if let Some(s) = status_of.get(&(o, idx)) {
                            debug_assert_eq!(s.have.len(), k, "bitmap shape");
                            s.have.clone()
                        } else {
                            vec![false; k]
                        };
                        (have, done)
                    })
                    .unzip()
            };
            match plan_message_resume(&holdings) {
                MessagePlan::Unrecoverable => abandoned.push(idx),
                MessagePlan::Resume { schedule, strategy } => {
                    match strategy {
                        ResumeStrategy::AlreadyComplete => n_complete += 1,
                        ResumeStrategy::Remulticast => n_remulti += 1,
                        ResumeStrategy::BlockResume => n_resumed += 1,
                    }
                    n_blocks += schedule.num_transfers();
                    let rts = resume_transfers(&schedule, size, &holdings, &delivered_flags);
                    for (r, rt) in rts.into_iter().enumerate() {
                        resumes_by_rank[r].push(rt);
                    }
                }
            }
        }
        // A lost message is dropped group-wide: no survivor may sit
        // waiting for a delivery that can never happen.
        if !abandoned.is_empty() {
            let aset: BTreeSet<usize> = abandoned.iter().copied().collect();
            let g = &mut self.groups[group];
            for q in &mut g.pending {
                q.retain(|i| !aset.contains(i));
            }
        }
        // Tear down every old-epoch queue pair in rank order; completions
        // still in flight for them become ownerless and are ignored. The
        // map is ordered, so plain iteration is already run-to-run stable
        // (hash-order teardown was the PR 5 determinism regression).
        let old_qps: Vec<QpHandle> = if self.has_mutation(Mutation::UnsortedQpTeardown) {
            // Seeded PR 5 regression: copy through a hash map (fresh
            // `RandomState` per map) so teardown order varies even across
            // two runs of the identical choice sequence — exactly what
            // the replay-determinism audit exists to catch.
            #[allow(clippy::disallowed_types)]
            let scrambled: std::collections::HashMap<(Rank, Rank), QpHandle> = self.groups[group]
                .qps
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect();
            scrambled.into_values().collect()
        } else {
            self.groups[group].qps.values().copied().collect()
        };
        for qp in old_qps {
            self.qp_owner.remove(&qp);
            self.fabric.break_qp(qp);
            // Reliability state dies with the queue pair: buffered
            // not-yet-fed blocks are re-fetched by the resume plans
            // (slightly wasteful, never wrong), and outstanding
            // RelRto/RelProbe timers go stale via the owner lookup.
            self.rel_send.remove(&qp);
            self.rel_recv.remove(&qp);
        }
        self.groups[group].qps.clear();
        // Queued (never-posted) sends of this group carry old-epoch ranks;
        // drop them — the resume plans below re-issue whatever still
        // matters, in new-epoch terms.
        if let Some(p) = self.pacer.as_mut() {
            for np in p.nodes.values_mut() {
                np.queue.retain(|q| q.group != group);
            }
        }
        // Renumber: survivors in ascending original rank become the new
        // ranks 0..ns, on a fresh set of connections.
        let first_suspected;
        {
            let g = &mut self.groups[group];
            let old_cur: Vec<usize> = survivors_orig
                .iter()
                .map(|&o| g.current_of(o).expect("survivor is current") as usize)
                .collect();
            let mut old_engines: Vec<Option<GroupEngine>> = g.engines.drain(..).map(Some).collect();
            g.engines = old_cur
                .iter()
                .map(|&c| old_engines[c].take().expect("distinct current ranks"))
                .collect();
            g.spec.members = survivors_orig.iter().map(|&o| g.orig_members[o]).collect();
            g.orig_rank = survivors_orig.clone();
            let rec = g.recovery.as_mut().expect("recovery on");
            first_suspected = rec.cycle_started.take().unwrap_or(now);
            rec.version += 1;
        }
        self.recorder.record(trace::Scope::group(group as u32), || {
            trace::EventKind::ReconfigInstalled {
                epoch: view.epoch,
                survivors: survivors_orig.iter().map(|&o| o as u32).collect(),
                removed: removed.clone(),
                abandoned: abandoned.iter().map(|&i| i as u64).collect(),
                resumed_blocks: n_blocks as u64,
                forced,
            }
        });
        // Install the epoch everywhere, then let the engines act: the
        // membership maps are already in new-epoch shape, so the actions'
        // lazily created queue pairs bind the right nodes.
        let mut installs: Vec<(Rank, Vec<Action>)> = Vec::new();
        let mut payloads: Vec<(Rank, Vec<u8>)> = Vec::new();
        for (new_rank, &o) in survivors_orig.iter().enumerate() {
            let resumes = std::mem::take(&mut resumes_by_rank[new_rank]);
            let g = &mut self.groups[group];
            let actions = g.engines[new_rank].install_epoch(EpochInstall {
                epoch: view.epoch,
                rank: new_rank as Rank,
                num_nodes: ns as u32,
                resumes,
            });
            let payload = g.recovery.as_mut().expect("recovery on").trackers[o].install(view.epoch);
            installs.push((new_rank as Rank, actions));
            payloads.push((new_rank as Rank, payload));
        }
        for (r, payload) in payloads {
            self.broadcast_view(group, r, &payload);
        }
        for (r, mut actions) in installs {
            self.execute(group, r, &mut actions);
        }
        self.recovery_stats.reconfigurations.push(ReconfigRecord {
            group,
            epoch: view.epoch,
            removed,
            survivors: survivors_orig.iter().map(|&o| o as Rank).collect(),
            first_suspected_at: first_suspected,
            installed_at: now,
            resumed: n_resumed,
            remulticast: n_remulti,
            already_complete: n_complete,
            resumed_blocks: n_blocks,
            abandoned: abandoned.clone(),
            forced,
        });
        // Atomic overlay: apply the ragged trim — mark the subgroup's
        // abandoned data slots and the failed senders' unannounced nulls
        // trimmed, resync survivor frontier replicas, and re-run every
        // survivor's delivery engine.
        if self.groups[group].overlay.is_some() {
            self.atomic_on_reconfig(group, &abandoned);
        }
    }
}

/// The lossy-fabric reliability layer (see [`ReliabilityPolicy`] and
/// the `reliability` module docs). Everything here runs *between* the
/// fabric and the protocol engines: engines still see a gap-free FIFO
/// of `BlockReceived` events per peer, exactly as on a lossless fabric
/// — the shim reorders, repairs, reconstructs, or escalates underneath.
impl<T: Transport> Cluster<T> {
    /// Records a reliability-layer event under `rank`'s full scope.
    fn record_rel<F: FnOnce() -> trace::EventKind>(&self, group: GroupId, rank: Rank, f: F) {
        let node = self.groups[group].spec.members[rank as usize] as u32;
        self.recorder.record(
            trace::Scope {
                node: Some(node),
                group: Some(group as u32),
                rank: Some(rank),
            },
            f,
        );
    }

    /// A sequence-tagged data block reached the receiver (original
    /// send, retransmission, or parity reconstruction — all converge
    /// here). Feeds the engine every block that became contiguous, and
    /// starts repair for any gap this arrival revealed.
    fn rel_data_arrival(&mut self, qp: QpHandle, seq: u64, total: u64) {
        let Some(&(group, me, peer)) = self.qp_owner.get(&qp) else {
            return; // stale completion for a torn-down queue pair
        };
        let policy = self.groups[group].reliability;
        let (feeds, newly_missing) = {
            let st = self.rel_recv.entry(qp).or_default();
            if st.escalated {
                return; // the epoch recovery path owns this hole now
            }
            if seq < st.next_expected || st.buffered.contains_key(&seq) {
                // A late repair racing a re-NACK, or double reconstruction.
                self.rel_stats.duplicates += 1;
                return;
            }
            st.missing.remove(&seq);
            let mut feeds: Vec<u64> = Vec::new();
            let mut newly: Vec<u64> = Vec::new();
            if seq == st.next_expected {
                // The hole frontier advanced: feed this block and drain
                // the contiguous run of buffered successors behind it.
                feeds.push(total);
                st.next_expected += 1;
                while let Some(t) = st.buffered.remove(&st.next_expected) {
                    feeds.push(t);
                    st.next_expected += 1;
                }
                if st.missing.is_empty() {
                    st.rto_attempt = 0; // gap closed: fresh budget next time
                }
            } else {
                // Arrived past the frontier: every sequence in between
                // that is neither buffered nor already being chased is a
                // newly detected loss.
                st.buffered.insert(seq, total);
                for s in st.next_expected..seq {
                    if !st.buffered.contains_key(&s) && !st.missing.contains(&s) {
                        newly.push(s);
                    }
                }
                for &s in &newly {
                    st.missing.insert(s);
                }
            }
            (feeds, newly)
        };
        for t in feeds {
            self.feed(
                group,
                me,
                Event::BlockReceived {
                    from: peer,
                    total_size: t,
                },
            );
        }
        if newly_missing.is_empty() {
            return;
        }
        match policy {
            Some(ReliabilityPolicy::WedgeResume { .. }) => self.rel_escalate(qp),
            Some(_) => {
                self.rel_request(qp, group, me, &newly_missing);
                self.rel_arm_rto(qp, group, me);
            }
            None => {}
        }
    }

    /// Sends one NACK per contiguous missing range (tiny control writes
    /// on the reliable bypass).
    fn rel_request(&mut self, qp: QpHandle, group: GroupId, me: Rank, seqs: &[u64]) {
        let mut ranges = reliability::contiguous_ranges(seqs);
        if self.has_mutation(Mutation::NackOffByOne) {
            // Seeded bug: the first missing block of the first range is
            // never requested.
            if let Some(first) = ranges.first_mut() {
                first.0 += 1;
                first.1 -= 1;
            }
            ranges.retain(|&(_, span)| span > 0);
        }
        for (base, span) in ranges {
            self.rel_stats.nacks_sent += 1;
            self.record_rel(group, me, || trace::EventKind::NackSent {
                conn: qp.conn_id(),
                end: qp.endpoint(),
                seq: base,
                span: u64::from(span),
            });
            let _ = self.fabric.post_write(
                qp,
                WrId(3),
                TAG_NACK,
                reliability::encode_nack(base, span),
                None,
            );
        }
    }

    /// Arms the receiver's retry timer (idempotent): when it fires with
    /// blocks still missing, they are re-NACKed with exponential backoff
    /// until the budget is spent, then the connection escalates.
    fn rel_arm_rto(&mut self, qp: QpHandle, group: GroupId, me: Rank) {
        let Some(policy) = self.groups[group].reliability else {
            return;
        };
        let retry = policy.retry();
        let delay = {
            let st = self.rel_recv.entry(qp).or_default();
            if st.rto_armed || st.escalated {
                return;
            }
            st.rto_armed = true;
            SimDuration::from_nanos(
                retry
                    .rto
                    .as_nanos()
                    .saturating_mul(1u64 << st.rto_attempt.min(6)),
            )
        };
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, TimerAction::RelRto { qp });
        let node = self.groups[group].spec.members[me as usize];
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
    }

    /// The receiver retry timer fired.
    fn rel_rto_fired(&mut self, qp: QpHandle) {
        let Some(&(group, me, _peer)) = self.qp_owner.get(&qp) else {
            return; // old-epoch timer: the queue pair is gone
        };
        let Some(policy) = self.groups[group].reliability else {
            return;
        };
        let budget = policy.retry().budget;
        let missing: Vec<u64> = {
            let Some(st) = self.rel_recv.get_mut(&qp) else {
                return;
            };
            st.rto_armed = false;
            if st.escalated {
                return;
            }
            if st.missing.is_empty() {
                st.rto_attempt = 0;
                return; // everything healed before the timer fired
            }
            st.rto_attempt += 1;
            if st.rto_attempt > budget {
                Vec::new() // budget spent: escalate below
            } else {
                st.missing.iter().copied().collect()
            }
        };
        if missing.is_empty() {
            self.rel_escalate(qp);
            return;
        }
        self.rel_request(qp, group, me, &missing);
        self.rel_arm_rto(qp, group, me);
    }

    /// Loss beyond the policy's repair means: hand the connection to the
    /// §2.4 membership service (recovery on) or break it so both sides
    /// wedge (recovery off). Either way, no silent hang.
    fn rel_escalate(&mut self, qp: QpHandle) {
        let Some(&(group, me, peer)) = self.qp_owner.get(&qp) else {
            return;
        };
        {
            let st = self.rel_recv.entry(qp).or_default();
            if st.escalated {
                return;
            }
            st.escalated = true;
        }
        self.rel_stats.escalations += 1;
        self.record_rel(group, me, || trace::EventKind::LossEscalated {
            conn: qp.conn_id(),
        });
        if self.recovery_config.is_some() {
            // The persistently lossy sender is treated as failed: the
            // group reconfigures and interrupted messages resume from
            // the survivors' wedge-time bitmaps (or are consistently
            // abandoned when the evicted sender held the only copy).
            self.feed(group, me, Event::PeerFailed { rank: peer });
            self.note_suspicion(group, me, peer);
        } else {
            self.fabric.break_qp(qp);
        }
    }

    /// An incoming NACK at the data sender: retransmit every ledgered
    /// block of the requested range as a one-sided write (no posted
    /// receive consumed — repairs sit outside the credit flow).
    fn rel_retransmit(&mut self, qp: QpHandle, group: GroupId, me: Rank, base: u64, span: u32) {
        let repairs: Vec<(u64, u64, u64)> = {
            let Some(st) = self.rel_send.get(&qp) else {
                return;
            };
            (base..base.saturating_add(u64::from(span)))
                .filter_map(|s| st.ledger.get(&s).map(|&(len, total)| (s, len, total)))
                .collect()
        };
        for (seq, len, total) in repairs {
            self.rel_stats.repairs_sent += 1;
            self.record_rel(group, me, || trace::EventKind::RepairSent {
                conn: qp.conn_id(),
                seq,
            });
            let _ = self.fabric.post_write(
                qp,
                WrId(wire::REPAIR_WR_BASE + seq),
                TAG_RETRANS,
                reliability::encode_repair(seq, total, len),
                None,
            );
        }
    }

    /// An erasure parity write landed: if the generation's missing
    /// blocks number at most the parity received for it, reconstruct
    /// them locally (the no-round-trip repair); otherwise register the
    /// gaps so the retry timer can fall back to NACK retransmission.
    fn rel_parity_arrival(
        &mut self,
        qp: QpHandle,
        group: GroupId,
        me: Rank,
        generation: u64,
        slots: Vec<(u64, u64)>,
    ) {
        enum Outcome {
            Done,
            Repair(Vec<(u64, u64)>),
            Register(Vec<u64>),
        }
        let outcome = {
            let st = self.rel_recv.entry(qp).or_default();
            if st.escalated {
                return;
            }
            let (received, covered) = {
                let pg = st
                    .parity
                    .entry(generation)
                    .or_insert_with(|| ParityGen { received: 0, slots });
                pg.received += 1;
                (pg.received as usize, pg.slots.clone())
            };
            let missing: Vec<(u64, u64)> = covered
                .into_iter()
                .filter(|&(s, _)| s >= st.next_expected && !st.buffered.contains_key(&s))
                .collect();
            if missing.is_empty() {
                st.parity.remove(&generation);
                Outcome::Done
            } else if missing.len() <= received {
                st.parity.remove(&generation);
                Outcome::Repair(missing)
            } else {
                Outcome::Register(missing.iter().map(|&(s, _)| s).collect())
            }
        };
        match outcome {
            Outcome::Done => {}
            Outcome::Repair(missing) => {
                for (seq, total) in missing {
                    self.rel_stats.parity_repairs += 1;
                    self.record_rel(group, me, || trace::EventKind::RepairDelivered {
                        conn: qp.conn_id(),
                        seq,
                        coded: true,
                    });
                    self.rel_data_arrival(qp, seq, total);
                }
            }
            Outcome::Register(seqs) => {
                {
                    let st = self.rel_recv.entry(qp).or_default();
                    for &s in &seqs {
                        st.missing.insert(s);
                    }
                }
                self.rel_arm_rto(qp, group, me);
            }
        }
    }

    /// A sender frontier probe landed: anything below the announced
    /// frontier that never arrived is a trailing loss — the kind no
    /// later arrival would ever reveal.
    fn rel_probe_arrival(&mut self, qp: QpHandle, group: GroupId, me: Rank, frontier: u64) {
        let Some(policy) = self.groups[group].reliability else {
            return;
        };
        let newly: Vec<u64> = {
            let st = self.rel_recv.entry(qp).or_default();
            if st.escalated {
                return;
            }
            let newly: Vec<u64> = (st.next_expected..frontier)
                .filter(|s| !st.buffered.contains_key(s) && !st.missing.contains(s))
                .collect();
            for &s in &newly {
                st.missing.insert(s);
            }
            newly
        };
        if newly.is_empty() {
            return;
        }
        if matches!(policy, ReliabilityPolicy::WedgeResume { .. }) {
            self.rel_escalate(qp);
        } else {
            self.rel_request(qp, group, me, &newly);
            self.rel_arm_rto(qp, group, me);
        }
    }

    /// Emits the open erasure generation's parity writes if it is full
    /// (or `force`, for the trailing partial generation at a quiet
    /// period). Parity is block-sized — it costs honest bandwidth and
    /// is itself subject to the fault model.
    fn rel_flush_parity(&mut self, group: GroupId, rank: Rank, qp: QpHandle, force: bool) {
        let Some(ReliabilityPolicy::ErasureCode { data, parity, .. }) =
            self.groups[group].reliability
        else {
            return;
        };
        let (generation, slots) = {
            let Some(st) = self.rel_send.get_mut(&qp) else {
                return;
            };
            if st.gen_slots.is_empty() || (!force && (st.gen_slots.len() as u32) < data) {
                return;
            }
            let generation = st.next_gen;
            st.next_gen += 1;
            (generation, std::mem::take(&mut st.gen_slots))
        };
        let pad = slots.iter().map(|&(_, len, _)| len).max().unwrap_or(0);
        let covered: Vec<(u64, u64)> = slots.iter().map(|&(s, _, t)| (s, t)).collect();
        let payload = reliability::encode_parity(generation, &covered, pad);
        self.record_rel(group, rank, || trace::EventKind::ParitySent {
            conn: qp.conn_id(),
            seq: covered[0].0,
            data: covered.len() as u64,
        });
        for j in 0..u64::from(parity) {
            self.rel_stats.parity_writes_sent += 1;
            let wr = wire::PARITY_WR_BASE + generation * u64::from(parity) + j;
            let _ = self
                .fabric
                .post_write(qp, WrId(wr), TAG_PARITY, payload.clone(), None);
        }
    }

    /// Arms the sender's quiet-period probe timer (idempotent; one per
    /// connection).
    fn rel_arm_probe(&mut self, qp: QpHandle, group: GroupId, rank: Rank) {
        let Some(policy) = self.groups[group].reliability else {
            return;
        };
        {
            let st = self.rel_send.entry(qp).or_default();
            if st.probe_armed {
                return;
            }
            st.probe_armed = true;
        }
        let node = self.groups[group].spec.members[rank as usize];
        self.rel_schedule_probe(qp, node, policy.probe_delay());
    }

    fn rel_schedule_probe(&mut self, qp: QpHandle, node: usize, delay: SimDuration) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, TimerAction::RelProbe { qp });
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
    }

    /// The sender quiet-period timer fired: if sends are still flowing,
    /// push the timer out; if the frontier was already announced and
    /// nothing is pending, stop (termination); otherwise flush any
    /// partial parity generation and announce the frontier so the
    /// receiver can detect trailing losses.
    fn rel_probe_fired(&mut self, qp: QpHandle) {
        let Some(&(group, rank, _peer)) = self.qp_owner.get(&qp) else {
            return; // old-epoch timer
        };
        let Some(policy) = self.groups[group].reliability else {
            return;
        };
        let delay = policy.probe_delay();
        let now_ns = self.fabric.now().as_nanos();
        enum Next {
            Done,
            Rearm(SimDuration),
            Probe(u64),
        }
        let next = {
            let Some(st) = self.rel_send.get_mut(&qp) else {
                return;
            };
            st.probe_armed = false;
            let quiet_at = st.last_post_ns.saturating_add(delay.as_nanos());
            if now_ns < quiet_at {
                st.probe_armed = true;
                Next::Rearm(SimDuration::from_nanos(quiet_at - now_ns))
            } else if st.probed_upto == st.next_seq && st.gen_slots.is_empty() {
                Next::Done
            } else {
                st.probe_armed = true;
                Next::Probe(st.next_seq)
            }
        };
        let node = self.groups[group].spec.members[rank as usize];
        match next {
            Next::Done => {}
            Next::Rearm(d) => self.rel_schedule_probe(qp, node, d),
            Next::Probe(frontier) => {
                // The trailing partial erasure generation flushes now —
                // its parity would otherwise wait for blocks that are
                // never coming.
                self.rel_flush_parity(group, rank, qp, true);
                if let Some(st) = self.rel_send.get_mut(&qp) {
                    st.probed_upto = frontier;
                }
                self.rel_stats.probes_sent += 1;
                let _ = self.fabric.post_write(
                    qp,
                    WrId(4),
                    TAG_PROBE,
                    reliability::encode_probe(frontier),
                    None,
                );
                // One more firing confirms quiescence (or probes again
                // if new sends moved the frontier meanwhile).
                self.rel_schedule_probe(qp, node, delay);
            }
        }
    }
}

/// The Derecho-style **atomic multicast** overlay (see the
/// `atomic` module docs): one RDMC subgroup per sender with
/// the member list rotated so each sender roots its own subgroup,
/// per-sender received/stability frontiers in SST rows spread
/// epidemically over `TAG_FRONTIER` control writes, and a per-member
/// delivery engine that holds completed RDMC messages until the
/// live-minimum frontier makes them stable, then issues total-order
/// upcalls in global slot order.
impl<T: Transport> Cluster<T> {
    /// Creates a multi-sender **atomic** group: every node in
    /// `spec.members` becomes a sender of a Derecho-style atomic
    /// multicast. Internally this creates one RDMC subgroup per sender
    /// (the member list rotated left so that sender sits at rank 0 —
    /// the `rdmc_bw_test` rotation idiom) and message slots rotate
    /// round-robin through the members. Submit with
    /// [`SimCluster::submit_atomic`] (or
    /// [`SimCluster::submit_atomic_from`] /
    /// [`SimCluster::schedule_atomic_send_at`]) and read each member's
    /// total-order delivery log with [`SimCluster::atomic_log`]: the
    /// logs are gapless, identical prefixes at every member, even
    /// across crashes when recovery is enabled.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimCluster::create_group`],
    /// or if the group has fewer than two members.
    pub fn create_atomic_group(&mut self, spec: GroupSpec) -> AtomicGroupId {
        let n = spec.members.len();
        assert!(n >= 2, "an atomic group needs at least two members");
        let aid = self.atomics.len();
        let mut subgroups = Vec::with_capacity(n);
        for j in 0..n {
            let gid = self.create_group(GroupSpec {
                members: rotation::rotated_members(&spec.members, j),
                algorithm: spec.algorithm.clone(),
                block_size: spec.block_size,
                ready_window: spec.ready_window,
                max_outstanding_sends: spec.max_outstanding_sends,
            });
            self.groups[gid].overlay = Some((aid, j));
            subgroups.push(gid);
        }
        let members = (0..n)
            .map(|i| AtomicMember {
                tracker: ViewTracker::with_frontiers(i as u32, n as u32, n as u32),
                next_deliver: 0,
                stable_seen: vec![0; n],
                log: Vec::new(),
            })
            .collect();
        self.atomics.push(AtomicRuntime {
            nodes: spec.members,
            subgroups,
            slots: Vec::new(),
            owned: vec![0; n],
            members,
            dead: BTreeSet::new(),
            cursor: 0,
        });
        aid
    }

    /// Submits a `size`-byte message on the atomic group's next
    /// rotation slot: successive submissions rotate the sender role
    /// round-robin through the live members.
    ///
    /// # Panics
    ///
    /// Panics if every member of the group is dead.
    pub fn submit_atomic(&mut self, ag: AtomicGroupId, size: u64) -> MessageId {
        let owner = self.atomics[ag]
            .next_live_owner(self.atomics[ag].cursor)
            .expect("atomic group has live members");
        self.submit_atomic_as(ag, owner, size)
    }

    /// Submits a `size`-byte message *from a specific member*: every
    /// live slot owner between the rotation cursor and `origin`
    /// contributes a **null** slot (Spindle's null-send elision — the
    /// skip is announced through the owner's own frontier row, no data
    /// multicast at all), then `origin` takes the next data slot.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of range or was evicted by a view
    /// change.
    pub fn submit_atomic_from(&mut self, ag: AtomicGroupId, origin: usize, size: u64) -> MessageId {
        assert!(
            origin < self.atomics[ag].nodes.len(),
            "origin {origin} outside the group"
        );
        assert!(
            !self.atomics[ag].dead.contains(&origin),
            "origin {origin} was evicted"
        );
        loop {
            let w = self.atomics[ag]
                .next_live_owner(self.atomics[ag].cursor)
                .expect("origin is live");
            if w == origin {
                break;
            }
            self.push_null_slot(ag, w);
        }
        self.submit_atomic_as(ag, origin, size)
    }

    /// Schedules an atomic submission at an absolute virtual time (the
    /// slot owner is resolved at fire time from the then-current
    /// rotation cursor and live set), returning its handle immediately.
    pub fn schedule_atomic_send_at(
        &mut self,
        ag: AtomicGroupId,
        at: SimTime,
        size: u64,
    ) -> MessageId {
        let message = MessageId(self.next_message);
        self.next_message += 1;
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers
            .insert(token, TimerAction::AtomicSend { ag, size, message });
        let host = self.atomics[ag]
            .next_live_owner(self.atomics[ag].cursor)
            .expect("atomic group has live members");
        let node = self.atomics[ag].nodes[host];
        let delay = at.saturating_since(self.fabric.now());
        self.fabric
            .schedule_timer(NodeId(node as u32), delay, token);
        message
    }

    /// Member `member`'s total-order delivery log: identical `(slot,
    /// sender, seq, size)` sequences at every member (prefixes of one
    /// another while deliveries are still in flight).
    pub fn atomic_log(&self, ag: AtomicGroupId, member: usize) -> &[AtomicDelivery] {
        &self.atomics[ag].members[member].log
    }

    /// Fabric node of each member, in the unrotated declaration order
    /// (member index `i` is the identity used in slots and logs).
    pub fn atomic_nodes(&self, ag: AtomicGroupId) -> &[usize] {
        &self.atomics[ag].nodes
    }

    /// The per-sender RDMC subgroup ids: `atomic_subgroups(ag)[j]` is
    /// the subgroup rooted at member `j`; index 0 is the *anchor* whose
    /// id names the group in trace scopes.
    pub fn atomic_subgroups(&self, ag: AtomicGroupId) -> &[GroupId] {
        &self.atomics[ag].subgroups
    }

    /// Member indices still part of the group (not evicted by a view
    /// change), ascending.
    pub fn atomic_live_members(&self, ag: AtomicGroupId) -> Vec<usize> {
        self.atomics[ag]
            .live_rows()
            .into_iter()
            .map(|r| r as usize)
            .collect()
    }

    /// Total slots allocated so far (data and null, trimmed included).
    pub fn atomic_num_slots(&self, ag: AtomicGroupId) -> u64 {
        self.atomics[ag].slots.len() as u64
    }

    /// Slot numbers removed by ragged trims so far, ascending.
    pub fn atomic_trimmed_slots(&self, ag: AtomicGroupId) -> Vec<u64> {
        self.atomics[ag]
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.trimmed)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Allocates the handle and the slot, then hands the message to the
    /// owner's subgroup.
    fn submit_atomic_as(&mut self, ag: AtomicGroupId, owner: usize, size: u64) -> MessageId {
        let message = MessageId(self.next_message);
        self.next_message += 1;
        let (gid, idx) = self.do_submit_atomic(ag, owner, size, message);
        self.message_slots.insert(message.0, (gid, idx));
        message
    }

    /// A deferred [`TimerAction::AtomicSend`] fired: resolve the owner
    /// now and submit.
    fn atomic_send_fired(&mut self, ag: AtomicGroupId, size: u64, message: MessageId) {
        let Some(owner) = self.atomics[ag].next_live_owner(self.atomics[ag].cursor) else {
            return; // group extinct: the handle never resolves
        };
        let (gid, idx) = self.do_submit_atomic(ag, owner, size, message);
        self.message_slots.insert(message.0, (gid, idx));
    }

    /// Books the data slot (before the subgroup submission, which can
    /// deliver reentrantly at the root) and submits on the owner's
    /// subgroup.
    fn do_submit_atomic(
        &mut self,
        ag: AtomicGroupId,
        owner: usize,
        size: u64,
        message: MessageId,
    ) -> (GroupId, usize) {
        assert!(size > 0, "zero-size slots are nulls, not messages");
        let gid = self.atomics[ag].subgroups[owner];
        let index = self.groups[gid].results.len();
        let scope = self.atomic_scope(ag, owner);
        let slot_no = self.atomics[ag].slots.len() as u64;
        {
            let a = &mut self.atomics[ag];
            let seq = a.owned[owner];
            a.owned[owner] += 1;
            a.cursor = (owner + 1) % a.nodes.len();
            a.slots.push(Slot {
                owner,
                seq,
                kind: SlotKind::Data {
                    index,
                    size,
                    message,
                },
                trimmed: false,
            });
        }
        self.recorder
            .record(scope, || trace::EventKind::AtomicSubmitted {
                slot: slot_no,
                sender: owner as u32,
                null: false,
                size,
            });
        let idx = self.do_submit(gid, size);
        debug_assert_eq!(idx, index, "slot bookkeeping raced the subgroup submission");
        (gid, idx)
    }

    /// Books a null slot for `owner` and resolves it at the owner
    /// immediately (the announcement is the owner's own frontier-row
    /// bump, spread by [`SimCluster::atomic_pump`]'s broadcast).
    fn push_null_slot(&mut self, ag: AtomicGroupId, owner: usize) {
        let scope = self.atomic_scope(ag, owner);
        let slot_no = self.atomics[ag].slots.len() as u64;
        {
            let a = &mut self.atomics[ag];
            let seq = a.owned[owner];
            a.owned[owner] += 1;
            a.cursor = (owner + 1) % a.nodes.len();
            a.slots.push(Slot {
                owner,
                seq,
                kind: SlotKind::Null,
                trimmed: false,
            });
        }
        self.recorder
            .record(scope, || trace::EventKind::AtomicSubmitted {
                slot: slot_no,
                sender: owner as u32,
                null: true,
                size: 0,
            });
        self.atomic_pump(ag, owner);
    }

    /// Trace scope of overlay events at `member`: the *anchor* subgroup
    /// id names the group and the rank is the member index in the
    /// unrotated list.
    fn atomic_scope(&self, ag: AtomicGroupId, member: usize) -> trace::Scope {
        trace::Scope {
            node: Some(self.atomics[ag].nodes[member] as u32),
            group: Some(self.atomics[ag].subgroups[0] as u32),
            rank: Some(member as u32),
        }
    }

    /// A subgroup delivered a message at `rank`: map the subgroup-local
    /// rank back to the member index and re-run that member's frontier
    /// recompute and delivery engine.
    fn atomic_on_rdmc_delivery(&mut self, group: GroupId, rank: Rank) {
        let Some((ag, j)) = self.groups[group].overlay else {
            return;
        };
        let o = self.groups[group].orig_rank[rank as usize];
        let n = self.atomics[ag].nodes.len();
        self.atomic_pump(ag, (j + o) % n);
    }

    /// An incoming `TAG_FRONTIER` write: merge the carried row into the
    /// receiving member's SST replica and re-run its delivery engine.
    /// The payload is `row: u32 LE` followed by the tracker's 12-byte
    /// cell update.
    fn atomic_frontier_arrival(&mut self, group: GroupId, me: Rank, payload: &[u8]) {
        let Some((ag, sj)) = self.groups[group].overlay else {
            return;
        };
        let n = self.atomics[ag].nodes.len();
        let member = (sj + self.groups[group].orig_rank[me as usize]) % n;
        if self
            .fabric
            .is_crashed(NodeId(self.atomics[ag].nodes[member] as u32))
        {
            return; // dead software runs no handlers
        }
        let row = u32::from_le_bytes(payload[..4].try_into().expect("frontier row"));
        let _ = self.atomics[ag].members[member]
            .tracker
            .apply_remote(row, &payload[4..]);
        self.atomic_pump(ag, member);
    }

    /// How many of sender `j`'s slots are *resolved* at `member`, in
    /// dense per-sender sequence order: a data slot resolves when the
    /// member's replica of `j`'s subgroup delivered it locally, a null
    /// when the owner's published frontier covers it (trivially at the
    /// owner itself), and a trimmed slot unconditionally.
    fn atomic_resolved_count(&self, ag: AtomicGroupId, member: usize, j: usize) -> u64 {
        let a = &self.atomics[ag];
        let n = a.nodes.len();
        let m = &a.members[member];
        let mut f = m.tracker.frontier(member as u32, j as u32);
        for slot in a.slots.iter().filter(|s| s.owner == j) {
            if slot.seq < f {
                continue;
            }
            if slot.seq > f {
                break;
            }
            let resolved = slot.trimmed
                || match slot.kind {
                    SlotKind::Null => {
                        member == j || m.tracker.frontier(j as u32, j as u32) > slot.seq
                    }
                    SlotKind::Data { index, .. } => {
                        let o = rotation::rotated_rank(member, j, n) as usize;
                        self.groups[a.subgroups[j]].results[index].delivered_at[o].is_some()
                    }
                };
            if !resolved {
                break;
            }
            f += 1;
        }
        f
    }

    /// Recomputes `member`'s own frontier row, broadcasts any advance
    /// over the anchor subgroup's connections, and runs the delivery
    /// engine. The workhorse behind every overlay event.
    fn atomic_pump(&mut self, ag: AtomicGroupId, member: usize) {
        if self.atomics[ag].dead.contains(&member)
            || self
                .fabric
                .is_crashed(NodeId(self.atomics[ag].nodes[member] as u32))
        {
            return;
        }
        let n = self.atomics[ag].nodes.len();
        let targets: Vec<u64> = (0..n)
            .map(|j| self.atomic_resolved_count(ag, member, j))
            .collect();
        let scope = self.atomic_scope(ag, member);
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        {
            let a = &mut self.atomics[ag];
            let m = &mut a.members[member];
            for (j, &t) in targets.iter().enumerate() {
                if let Some(p) = m.tracker.advance_frontier(j as u32, t) {
                    self.recorder
                        .record(scope, || trace::EventKind::FrontierAdvanced {
                            sender: j as u32,
                            frontier: t,
                        });
                    payloads.push(p);
                }
            }
        }
        for p in payloads {
            self.atomic_broadcast_row(ag, member, &p);
        }
        self.atomic_deliver(ag, member);
    }

    /// Posts `member`'s own-row update to every live peer as a
    /// `TAG_FRONTIER` one-sided write on the anchor subgroup (16 bytes —
    /// under the tiny-write bypass, so the epidemic stays lossless even
    /// on faulty fabrics).
    fn atomic_broadcast_row(&mut self, ag: AtomicGroupId, from_member: usize, payload: &[u8]) {
        let anchor = self.atomics[ag].subgroups[0];
        let Some(me_cur) = self.groups[anchor].current_of(from_member) else {
            return; // evicted from the anchor: nothing to announce on
        };
        let mut buf = Vec::with_capacity(4 + payload.len());
        buf.extend_from_slice(&(from_member as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        let bytes = Bytes::from(buf);
        let n = self.atomics[ag].nodes.len();
        for peer in 0..n {
            if peer == from_member || self.atomics[ag].dead.contains(&peer) {
                continue;
            }
            if self
                .fabric
                .is_crashed(NodeId(self.atomics[ag].nodes[peer] as u32))
            {
                continue;
            }
            let Some(pc) = self.groups[anchor].current_of(peer) else {
                continue;
            };
            let qp = self.ensure_qp(anchor, me_cur, pc);
            let _ = self
                .fabric
                .post_write(qp, WrId(5), TAG_FRONTIER, bytes.clone(), None);
        }
    }

    /// `member`'s delivery engine: announce stability-frontier advances
    /// (always the *true* live minima — the [`Mutation::FrontierOffByOne`]
    /// gate bug below does not taint the trace, which is how the oracle
    /// catches it), then release slots in global order — trimmed slots
    /// skip, nulls skip once the member's own row covers them, data
    /// slots deliver once stable.
    fn atomic_deliver(&mut self, ag: AtomicGroupId, member: usize) {
        let now = self.fabric.now();
        let scope = self.atomic_scope(ag, member);
        let n = self.atomics[ag].nodes.len();
        let live = self.atomics[ag].live_rows();
        if live.is_empty() {
            return;
        }
        let off_by_one = self.has_mutation(Mutation::FrontierOffByOne);
        {
            let a = &mut self.atomics[ag];
            let m = &mut a.members[member];
            for j in 0..n as u32 {
                let stable = m.tracker.stable_frontier(j, &live);
                if stable > m.stable_seen[j as usize] {
                    m.stable_seen[j as usize] = stable;
                    self.recorder
                        .record(scope, || trace::EventKind::StableFrontier {
                            sender: j,
                            frontier: stable,
                        });
                }
            }
        }
        enum Step {
            Skip,
            Deliver {
                sender: u32,
                seq: u64,
                size: u64,
                message: MessageId,
            },
        }
        loop {
            let step = {
                let a = &self.atomics[ag];
                let m = &a.members[member];
                let Some(slot) = a.slots.get(m.next_deliver) else {
                    break;
                };
                if slot.trimmed {
                    Step::Skip
                } else {
                    match slot.kind {
                        SlotKind::Null => {
                            if m.tracker.frontier(member as u32, slot.owner as u32) > slot.seq {
                                Step::Skip
                            } else {
                                break;
                            }
                        }
                        SlotKind::Data { size, message, .. } => {
                            let stable = m.stable_seen[slot.owner];
                            let gate = if off_by_one { stable + 1 } else { stable };
                            if gate > slot.seq {
                                Step::Deliver {
                                    sender: slot.owner as u32,
                                    seq: slot.seq,
                                    size,
                                    message,
                                }
                            } else {
                                break;
                            }
                        }
                    }
                }
            };
            match step {
                Step::Skip => self.atomics[ag].members[member].next_deliver += 1,
                Step::Deliver {
                    sender,
                    seq,
                    size,
                    message,
                } => {
                    let slot_no = self.atomics[ag].members[member].next_deliver as u64;
                    self.recorder
                        .record(scope, || trace::EventKind::AtomicDelivered {
                            slot: slot_no,
                            sender,
                            seq,
                            size,
                        });
                    let m = &mut self.atomics[ag].members[member];
                    m.log.push(AtomicDelivery {
                        slot: slot_no,
                        sender,
                        seq,
                        size,
                        at: now,
                        message,
                    });
                    m.next_deliver += 1;
                }
            }
        }
    }

    /// The ragged trim, run after each overlay subgroup installs a new
    /// view: refresh the dead set from fabric truth, trim the
    /// reconfiguring subgroup's *abandoned* data slots and every dead
    /// sender's unannounced nulls, pool the survivors' frontier
    /// replicas (so nulls the dead sender announced to *anyone* resolve
    /// at *everyone*), and re-run every survivor's delivery engine.
    /// Safe by stability: a slot delivered anywhere was stable, stable
    /// slots are fully replicated, and fully replicated slots are never
    /// abandoned — so trims only ever remove slots nobody delivered.
    fn atomic_on_reconfig(&mut self, group: GroupId, abandoned: &[usize]) {
        let Some((ag, j)) = self.groups[group].overlay else {
            return;
        };
        let n = self.atomics[ag].nodes.len();
        for m in 0..n {
            if self
                .fabric
                .is_crashed(NodeId(self.atomics[ag].nodes[m] as u32))
            {
                self.atomics[ag].dead.insert(m);
            }
        }
        let anchor = self.atomics[ag].subgroups[0];
        let mut trims: Vec<u64> = Vec::new();
        {
            let a = &mut self.atomics[ag];
            let aset: BTreeSet<usize> = abandoned.iter().copied().collect();
            let live: Vec<usize> = (0..n).filter(|m| !a.dead.contains(m)).collect();
            // (a) this subgroup's abandoned data slots.
            if !aset.is_empty() {
                for (si, slot) in a.slots.iter_mut().enumerate() {
                    if slot.owner == j && !slot.trimmed {
                        if let SlotKind::Data { index, .. } = slot.kind {
                            if aset.contains(&index) {
                                slot.trimmed = true;
                                trims.push(si as u64);
                            }
                        }
                    }
                }
            }
            // (b) pool survivor replicas: every row cell becomes the max
            // any survivor saw (the view-change state exchange).
            for row in 0..n as u32 {
                for s in 0..n as u32 {
                    let seen = live
                        .iter()
                        .map(|&m| a.members[m].tracker.frontier(row, s))
                        .max()
                        .unwrap_or(0);
                    if seen == 0 {
                        continue;
                    }
                    for &m in &live {
                        a.members[m].tracker.resync_frontier(row, s, seen);
                    }
                }
            }
            // (c) dead senders' nulls beyond what they ever announced:
            // no survivor can learn of them now, so they are trimmed.
            let dead: Vec<usize> = a.dead.iter().copied().collect();
            for w in dead {
                let reach = live
                    .iter()
                    .map(|&m| a.members[m].tracker.frontier(w as u32, w as u32))
                    .max()
                    .unwrap_or(0);
                for (si, slot) in a.slots.iter_mut().enumerate() {
                    if slot.owner == w
                        && !slot.trimmed
                        && matches!(slot.kind, SlotKind::Null)
                        && slot.seq >= reach
                    {
                        slot.trimmed = true;
                        trims.push(si as u64);
                    }
                }
            }
        }
        trims.sort_unstable();
        for slot in trims {
            self.recorder
                .record(trace::Scope::group(anchor as u32), || {
                    trace::EventKind::AtomicTrimmed { slot }
                });
        }
        for m in self.atomic_live_members(ag) {
            self.atomic_pump(ag, m);
        }
    }
}

impl<T: Transport> std::fmt::Debug for Cluster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.fabric.now())
            .field("groups", &self.groups.len())
            .finish()
    }
}
