//! Typed, one-shot construction of [`Cluster`]s over any transport.
//!
//! The builder replaces the grow-as-you-go mutator API: every knob is
//! declared up front, the cluster comes out of [`ClusterBuilder::build`]
//! fully configured, and configuration that must precede traffic
//! (recovery, pacing, the flight recorder) cannot be applied too late
//! by accident. The builder is generic over the datapath: started from
//! a [`ClusterSpec`] or a [`Fabric`] it produces the classic
//! [`SimCluster`](crate::SimCluster); started from any other [`Transport`] (e.g.
//! `rdmc-tcp`'s nonblocking event-loop backend via
//! [`ClusterBuilder::from_transport`]) the same protocol-level knobs —
//! recovery, pacing, reliability, tracing, atomic groups — apply
//! unchanged, while the simulation-only knobs (completion modes,
//! jitter, fault injection, path interning) are only offered when the
//! transport is the simulated fabric.

use simnet::{FaultProfile, JitterModel};
use verbs::{CompletionMode, Fabric, NodeId, SharedScheduler, Transport};

use crate::cluster::{Cluster, GroupSpec, RecoveryConfig};
use crate::pacer::PacerConfig;
use crate::profiles::ClusterSpec;
use crate::reliability::ReliabilityPolicy;

/// Declarative configuration of a [`Cluster`].
///
/// # Example
///
/// ```
/// use rdmc::Algorithm;
/// use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
///
/// let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4)).build();
/// let group = cluster.create_group(GroupSpec {
///     members: vec![0, 1, 2, 3],
///     algorithm: Algorithm::BinomialPipeline,
///     block_size: 1 << 20,
///     ready_window: 2,
///     max_outstanding_sends: 2,
/// });
/// let id = cluster.submit_send(group, 8 << 20);
/// cluster.run();
/// assert!(cluster.result(id).expect("submitted").latency().is_some());
/// ```
#[must_use = "call `.build()` to obtain the cluster"]
pub struct ClusterBuilder<T: Transport = Fabric> {
    transport: T,
    recorder_mode: Option<trace::Mode>,
    recovery: Option<RecoveryConfig>,
    pacing: Option<PacerConfig>,
    scheduler: Option<SharedScheduler>,
    reliability: Option<ReliabilityPolicy>,
    atomic_groups: Vec<GroupSpec>,
    engine_log: bool,
}

impl ClusterBuilder<Fabric> {
    /// Starts from a cluster profile (topology + host model); see the
    /// [`ClusterSpec`] presets.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::from_fabric(spec.build())
    }

    /// Starts from an already-built simulated fabric, for hand-rolled
    /// topologies.
    pub fn from_fabric(fabric: Fabric) -> Self {
        Self::from_transport(fabric)
    }

    /// Turns on flow-set interning in the kernel: flows sharing an
    /// identical link path (the multicast common case) collapse into one
    /// allocation entry, so a reallocation visits each distinct *path*
    /// once instead of each *flow*. Rates are max-min fair either way;
    /// only floating-point summation order differs, so keep this off for
    /// byte-exact comparisons against legacy runs.
    pub fn intern_paths(mut self) -> Self {
        self.transport.set_path_interning(true);
        self
    }

    /// Sets one node's completion mode (polling / interrupt / hybrid).
    pub fn completion_mode(mut self, node: usize, mode: CompletionMode) -> Self {
        self.transport
            .set_completion_mode(NodeId(node as u32), mode);
        self
    }

    /// Sets one node's scheduling-jitter model.
    pub fn jitter(mut self, node: usize, jitter: JitterModel) -> Self {
        self.transport.set_jitter(NodeId(node as u32), jitter);
        self
    }

    /// Attaches a seeded fault model to the fabric (see
    /// [`simnet::FaultProfile`]): data-plane transfers become subject to
    /// per-link loss, burst loss, and corruption. Control writes under
    /// the tiny-write bypass stay reliable. A clean profile leaves the
    /// fabric bit-for-bit lossless. Pair with
    /// [`ClusterBuilder::reliability`] — an unprotected group on a lossy
    /// fabric stalls or wedges, exactly as the paper's §2.2 lossless
    /// assumption predicts.
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.transport.set_fault_profile(profile);
        self
    }
}

impl<T: Transport> ClusterBuilder<T> {
    /// Starts from any [`Transport`] — the entry point for non-simulated
    /// backends such as `rdmc-tcp`'s nonblocking event loop. All
    /// protocol-level knobs apply; the simulation-only ones
    /// (completion modes, jitter, fault injection) are absent because
    /// they have no meaning off the simulated fabric.
    pub fn from_transport(transport: T) -> Self {
        ClusterBuilder {
            transport,
            recorder_mode: None,
            recovery: None,
            pacing: None,
            scheduler: None,
            reliability: None,
            atomic_groups: Vec::new(),
            engine_log: false,
        }
    }

    /// Attaches a controlled scheduler: same-instant delivery races in
    /// the fabric and admission ties in the pacer become explicit choice
    /// points resolved by `scheduler` instead of the queue's default
    /// tie-break. This is how the `analyzer` crate's interleaving
    /// explorer drives the cluster through alternative executions; a
    /// scheduler that always answers 0 reproduces the default run.
    /// (Non-simulated transports ignore the fabric half and only route
    /// pacer ties through the scheduler.)
    pub fn scheduler(mut self, scheduler: SharedScheduler) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Turns on epoch-based failure recovery (the §2.4 membership
    /// service): failures stop wedging groups forever and instead
    /// trigger agreement, reconfiguration, and block-wise resumption.
    pub fn recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = Some(config);
        self
    }

    /// Enables protocol-event tracing: shorthand for a full-capture
    /// [`ClusterBuilder::flight_recorder`].
    pub fn tracing(self) -> Self {
        self.flight_recorder(trace::Mode::Full)
    }

    /// Attaches a flight recorder in the given capture mode; every layer
    /// (transport, verbs, engines, membership orchestration) streams
    /// structured events into it. Retrieve the handle from the built
    /// cluster via [`Cluster::recorder`].
    pub fn flight_recorder(mut self, mode: trace::Mode) -> Self {
        self.recorder_mode = Some(mode);
        self
    }

    /// Captures every engine event fed on the cluster (see
    /// [`Cluster::engine_log`]) — the raw material of the
    /// `transport_equivalence` gate.
    pub fn engine_log(mut self) -> Self {
        self.engine_log = true;
        self
    }

    /// Bounds each node's concurrent outbound block sends and picks the
    /// order in which queued sends take freed slots — the multi-tenant
    /// admission layer (see [`PacerConfig`]).
    pub fn pacing(mut self, config: PacerConfig) -> Self {
        self.pacing = Some(config);
        self
    }

    /// Default [`ReliabilityPolicy`] for every group created on the
    /// cluster: block sends carry per-connection sequence numbers, and
    /// transport losses are repaired by selective retransmission, erasure
    /// parity, or escalation to epoch recovery instead of stalling the
    /// transfer. Override per group with [`Cluster::set_reliability`].
    pub fn reliability(mut self, policy: ReliabilityPolicy) -> Self {
        self.reliability = Some(policy);
        self
    }

    /// Declares a multi-sender **atomic multicast** group (the
    /// Derecho construction over RDMC): every member of `spec.members`
    /// becomes a sender, backed by one RDMC subgroup per sender with
    /// the member list rotated so that sender sits at rank 0, and
    /// deliveries come out in an identical total order at every member.
    /// Groups declared here receive ids `0..` in declaration order;
    /// submit with [`SimCluster::submit_atomic`](crate::SimCluster) and read logs with
    /// [`Cluster::atomic_log`](crate::Cluster::atomic_log). Equivalent to calling
    /// [`Cluster::create_atomic_group`](crate::Cluster::create_atomic_group) right after `build()`.
    pub fn atomic(mut self, spec: GroupSpec) -> Self {
        self.atomic_groups.push(spec);
        self
    }

    /// Builds the configured cluster.
    pub fn build(mut self) -> Cluster<T> {
        let mut cluster = Cluster::from_transport(self.transport);
        if self.engine_log {
            cluster.enable_engine_log();
        }
        if let Some(policy) = self.reliability {
            cluster.set_default_reliability(policy);
        }
        if let Some(mode) = self.recorder_mode {
            let _ = cluster.attach_recorder(mode);
        }
        if let Some(config) = self.recovery {
            cluster.set_recovery(config);
        }
        if let Some(config) = self.pacing {
            cluster.set_pacing(config);
        }
        if let Some(scheduler) = self.scheduler {
            cluster.set_scheduler(scheduler);
        }
        for spec in std::mem::take(&mut self.atomic_groups) {
            let _ = cluster.create_atomic_group(spec);
        }
        cluster
    }
}
