//! NIC-offloaded transfers via cross-channel work requests (paper §2 and
//! Fig. 12).
//!
//! Because RDMC's schedules are deterministic, a whole multicast can be
//! posted to the NICs as a dependency graph *before any data moves*: each
//! relay enqueues, for every block, a receive and a send that hardware
//! fires the moment the receive completes — no software on the critical
//! path (Mellanox CORE-Direct). The paper evaluated this for the chain
//! schedule (their firmware crashed on fancier patterns); we implement the
//! same experiment.

use rdmc::MessageLayout;
use simnet::SimTime;
use verbs::{Delivery, Fabric, NodeId, WaitSpec, WrId};

/// Runs a fully offloaded chain multicast of `size` bytes in `block_size`
/// blocks along `members` (first member sends), returning the completion
/// time (when the last member's final block lands).
///
/// # Panics
///
/// Panics if fewer than two members are given or the transfer fails.
pub fn run_offloaded_chain(
    mut fabric: Fabric,
    members: &[usize],
    size: u64,
    block_size: u64,
) -> SimTime {
    assert!(members.len() >= 2, "chain needs at least two members");
    let layout = MessageLayout::new(size, block_size);
    let k = layout.num_blocks;
    // Wire the chain: one connection per hop.
    let mut hops = Vec::new();
    for pair in members.windows(2) {
        let (tx, rx) = fabric.connect(NodeId(pair[0] as u32), NodeId(pair[1] as u32));
        hops.push((tx, rx));
    }
    // Pre-post the whole dependency graph (this is the offload: all work
    // requests exist before the first byte moves).
    for (hop, &(tx_qp, rx_qp)) in hops.iter().enumerate() {
        for b in 0..k {
            let bytes = layout.block_bytes(b);
            fabric
                .post_recv(rx_qp, WrId(u64::from(b)), block_size)
                .expect("post recv");
            if hop == 0 {
                // The root's sends depend on nothing; FIFO order per QP
                // keeps blocks sequential.
                fabric
                    .post_send(tx_qp, WrId(u64::from(b)), bytes, size, None)
                    .expect("post send");
            }
        }
    }
    // Relay sends wait, in hardware, for the matching upstream receive.
    for (hop, &(tx_qp, _)) in hops.iter().enumerate().skip(1) {
        let (_, upstream_rx) = hops[hop - 1];
        for b in 0..k {
            let bytes = layout.block_bytes(b);
            fabric
                .post_send(
                    tx_qp,
                    WrId(u64::from(b)),
                    bytes,
                    size,
                    Some(WaitSpec {
                        qp: upstream_rx,
                        wr_id: WrId(u64::from(b)),
                    }),
                )
                .expect("post dependent send");
        }
    }
    // Run to quiescence; completion = the tail node's final receive.
    let tail = NodeId(*members.last().expect("non-empty") as u32);
    let mut done_at = None;
    let mut tail_blocks = 0;
    while let Some((t, node, delivery)) = fabric.advance() {
        if node == tail {
            if let Delivery::RecvDone { .. } = delivery {
                tail_blocks += 1;
                if tail_blocks == k {
                    done_at = Some(t);
                }
            }
        }
    }
    done_at.expect("offloaded chain never completed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;
    use rdmc::Algorithm;
    use simnet::SimDuration;

    const MB: u64 = 1 << 20;

    #[test]
    fn offloaded_chain_completes() {
        let t = run_offloaded_chain(ClusterSpec::fractus(4).build(), &[0, 1, 2, 3], 16 * MB, MB);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn offload_beats_software_chain() {
        // Fig. 12: cross-channel removes per-hop software relays, good for
        // ~5% on the paper's hardware. Our simulated software costs give a
        // comparable edge.
        let spec = ClusterSpec::fractus(6);
        let offloaded = run_offloaded_chain(spec.build(), &[0, 1, 2, 3, 4, 5], 100 * MB, MB);
        let software =
            crate::run_single_multicast(&spec, 6, Algorithm::Chain, 100 * MB, MB).latency;
        let off = offloaded.as_secs_f64();
        let sw = software.as_secs_f64();
        assert!(off < sw, "offloaded {off}s should beat software {sw}s");
        assert!(off > sw * 0.5, "the gap should be an edge, not a rout");
    }

    #[test]
    fn offloaded_chain_respects_bandwidth() {
        // 100 MB over a 100 Gb/s chain cannot beat the line-rate floor.
        let t = run_offloaded_chain(ClusterSpec::fractus(3).build(), &[0, 1, 2], 100 * MB, MB);
        let floor = 100.0 * MB as f64 * 8.0 / 100e9;
        assert!(t.as_secs_f64() > floor);
        let _ = SimDuration::ZERO;
    }
}
