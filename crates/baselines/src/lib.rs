//! # baselines — comparator broadcast algorithms
//!
//! The RDMC paper evaluates against the heavily optimised `MPI_Bcast` of
//! MVAPICH (Fig. 4) and against the one-copy-at-a-time pattern common in
//! datacenter middleware (Figs. 4, 8, 9). This crate supplies those
//! comparators as schedules that run through the *same* protocol engine
//! and simulated fabric as RDMC itself:
//!
//! - [`mvapich_bcast`] — binomial tree for small messages, Van de Geijn
//!   binomial-scatter + ring-allgather for large ones (what MVAPICH
//!   actually does).
//! - The naive sequential baseline is RDMC's own
//!   [`Algorithm::Sequential`](rdmc::Algorithm::Sequential) schedule.
//!
//! ## Example
//!
//! ```
//! use baselines::{mvapich_planner, run_mvapich_multicast};
//! use rdmc_sim::ClusterSpec;
//!
//! // One 8 MB MVAPICH-style broadcast to 4 Fractus nodes, 1 MB blocks.
//! let outcome = run_mvapich_multicast(&ClusterSpec::fractus(4), 4, 8 << 20, 1 << 20);
//! assert!(outcome.bandwidth_gbps > 1.0);
//! # let _ = mvapich_planner(8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mpi;

pub use mpi::{mvapich_bcast, scatter_ring_allgather, total_block_sends, uses_scatter};

use std::sync::Arc;

use rdmc::schedule::SchedulePlanner;
use rdmc::MessageLayout;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec, MulticastOutcome};

/// A planner serving MVAPICH-style broadcast schedules. `probe_k` must be
/// the block count the group's messages will use (MPI knows transfer
/// sizes in advance — paper §6 — so this is fair).
pub fn mvapich_planner(probe_k: u32) -> Arc<SchedulePlanner> {
    Arc::new(SchedulePlanner::from_fn("mvapich", probe_k, |n, k| {
        mvapich_bcast(n, k)
    }))
}

/// Runs one MVAPICH-style broadcast on a simulated cluster and reports
/// latency/bandwidth, mirroring
/// [`rdmc_sim::run_single_multicast`] for the baseline.
///
/// # Panics
///
/// Panics if the group exceeds the cluster or the broadcast fails to
/// complete.
pub fn run_mvapich_multicast(
    spec: &ClusterSpec,
    group_size: usize,
    size: u64,
    block_size: u64,
) -> MulticastOutcome {
    let k = MessageLayout::new(size, block_size).num_blocks;
    let mut cluster = ClusterBuilder::new(spec.clone()).build();
    let group = cluster.create_group_with_planner(
        GroupSpec {
            members: (0..group_size).collect(),
            algorithm: rdmc::Algorithm::Custom {
                name: "mvapich".to_owned(),
            },
            block_size,
            ready_window: 3,
            max_outstanding_sends: 3,
        },
        mvapich_planner(k),
    );
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let latency = result.latency().expect("broadcast completed everywhere");
    MulticastOutcome {
        size,
        group_size,
        latency,
        bandwidth_gbps: result.bandwidth_gbps().expect("nonzero latency"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdmc::Algorithm;
    use rdmc_sim::run_single_multicast;

    const MB: u64 = 1 << 20;

    #[test]
    fn mvapich_completes_on_the_fabric() {
        let spec = ClusterSpec::fractus(8);
        for n in [2usize, 3, 4, 5, 8] {
            let out = run_mvapich_multicast(&spec, n, 16 * MB, MB);
            assert!(out.bandwidth_gbps > 1.0, "n={n}: {}", out.bandwidth_gbps);
        }
    }

    #[test]
    fn mvapich_lands_between_sequential_and_pipeline() {
        // Fig. 4's ordering: sequential slowest, MVAPICH in between
        // (1.03x-3x of binomial pipeline latency), pipeline fastest.
        let spec = ClusterSpec::fractus(16);
        let size = 64 * MB;
        let seq = run_single_multicast(&spec, 16, Algorithm::Sequential, size, MB);
        let pipe = run_single_multicast(&spec, 16, Algorithm::BinomialPipeline, size, MB);
        let mpi = run_mvapich_multicast(&spec, 16, size, MB);
        assert!(
            mpi.latency < seq.latency,
            "MVAPICH {} should beat sequential {}",
            mpi.latency,
            seq.latency
        );
        let ratio = mpi.latency.as_secs_f64() / pipe.latency.as_secs_f64();
        assert!(
            (1.0..=4.0).contains(&ratio),
            "MVAPICH/pipeline latency ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn mvapich_small_message_path_works_end_to_end() {
        // 3 blocks to 8 ranks: tree regime.
        let spec = ClusterSpec::fractus(8);
        let out = run_mvapich_multicast(&spec, 8, 3 * MB, MB);
        assert!(out.bandwidth_gbps > 1.0);
    }
}
