//! MVAPICH-style `MPI_Bcast` (the paper's Fig. 4 comparator).
//!
//! MVAPICH broadcasts small messages along a binomial tree and large
//! messages with a *binomial scatter* followed by a *ring allgather* —
//! the classic Van de Geijn algorithm. We express both as
//! [`GlobalSchedule`]s so they run through the same protocol engine and
//! simulated fabric as RDMC itself, making the comparison apples-to-
//! apples at the transfer-pattern level.
//!
//! Note the asymmetry the paper calls out in §6: MPI receivers know every
//! transfer's size and root in advance, so the baseline is allowed to
//! pick its algorithm per message size and needs no first-block size
//! announcement. Build its planner with
//! [`mvapich_planner`](crate::mvapich_planner), passing the block count
//! messages will actually use.

use rdmc::schedule::{GlobalSchedule, GlobalTransfer};
use rdmc::Algorithm;

/// Messages with fewer blocks than this multiple of the group size use
/// the binomial tree (MVAPICH's small-message path).
const SCATTER_MIN_BLOCKS_PER_RANK: u32 = 1;

/// Builds the MVAPICH-style broadcast schedule for `n` ranks and `k`
/// blocks: binomial tree when `k < n`, scatter + ring allgather
/// otherwise.
///
/// # Panics
///
/// Panics if `n < 2` or `k == 0`.
pub fn mvapich_bcast(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2, "broadcast needs at least two ranks");
    assert!(k >= 1, "need at least one block");
    if k < n * SCATTER_MIN_BLOCKS_PER_RANK {
        // Small-message path: identical pattern to RDMC's binomial tree.
        let tree = GlobalSchedule::build(&Algorithm::BinomialTree, n, k);
        let steps = (0..tree.num_steps())
            .map(|j| tree.step(j).to_vec())
            .collect();
        GlobalSchedule::from_custom_steps("mvapich-tree", n, k, steps)
    } else {
        scatter_ring_allgather(n, k)
    }
}

/// The contiguous block range rank `i` owns after the scatter:
/// `[i*k/n, (i+1)*k/n)`.
fn chunk(n: u32, k: u32, i: u32) -> std::ops::Range<u32> {
    let lo = (u64::from(i) * u64::from(k) / u64::from(n)) as u32;
    let hi = (u64::from(i + 1) * u64::from(k) / u64::from(n)) as u32;
    lo..hi
}

/// Blocks owned by the binomial-tree subtree rooted at `i` (ranks
/// `i .. min(i + 2^height, n)`).
fn subtree_blocks(n: u32, k: u32, i: u32, height: u32) -> std::ops::Range<u32> {
    let end = (i + (1u32 << height)).min(n);
    chunk(n, k, i).start..chunk(n, k, end - 1).end
}

/// Van de Geijn large-message broadcast: binomial scatter, then ring
/// allgather. Valid under [`GlobalSchedule::validate_relaxed`]: the ring
/// passes chunks through the root like any other rank, and re-delivers
/// blocks that intermediate scatter nodes still hold — MPI genuinely
/// moves those bytes.
pub fn scatter_ring_allgather(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2 && k >= 1);
    let rounds = 32 - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut steps: Vec<Vec<GlobalTransfer>> = Vec::new();
    // Scatter: in round r (counting down from the top bit), every rank
    // i < 2^(rounds-1-r)... — walk the binomial tree top-down: at round m
    // (m = rounds-1 .. 0), each current holder i (i % 2^(m+1) == 0) sends
    // the subtree blocks of child i + 2^m. One block per sender per step.
    for m in (0..rounds).rev() {
        let stride = 1u32 << m;
        // Transfers of this round, grouped by sender.
        let mut per_sender: Vec<(u32, Vec<GlobalTransfer>)> = Vec::new();
        let mut i = 0u32;
        while i < n {
            let child = i + stride;
            if child < n && i.is_multiple_of(stride * 2) {
                let blocks = subtree_blocks(n, k, child, m);
                let list = blocks
                    .map(|block| GlobalTransfer {
                        from: i,
                        to: child,
                        block,
                    })
                    .collect::<Vec<_>>();
                if !list.is_empty() {
                    per_sender.push((i, list));
                }
            }
            i += stride * 2;
        }
        let depth = per_sender.iter().map(|(_, l)| l.len()).max().unwrap_or(0);
        for d in 0..depth {
            let mut step = Vec::new();
            for (_, list) in &per_sender {
                if let Some(t) = list.get(d) {
                    step.push(*t);
                }
            }
            steps.push(step);
        }
    }
    // Ring allgather: n-1 rounds; in round t, rank i sends the chunk of
    // rank (i - t) mod n to rank (i + 1) mod n.
    for t in 0..n - 1 {
        let mut per_sender: Vec<Vec<GlobalTransfer>> = Vec::new();
        for i in 0..n {
            let owner = (i + n - t % n) % n;
            let to = (i + 1) % n;
            let list = chunk(n, k, owner)
                .map(|block| GlobalTransfer { from: i, to, block })
                .collect::<Vec<_>>();
            per_sender.push(list);
        }
        let depth = per_sender.iter().map(Vec::len).max().unwrap_or(0);
        for d in 0..depth {
            let mut step = Vec::new();
            for list in &per_sender {
                if let Some(t) = list.get(d) {
                    step.push(*t);
                }
            }
            steps.push(step);
        }
    }
    GlobalSchedule::from_custom_steps("mvapich-scatter-allgather", n, k, steps)
}

/// Total number of block-sends the schedule performs (for cost
/// accounting: scatter+allgather moves ~2x the minimum).
pub fn total_block_sends(g: &GlobalSchedule) -> usize {
    g.num_transfers()
}

/// Returns a rank's first-block sender consistency probe: which `k`
/// regime a message of `blocks` falls into.
pub fn uses_scatter(n: u32, blocks: u32) -> bool {
    blocks >= n * SCATTER_MIN_BLOCKS_PER_RANK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_blocks() {
        for (n, k) in [(4u32, 16u32), (5, 13), (8, 8), (3, 100)] {
            let mut covered = 0u32;
            for i in 0..n {
                let c = chunk(n, k, i);
                assert_eq!(c.start, covered);
                covered = c.end;
            }
            assert_eq!(covered, k);
        }
    }

    #[test]
    fn small_messages_use_tree_and_validate() {
        let g = mvapich_bcast(8, 3);
        g.validate().unwrap(); // tree path: strict invariants hold
        assert_eq!(g.algorithm().to_string(), "mvapich-tree");
    }

    #[test]
    fn large_messages_use_scatter_allgather_and_validate() {
        for (n, k) in [
            (2u32, 4u32),
            (4, 8),
            (4, 13),
            (8, 64),
            (5, 10),
            (7, 21),
            (16, 32),
        ] {
            let g = mvapich_bcast(n, k);
            assert_eq!(g.algorithm().to_string(), "mvapich-scatter-allgather");
            g.validate_relaxed()
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn strict_validation_rejects_ring_redundancy() {
        let g = scatter_ring_allgather(4, 8);
        assert!(
            g.validate().is_err(),
            "the ring delivers through the root / re-delivers held blocks"
        );
    }

    #[test]
    fn scatter_allgather_moves_more_than_the_minimum() {
        // The minimum for (n-1) replicas of k blocks is (n-1)*k sends
        // (what RDMC's schedules achieve). Scatter+allgather pays an
        // extra ~k*log2(n)/2 for the scatter: for n=8, k=64 that is
        // 96 + 7*64 = 544 sends.
        let g = scatter_ring_allgather(8, 64);
        let sends = total_block_sends(&g);
        let minimum = 7 * 64;
        assert_eq!(sends, 544);
        assert!(sends > minimum, "redundant movement expected, got {sends}");
    }

    #[test]
    fn every_rank_ends_with_every_block() {
        // validate_relaxed already checks non-root ranks;
        // verify the root also gets back everything it scattered away
        // (trivially true: it never lost anything), and that the ring
        // brings every chunk to everyone.
        let g = scatter_ring_allgather(6, 18);
        g.validate_relaxed().unwrap();
        for rank in 1..6 {
            for block in 0..18 {
                assert!(
                    g.receive_step(rank, block).is_some(),
                    "rank {rank} missing block {block}"
                );
            }
        }
    }

    #[test]
    fn regime_boundary() {
        assert!(!uses_scatter(8, 7));
        assert!(uses_scatter(8, 8));
    }
}
