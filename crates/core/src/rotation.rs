//! Sender-rotation arithmetic for multi-sender (atomic) groups.
//!
//! RDMC groups have a single sender: rank 0 (§4.1). Derecho builds its
//! atomic multicast on top by creating **one RDMC subgroup per sender**,
//! each with the member list rotated so that sender sits at rank 0 —
//! exactly the `rotated_members[j] = members[(i + j) % num_nodes]`
//! pattern of the reference `rdmc_bw_test` harnesses. Message slots
//! then rotate round-robin through the members, giving every message a
//! deterministic total-order position.
//!
//! These helpers are pure index arithmetic, shared by the simulator's
//! delivery engine and its tests so the two cannot disagree about who
//! owns a slot or where a member sits in a rotated subgroup.

use crate::Rank;

/// The member list of sender `sender`'s subgroup: `members` rotated
/// left so `members[sender]` is first (rank 0, the subgroup's root).
///
/// # Panics
///
/// Panics if `members` is empty or `sender` is out of range.
#[must_use]
pub fn rotated_members<T: Copy>(members: &[T], sender: usize) -> Vec<T> {
    assert!(!members.is_empty(), "empty group");
    assert!(sender < members.len(), "sender {sender} out of range");
    (0..members.len())
        .map(|i| members[(sender + i) % members.len()])
        .collect()
}

/// The member index owning message slot `slot` under round-robin
/// rotation over `num_members` members.
///
/// # Panics
///
/// Panics if `num_members` is zero.
#[must_use]
pub fn slot_owner(slot: u64, num_members: usize) -> usize {
    assert!(num_members > 0, "empty group");
    (slot % num_members as u64) as usize
}

/// Member `member`'s rank inside sender `sender`'s rotated subgroup
/// (the inverse of [`rotated_members`]: rank 0 is the sender itself).
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn rotated_rank(member: usize, sender: usize, num_members: usize) -> Rank {
    assert!(member < num_members && sender < num_members, "out of range");
    ((member + num_members - sender) % num_members) as Rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_matches_the_bw_test_idiom() {
        let members = [10usize, 11, 12, 13];
        assert_eq!(rotated_members(&members, 0), vec![10, 11, 12, 13]);
        assert_eq!(rotated_members(&members, 1), vec![11, 12, 13, 10]);
        assert_eq!(rotated_members(&members, 3), vec![13, 10, 11, 12]);
    }

    #[test]
    fn every_member_roots_exactly_one_subgroup() {
        let members: Vec<usize> = (0..5).collect();
        for j in 0..5 {
            let rot = rotated_members(&members, j);
            assert_eq!(rot[0], members[j], "sender {j} must sit at rank 0");
            let mut sorted = rot.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, members, "rotation must be a permutation");
        }
    }

    #[test]
    fn slots_rotate_round_robin() {
        let owners: Vec<usize> = (0..7).map(|s| slot_owner(s, 3)).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn rotated_rank_inverts_rotated_members() {
        let n = 6usize;
        let members: Vec<usize> = (0..n).collect();
        for sender in 0..n {
            let rot = rotated_members(&members, sender);
            for (rank, &m) in rot.iter().enumerate() {
                assert_eq!(
                    rotated_rank(m, sender, n),
                    rank as Rank,
                    "member {m} in subgroup {sender}"
                );
            }
        }
    }
}
