//! Core vocabulary types shared across the RDMC library.

use std::fmt;

/// A member's position within an RDMC group. Rank 0 is always the root
/// (the only member allowed to send, §4.1).
pub type Rank = u32;

/// One block movement in a schedule: this rank exchanges `block` with
/// `peer` at some step.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Transfer {
    /// The other endpoint of the transfer.
    pub peer: Rank,
    /// Which block moves.
    pub block: u32,
}

/// The block-dissemination algorithms RDMC implements (§4.3), in the
/// paper's order of increasing effectiveness.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Transmit the whole message to each receiver in turn — the pattern
    /// common in today's datacenters; creates a hot spot at the sender.
    Sequential,
    /// Bucket-brigade: each inner receiver relays blocks down a chain
    /// (cf. chain replication). Full bidirectional bandwidth, but high
    /// worst-case latency at the tail.
    Chain,
    /// Relay whole messages along a binomial tree: log-depth, but inner
    /// transfers cannot start until outer ones finish.
    BinomialTree,
    /// The paper's centerpiece: a binomial pipeline over a virtual
    /// hypercube (Ganesan & Seshadri), finishing in `log2(n) + k - 1`
    /// block-steps.
    BinomialPipeline,
    /// Two-level composition for rack-aware datacenters (§4.3 "Hybrid
    /// Algorithms"): a binomial pipeline among rack leaders, then binomial
    /// pipelines within each rack. `rack_of[rank]` assigns members to
    /// racks.
    Hybrid {
        /// Rack index of each rank; `rack_of.len()` must equal the group
        /// size when the schedule is built.
        rack_of: Vec<u32>,
    },
    /// Like [`Algorithm::Hybrid`], but each rack's internal dissemination
    /// is *pipelined* with the inter-rack phase: relaying starts as soon
    /// as the rack leader holds a block, in the leader's arrival order.
    /// An extension beyond the paper (its §4.3 sketches only the
    /// two-phase form); see the `hybrid_ablation` test and bench.
    HybridPipelined {
        /// Rack index of each rank; must cover every rank.
        rack_of: Vec<u32>,
    },
    /// An externally supplied schedule family (e.g. the MPI-style
    /// baselines in the `baselines` crate). Only usable through
    /// [`SchedulePlanner::from_fn`](crate::schedule::SchedulePlanner::from_fn);
    /// [`GlobalSchedule::build`](crate::schedule::GlobalSchedule::build)
    /// panics on it.
    Custom {
        /// Human-readable family name.
        name: String,
    },
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Sequential => write!(f, "sequential"),
            Algorithm::Chain => write!(f, "chain"),
            Algorithm::BinomialTree => write!(f, "binomial-tree"),
            Algorithm::BinomialPipeline => write!(f, "binomial-pipeline"),
            Algorithm::Hybrid { .. } => write!(f, "hybrid"),
            Algorithm::HybridPipelined { .. } => write!(f, "hybrid-pipelined"),
            Algorithm::Custom { name } => write!(f, "{name}"),
        }
    }
}

/// Size bookkeeping for a message split into blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MessageLayout {
    /// Total message size in bytes.
    pub size: u64,
    /// Configured (full) block size in bytes.
    pub block_size: u64,
    /// Number of blocks, `ceil(size / block_size)`, at least 1.
    pub num_blocks: u32,
}

impl MessageLayout {
    /// Computes the layout of a `size`-byte message over `block_size`
    /// blocks. A zero-size message still occupies one (empty) block so the
    /// immediate-value size announcement has a carrier.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or the block count overflows `u32`.
    pub fn new(size: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let num_blocks = if size == 0 {
            1
        } else {
            u32::try_from(size.div_ceil(block_size)).expect("message needs too many blocks")
        };
        MessageLayout {
            size,
            block_size,
            num_blocks,
        }
    }

    /// Size in bytes of block `b` (the final block may be short).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_bytes(&self, b: u32) -> u64 {
        assert!(b < self.num_blocks, "block {b} out of range");
        if b + 1 == self.num_blocks {
            self.size - u64::from(b) * self.block_size
        } else {
            self.block_size
        }
    }

    /// Byte offset of block `b` within the message.
    pub fn block_offset(&self, b: u32) -> u64 {
        assert!(b < self.num_blocks, "block {b} out of range");
        u64::from(b) * self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts_blocks() {
        let l = MessageLayout::new(10, 4);
        assert_eq!(l.num_blocks, 3);
        assert_eq!(l.block_bytes(0), 4);
        assert_eq!(l.block_bytes(1), 4);
        assert_eq!(l.block_bytes(2), 2);
        assert_eq!(l.block_offset(2), 8);
    }

    #[test]
    fn exact_multiple_has_full_last_block() {
        let l = MessageLayout::new(8, 4);
        assert_eq!(l.num_blocks, 2);
        assert_eq!(l.block_bytes(1), 4);
    }

    #[test]
    fn zero_size_message_is_one_empty_block() {
        let l = MessageLayout::new(0, 1024);
        assert_eq!(l.num_blocks, 1);
        assert_eq!(l.block_bytes(0), 0);
    }

    #[test]
    fn one_byte_message() {
        let l = MessageLayout::new(1, 1 << 20);
        assert_eq!(l.num_blocks, 1);
        assert_eq!(l.block_bytes(0), 1);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        MessageLayout::new(10, 0);
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::BinomialPipeline.to_string(), "binomial-pipeline");
        assert_eq!(
            Algorithm::Hybrid {
                rack_of: vec![0, 0]
            }
            .to_string(),
            "hybrid"
        );
    }
}
