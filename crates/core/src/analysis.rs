//! Closed-form robustness analysis of the binomial pipeline (paper
//! §4.4–4.5), with helpers to cross-check the formulas against actual
//! schedules.

use crate::schedule::GlobalSchedule;

/// `ceil(log2 n)` — the virtual hypercube dimension for an `n`-member
/// group.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn log2_ceil(n: u32) -> u32 {
    assert!(n > 0, "log2 of zero");
    32 - (n - 1).leading_zeros()
}

/// Steps for a binomial pipeline to finish: `l + k − 1` (paper §4.4).
pub fn pipeline_steps(n: u32, k: u32) -> u32 {
    assert!(n >= 2 && k >= 1);
    log2_ceil(n) + k - 1
}

/// The paper's predicted average slack for steady steps of a
/// power-of-two binomial pipeline:
/// `2·(1 − (l−1)/(n−2))`.
///
/// Slack ≈ 2 for moderate `n` means a node usually received the block it
/// must forward two steps ago — room to catch up after a stall.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 4 (the formula divides by
/// `n − 2`).
pub fn predicted_avg_slack(n: u32) -> f64 {
    assert!(
        n >= 4 && n.is_power_of_two(),
        "formula needs a power of two >= 4"
    );
    let l = n.trailing_zeros() as f64;
    2.0 * (1.0 - (l - 1.0) / (n as f64 - 2.0))
}

/// Empirical average slack of non-root senders at `step`:
/// `slack(i, j) = j − (step at which i received the block it sends at j)`,
/// averaged over the step's senders (paper §4.5 item 3).
///
/// Returns `None` if no non-root node sends at `step`.
pub fn empirical_avg_slack(schedule: &GlobalSchedule, step: u32) -> Option<f64> {
    let mut total = 0u64;
    let mut senders = 0u64;
    for t in schedule.step(step) {
        if t.from == 0 {
            continue; // the root holds everything from the start
        }
        let got = schedule
            .receive_step(t.from, t.block)
            .expect("sender must have received the block (validate the schedule first)");
        total += u64::from(step - got);
        senders += 1;
    }
    (senders > 0).then(|| total as f64 / senders as f64)
}

/// The steady steps of a binomial pipeline schedule: `l ..= l + k − 2`
/// (every node holds at least one block from step `l` onwards).
pub fn steady_steps(n: u32, k: u32) -> std::ops::RangeInclusive<u32> {
    let l = log2_ceil(n);
    l..=(l + k).saturating_sub(2)
}

/// Paper §4.5 item 2: with one slow link of bandwidth `t_slow` and all
/// others at `t_fast`, the binomial pipeline retains at least the fraction
/// `l·T′ / (T + (l−1)·T′)` of its full-speed bandwidth, because each node
/// crosses the slow link only every `l`-th step.
///
/// # Panics
///
/// Panics if bandwidths are not positive or `l == 0`.
pub fn slow_link_bandwidth_fraction(l: u32, t_fast: f64, t_slow: f64) -> f64 {
    assert!(l >= 1, "need at least one hypercube dimension");
    assert!(t_fast > 0.0 && t_slow > 0.0, "bandwidths must be positive");
    let l = l as f64;
    (l * t_slow) / (t_fast + (l - 1.0) * t_slow)
}

/// Paper §4.5 item 1: a one-off delay of `epsilon` on one block send adds
/// at most `epsilon` to the total transfer time `(l + k − 1)·delta`.
/// Returns the worst-case completion time.
pub fn delayed_completion_bound(n: u32, k: u32, block_time: f64, epsilon: f64) -> f64 {
    pipeline_steps(n, k) as f64 * block_time + epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::GlobalSchedule;
    use crate::types::Algorithm;

    #[test]
    fn log2_ceil_matches_examples() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(512), 9);
        assert_eq!(log2_ceil(513), 10);
    }

    #[test]
    fn pipeline_steps_formula() {
        assert_eq!(pipeline_steps(8, 256), 3 + 255);
        assert_eq!(pipeline_steps(512, 32), 9 + 31);
    }

    #[test]
    fn paper_slack_number_for_n64() {
        // §4.5: avg slack = 2(1 - (l-1)/(n-2)); for n=64, l=6 this is
        // 2(1 - 5/62) ≈ 1.839.
        let s = predicted_avg_slack(64);
        assert!((s - 2.0 * (1.0 - 5.0 / 62.0)).abs() < 1e-12);
        assert!(s > 1.8 && s < 1.9);
    }

    #[test]
    fn empirical_slack_matches_prediction_on_steady_steps() {
        for n in [4u32, 8, 16, 32, 64] {
            let k = 20;
            let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
            g.validate().unwrap();
            let predicted = predicted_avg_slack(n);
            for j in steady_steps(n, k) {
                let measured = empirical_avg_slack(&g, j).expect("steady step has senders");
                assert!(
                    (measured - predicted).abs() < 1e-9,
                    "n={n} step {j}: measured {measured}, predicted {predicted}"
                );
            }
        }
    }

    #[test]
    fn slow_link_fraction_matches_paper_example() {
        // §4.5: T' = T/2, n = 64 (l = 6) gives ~85.6%.
        let f = slow_link_bandwidth_fraction(6, 1.0, 0.5);
        assert!((f - 6.0 * 0.5 / (1.0 + 5.0 * 0.5)).abs() < 1e-12);
        assert!((f - 0.857).abs() < 2e-3, "got {f}");
    }

    #[test]
    fn slow_link_fraction_is_monotone_in_slow_bandwidth() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let f = slow_link_bandwidth_fraction(6, 1.0, i as f64 / 10.0);
            assert!(f > prev);
            prev = f;
        }
        assert!((slow_link_bandwidth_fraction(6, 1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_bound_is_additive() {
        let base = delayed_completion_bound(8, 100, 1.0, 0.0);
        let delayed = delayed_completion_bound(8, 100, 1.0, 7.5);
        assert!((delayed - base - 7.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn slack_formula_rejects_non_power_of_two() {
        predicted_avg_slack(6);
    }
}
