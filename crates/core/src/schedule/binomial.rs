//! The binomial pipeline (paper §4.3–4.4).
//!
//! For `n = 2^l` nodes, the group is laid over a virtual hypercube of
//! dimension `l`. At step `j` every node exchanges a block with its
//! neighbour along direction `j % l`; the sender pushes block
//! `min(j, k−1)` while every other node forwards the highest-numbered
//! block it holds. A `k`-block message reaches everyone in `l + k − 1`
//! steps.
//!
//! This module implements the paper's closed-form send rule
//! ([`send_at_step`]) verbatim, and generalises it to arbitrary group
//! sizes with a *shadow-vertex* construction (see [`build`]): the schedule
//! runs on the `2^l`-vertex hypercube for `l = ceil(log2 n)`, and each
//! non-existent vertex `v ≥ n` is played by the real node `v − 2^(l−1)`.
//! Transfers between co-located vertices are free, and a real node only
//! accepts the *first* wire arrival of each block; both kinds of redundant
//! transfer are pruned when the schedule is built. The paper notes that in
//! the non-power-of-two case "the final receipt spreads over two
//! asynchronous steps" — the same effect appears here as (at most) two
//! transfers scheduled on one real node in one step.

use crate::schedule::{GlobalSchedule, GlobalTransfer};
use crate::types::{Algorithm, Rank, Transfer};

/// Right circular shift of the `l`-bit number `x` by `r` positions
/// (the paper's `σ(x, r)`).
///
/// # Panics
///
/// Panics if `x` does not fit in `l` bits or `l` is 0 or more than 31.
pub fn rotate_right(x: u32, r: u32, l: u32) -> u32 {
    assert!(
        (1..=31).contains(&l),
        "hypercube dimension out of range: {l}"
    );
    assert!(x < (1 << l), "{x} does not fit in {l} bits");
    let r = r % l;
    if r == 0 {
        x
    } else {
        ((x >> r) | (x << (l - r))) & ((1 << l) - 1)
    }
}

/// The paper's send rule: which transfer does node `i` initiate at step
/// `j`, in a group of `n = 2^l` nodes moving `k` blocks?
///
/// Returns `None` when the node sits idle (or would be sending to the
/// root, which already has everything). Steps run from `0` to
/// `l + k − 2` inclusive.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2, `i ≥ n`, `k == 0`, or `j` is
/// beyond the last step.
pub fn send_at_step(n: u32, i: Rank, j: u32, k: u32) -> Option<Transfer> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "n must be a power of two >= 2"
    );
    assert!(i < n, "rank {i} out of range for n={n}");
    assert!(k >= 1, "k must be at least 1");
    let l = n.trailing_zeros();
    assert!(j <= l + k - 2, "step {j} beyond schedule end");
    let dir = j % l;
    let peer = i ^ (1 << dir);
    if i == 0 {
        return Some(Transfer {
            peer,
            block: j.min(k - 1),
        });
    }
    let s = rotate_right(i, dir, l);
    if s == 1 {
        // Our neighbour along this direction is the sender; nothing to give it.
        return None;
    }
    let r = s.trailing_zeros();
    // j − l + r ≥ 0, computed without going negative in unsigned math.
    if j + r >= l {
        Some(Transfer {
            peer,
            block: (j + r - l).min(k - 1),
        })
    } else {
        None
    }
}

/// Number of steps a binomial pipeline takes for `n = 2^l` nodes and `k`
/// blocks: `l + k − 1`.
pub fn num_steps(n: u32, k: u32) -> u32 {
    assert!(n >= 2 && n.is_power_of_two());
    n.trailing_zeros() + k - 1
}

/// Builds the global binomial-pipeline schedule for any group size
/// `n ≥ 2` (power of two or not) and `k ≥ 1` blocks.
pub fn build(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2, "binomial pipeline needs at least 2 nodes");
    assert!(k >= 1, "need at least one block");
    let l = 32 - (n - 1).leading_zeros(); // ceil(log2 n)
    let virt_n = 1u32 << l;
    let total_steps = l + k - 1;
    // real(v): which node plays virtual vertex v.
    let real = |v: u32| -> Rank {
        if v < n {
            v
        } else {
            v - virt_n / 2
        }
    };
    // Virtual receipt step of (vertex, block): replay the virtual schedule.
    // recv_step[v][b] = step at which vertex v receives block b; the root
    // vertex starts with everything.
    let mut recv_step = vec![vec![u32::MAX; k as usize]; virt_n as usize];
    let mut virtual_steps: Vec<Vec<(u32, u32, u32)>> = Vec::with_capacity(total_steps as usize);
    for j in 0..total_steps {
        let mut this_step = Vec::new();
        for v in 0..virt_n {
            if let Some(t) = send_at_step(virt_n, v, j, k) {
                // The virtual sender must hold the block (sanity of the
                // closed form; v == 0 always holds everything).
                debug_assert!(
                    v == 0 || recv_step[v as usize][t.block as usize] < j,
                    "vertex {v} sends block {} at step {j} before receiving it",
                    t.block
                );
                this_step.push((v, t.peer, t.block));
            }
        }
        for &(_, to, b) in &this_step {
            let slot = &mut recv_step[to as usize][b as usize];
            debug_assert_eq!(*slot, u32::MAX, "virtual duplicate receive");
            *slot = j;
        }
        virtual_steps.push(this_step);
    }
    // presence[r][b]: the step at which real node r first holds block b,
    // i.e. the earliest virtual receipt over the vertices it plays.
    let mut presence = vec![vec![u32::MAX; k as usize]; n as usize];
    for b in 0..k {
        presence[0][b as usize] = 0; // the root holds everything from the start
    }
    for v in 0..virt_n {
        let r = real(v) as usize;
        for b in 0..k as usize {
            let s = recv_step[v as usize][b];
            if s != u32::MAX && s < presence[r][b] && r != 0 {
                presence[r][b] = s;
            }
        }
    }
    // Emit the pruned real schedule: keep only the first wire delivery of
    // each (real node, block); drop co-located transfers. A real node's
    // first acquisition of a block is always over the wire (a co-located
    // source would mean the node held the block even earlier), so pruning
    // by first arrival is exact.
    let mut got = vec![vec![false; k as usize]; n as usize];
    let mut steps = Vec::with_capacity(total_steps as usize);
    for (j, this_step) in virtual_steps.iter().enumerate() {
        let mut emitted = Vec::new();
        for &(u, v, b) in this_step {
            let from = real(u);
            let to = real(v);
            if from == to || to == 0 {
                continue; // free co-located move, or aimed at the root
            }
            if got[to as usize][b as usize] {
                continue; // the node already took this block earlier
            }
            got[to as usize][b as usize] = true;
            debug_assert_eq!(
                presence[to as usize][b as usize], j as u32,
                "first wire arrival disagrees with presence computation"
            );
            debug_assert!(
                from == 0 || presence[from as usize][b as usize] < j as u32,
                "emitting a send of a block the sender does not yet hold"
            );
            emitted.push(GlobalTransfer { from, to, block: b });
        }
        steps.push(emitted);
    }
    GlobalSchedule::from_steps(Algorithm::BinomialPipeline, n, k, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_right_matches_paper_sigma() {
        // σ of a 3-bit number.
        assert_eq!(rotate_right(0b001, 1, 3), 0b100);
        assert_eq!(rotate_right(0b110, 1, 3), 0b011);
        assert_eq!(rotate_right(0b110, 2, 3), 0b101);
        assert_eq!(rotate_right(0b110, 3, 3), 0b110); // full rotation
        assert_eq!(rotate_right(5, 0, 3), 5);
    }

    #[test]
    fn paper_example_n4_k2() {
        // Worked out by hand from the §4.4 send rule.
        // Step 0 (dir 0): only 0 -> 1 with block 0.
        assert_eq!(
            send_at_step(4, 0, 0, 2),
            Some(Transfer { peer: 1, block: 0 })
        );
        assert_eq!(send_at_step(4, 1, 0, 2), None);
        assert_eq!(send_at_step(4, 2, 0, 2), None);
        assert_eq!(send_at_step(4, 3, 0, 2), None);
        // Step 1 (dir 1): 0 -> 2 block 1; 1 -> 3 block 0.
        assert_eq!(
            send_at_step(4, 0, 1, 2),
            Some(Transfer { peer: 2, block: 1 })
        );
        assert_eq!(
            send_at_step(4, 1, 1, 2),
            Some(Transfer { peer: 3, block: 0 })
        );
        assert_eq!(send_at_step(4, 2, 1, 2), None);
        assert_eq!(send_at_step(4, 3, 1, 2), None);
        // Step 2 (dir 0): 0 -> 1 block 1; 2 <-> 3 exchange.
        assert_eq!(
            send_at_step(4, 0, 2, 2),
            Some(Transfer { peer: 1, block: 1 })
        );
        assert_eq!(send_at_step(4, 1, 2, 2), None); // neighbour is the root
        assert_eq!(
            send_at_step(4, 2, 2, 2),
            Some(Transfer { peer: 3, block: 1 })
        );
        assert_eq!(
            send_at_step(4, 3, 2, 2),
            Some(Transfer { peer: 2, block: 0 })
        );
    }

    #[test]
    fn one_block_degenerates_to_hypercube_flood() {
        // k=1, n=8: block 0 reaches everyone in exactly l = 3 steps.
        let g = build(8, 1);
        assert_eq!(g.num_steps(), 3);
        for rank in 1..8 {
            assert!(g.receive_step(rank, 0).is_some());
        }
    }

    #[test]
    fn power_of_two_completes_in_l_plus_k_minus_1() {
        for (n, k) in [(2u32, 1u32), (4, 3), (8, 5), (16, 2), (32, 7), (64, 4)] {
            let g = build(n, k);
            assert_eq!(g.num_steps(), num_steps(n, k), "n={n} k={k}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn power_of_two_has_at_most_one_send_and_recv_per_node_per_step() {
        for (n, k) in [(8u32, 4u32), (16, 6), (32, 3)] {
            let g = build(n, k);
            for j in 0..g.num_steps() {
                let mut senders = std::collections::BTreeSet::new();
                let mut receivers = std::collections::BTreeSet::new();
                for t in g.step(j) {
                    assert!(senders.insert(t.from), "n={n} k={k} step {j}: double send");
                    assert!(
                        receivers.insert(t.to),
                        "n={n} k={k} step {j}: double receive"
                    );
                }
            }
        }
    }

    #[test]
    fn non_power_of_two_validates() {
        for n in [3u32, 5, 6, 7, 9, 11, 12, 13, 15, 17, 24, 33, 48, 63] {
            for k in [1u32, 2, 5, 8] {
                let g = build(n, k);
                g.validate().unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn non_power_of_two_spreads_final_receipt_over_two_steps_at_most() {
        // Each real node receives at most 2 blocks per step.
        for n in [5u32, 11, 23] {
            let g = build(n, 6);
            for j in 0..g.num_steps() {
                let mut per_node = std::collections::BTreeMap::new();
                for t in g.step(j) {
                    *per_node.entry(t.to).or_insert(0u32) += 1;
                }
                for (node, c) in per_node {
                    assert!(c <= 2, "n={n} step {j}: node {node} receives {c} blocks");
                }
            }
        }
    }

    #[test]
    fn first_sender_is_independent_of_block_count() {
        for n in [2u32, 3, 4, 6, 8, 12, 16, 31] {
            let base = build(n, 2);
            for k in [1u32, 3, 9] {
                let g = build(n, k);
                for rank in 1..n {
                    assert_eq!(
                        g.first_sender(rank),
                        base.first_sender(rank),
                        "n={n} k={k} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn send_rule_rejects_non_power_of_two() {
        send_at_step(6, 1, 0, 1);
    }

    #[test]
    fn large_power_of_two_sanity() {
        let g = build(128, 16);
        g.validate().unwrap();
        assert_eq!(g.num_steps(), 7 + 16 - 1);
    }
}
