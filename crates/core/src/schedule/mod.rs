//! Block-transfer schedules (paper §4.3).
//!
//! A schedule maps a multicast of `k` blocks over an `n`-member group onto
//! a deterministic sequence of point-to-point block transfers, organised
//! in *asynchronous steps*. The determinism is load-bearing: both
//! endpoints of every transfer can compute, ahead of time, exactly which
//! block will cross which connection at which step — which is what lets
//! RDMC pre-post receives, pick buffer offsets without control traffic,
//! and (eventually) offload whole transfer graphs to a NIC (§2, §4.2).
//!
//! [`GlobalSchedule`] is the bird's-eye view used for validation and
//! analysis; [`RankSchedule`] is one member's slice of it, consumed by the
//! protocol engine.

mod binomial;
mod chain;
mod hybrid;
mod sequential;
mod tree;

pub use binomial::{num_steps as binomial_num_steps, rotate_right, send_at_step};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::types::{Algorithm, Rank, Transfer};

/// One block transfer in the global view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GlobalTransfer {
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Block number.
    pub block: u32,
}

/// A complete multicast schedule: every transfer of every step.
#[derive(Clone, Debug)]
pub struct GlobalSchedule {
    algorithm: Algorithm,
    n: u32,
    k: u32,
    steps: Vec<Vec<GlobalTransfer>>,
}

/// A schedule violates an invariant (returned by
/// [`GlobalSchedule::validate`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// A transfer names an out-of-range rank or block, or sends to itself.
    MalformedTransfer {
        /// The step the transfer appears in.
        step: u32,
        /// The offending transfer.
        transfer: GlobalTransfer,
    },
    /// A node sends a block it has not yet received at that step.
    SendBeforeReceive {
        /// The step of the premature send.
        step: u32,
        /// The offending transfer.
        transfer: GlobalTransfer,
    },
    /// A node receives the same block twice.
    DuplicateDelivery {
        /// The second delivery's step.
        step: u32,
        /// The offending transfer.
        transfer: GlobalTransfer,
    },
    /// Some node never receives some block.
    MissingDelivery {
        /// The rank that goes without.
        rank: Rank,
        /// The block that never arrives.
        block: u32,
    },
    /// The root (rank 0) is scheduled to receive.
    RootReceives {
        /// The step of the misdirected transfer.
        step: u32,
    },
    /// The builder was asked for an impossible shape (zero members, zero
    /// blocks, a rack assignment that does not cover the group, or a
    /// custom family routed through [`GlobalSchedule::try_build`]).
    InvalidShape {
        /// What was wrong with the request.
        reason: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MalformedTransfer { step, transfer } => {
                write!(f, "malformed transfer {transfer:?} at step {step}")
            }
            ScheduleError::SendBeforeReceive { step, transfer } => write!(
                f,
                "step {step}: rank {} sends block {} before receiving it",
                transfer.from, transfer.block
            ),
            ScheduleError::DuplicateDelivery { step, transfer } => write!(
                f,
                "step {step}: rank {} receives block {} twice",
                transfer.to, transfer.block
            ),
            ScheduleError::MissingDelivery { rank, block } => {
                write!(f, "rank {rank} never receives block {block}")
            }
            ScheduleError::RootReceives { step } => {
                write!(f, "step {step}: the root is scheduled to receive")
            }
            ScheduleError::InvalidShape { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl GlobalSchedule {
    /// Assembles a schedule from per-step transfer lists (used by the
    /// algorithm builders).
    pub(crate) fn from_steps(
        algorithm: Algorithm,
        n: u32,
        k: u32,
        steps: Vec<Vec<GlobalTransfer>>,
    ) -> Self {
        GlobalSchedule {
            algorithm,
            n,
            k,
            steps,
        }
    }

    /// Assembles a schedule supplied by an external crate (e.g. an MPI
    /// baseline). Prefer [`GlobalSchedule::validate`] — or
    /// [`GlobalSchedule::validate_relaxed`] if the schedule
    /// routes blocks back through the root or re-delivers held blocks —
    /// before using it.
    pub fn from_custom_steps(name: &str, n: u32, k: u32, steps: Vec<Vec<GlobalTransfer>>) -> Self {
        GlobalSchedule::from_steps(
            Algorithm::Custom {
                name: name.to_owned(),
            },
            n,
            k,
            steps,
        )
    }

    /// Builds the global schedule for `algorithm` over `n` members and `k`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or (for [`Algorithm::Hybrid`]) the
    /// rack assignment length differs from `n`. Use
    /// [`GlobalSchedule::try_build`] to get the violation as an error
    /// instead.
    pub fn build(algorithm: &Algorithm, n: u32, k: u32) -> Self {
        match GlobalSchedule::try_build(algorithm, n, k) {
            Ok(g) => g,
            Err(e) => panic!("cannot build {algorithm} schedule for n={n} k={k}: {e}"),
        }
    }

    /// Like [`GlobalSchedule::build`], but reports impossible shapes as
    /// [`ScheduleError::InvalidShape`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidShape`] if `n == 0`, `k == 0`, a
    /// hybrid rack assignment does not cover every rank, or the algorithm
    /// is [`Algorithm::Custom`] (which only
    /// [`SchedulePlanner::from_fn`] can build).
    pub fn try_build(algorithm: &Algorithm, n: u32, k: u32) -> Result<Self, ScheduleError> {
        if n == 0 {
            return Err(ScheduleError::InvalidShape {
                reason: "group needs at least one member".to_owned(),
            });
        }
        if k == 0 {
            return Err(ScheduleError::InvalidShape {
                reason: "need at least one block".to_owned(),
            });
        }
        if n == 1 {
            // A group of one: the root already has the message.
            return Ok(GlobalSchedule::from_steps(
                algorithm.clone(),
                1,
                k,
                Vec::new(),
            ));
        }
        match algorithm {
            Algorithm::Sequential => Ok(sequential::build(n, k)),
            Algorithm::Chain => Ok(chain::build(n, k)),
            Algorithm::BinomialTree => Ok(tree::build(n, k)),
            Algorithm::BinomialPipeline => Ok(binomial::build(n, k)),
            Algorithm::Hybrid { rack_of } => hybrid::build(n, k, rack_of),
            Algorithm::HybridPipelined { rack_of } => hybrid::build_pipelined(n, k, rack_of),
            Algorithm::Custom { name } => Err(ScheduleError::InvalidShape {
                reason: format!(
                    "custom schedule family '{name}' must be built through SchedulePlanner::from_fn"
                ),
            }),
        }
    }

    /// The algorithm that produced this schedule.
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }

    /// Group size.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Block count.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Number of asynchronous steps.
    pub fn num_steps(&self) -> u32 {
        self.steps.len() as u32
    }

    /// The transfers of step `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn step(&self, j: u32) -> &[GlobalTransfer] {
        &self.steps[j as usize]
    }

    /// Total number of block transfers across all steps.
    pub fn num_transfers(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// Every transfer of the schedule, tagged with its step, in step
    /// order. The flat view the static analyzer and the partition
    /// property tests consume.
    pub fn transfers(&self) -> impl Iterator<Item = (u32, GlobalTransfer)> + '_ {
        self.steps
            .iter()
            .enumerate()
            .flat_map(|(j, step)| step.iter().map(move |t| (j as u32, *t)))
    }

    /// The step at which `rank` receives `block`, if scheduled.
    pub fn receive_step(&self, rank: Rank, block: u32) -> Option<u32> {
        for (j, step) in self.steps.iter().enumerate() {
            if step.iter().any(|t| t.to == rank && t.block == block) {
                return Some(j as u32);
            }
        }
        None
    }

    /// The step at which `rank` has received every block (`None` for the
    /// root, which receives nothing).
    pub fn completion_step(&self, rank: Rank) -> Option<u32> {
        (0..self.k)
            .map(|b| self.receive_step(rank, b))
            .try_fold(0, |acc, s| s.map(|s| acc.max(s)))
    }

    /// Which rank delivers `rank`'s *first* block. This is independent of
    /// the block count for every algorithm in this crate, so receivers can
    /// pre-grant their first ready-for-block credit before the message
    /// size is known (§4.2). Returns `None` for the root.
    pub fn first_sender(&self, rank: Rank) -> Option<Rank> {
        for step in &self.steps {
            for t in step {
                if t.to == rank {
                    return Some(t.from);
                }
            }
        }
        None
    }

    /// Extracts `rank`'s slice of the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn for_rank(&self, rank: Rank) -> RankSchedule {
        assert!(rank < self.n, "rank {rank} out of range");
        let mut out = Vec::new();
        let mut in_per_peer: BTreeMap<Rank, Vec<(u32, u32)>> = BTreeMap::new();
        let mut in_count = 0u32;
        for (j, step) in self.steps.iter().enumerate() {
            for t in step {
                if t.from == rank {
                    out.push((
                        j as u32,
                        Transfer {
                            peer: t.to,
                            block: t.block,
                        },
                    ));
                }
                if t.to == rank {
                    in_per_peer
                        .entry(t.from)
                        .or_default()
                        .push((j as u32, t.block));
                    in_count += 1;
                }
            }
        }
        RankSchedule {
            rank,
            n: self.n,
            k: self.k,
            num_steps: self.num_steps(),
            out,
            in_per_peer,
            in_count,
        }
    }

    /// Checks every schedule invariant: transfers well-formed, blocks only
    /// sent by holders, exactly-once delivery of every block to every
    /// non-root rank, root never receives.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        self.validate_inner(false)
    }

    /// Like [`GlobalSchedule::validate`], but permits transfers *to* the
    /// root and duplicate deliveries. RDMC schedules move each block the
    /// minimum number of times, but MPI-style scatter/allgather baselines
    /// route chunks through every rank uniformly (root included) and
    /// redundantly re-deliver blocks that intermediate scatter nodes
    /// already hold — genuine extra data movement that the comparison
    /// must account for, not a bug.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (well-formedness, sends only
    /// of held blocks, full coverage of every non-root rank).
    pub fn validate_relaxed(&self) -> Result<(), ScheduleError> {
        self.validate_inner(true)
    }

    fn validate_inner(&self, relaxed: bool) -> Result<(), ScheduleError> {
        let n = self.n as usize;
        let k = self.k as usize;
        // has[rank][block]: the step *after* which the rank holds the block.
        let mut has = vec![vec![false; k]; n];
        for cell in has[0].iter_mut() {
            *cell = true;
        }
        let mut received = vec![vec![false; k]; n];
        for (j, step) in self.steps.iter().enumerate() {
            let j = j as u32;
            for t in step {
                if t.from >= self.n || t.to >= self.n || t.block >= self.k || t.from == t.to {
                    return Err(ScheduleError::MalformedTransfer {
                        step: j,
                        transfer: *t,
                    });
                }
                if t.to == 0 && !relaxed {
                    return Err(ScheduleError::RootReceives { step: j });
                }
                if !has[t.from as usize][t.block as usize] {
                    return Err(ScheduleError::SendBeforeReceive {
                        step: j,
                        transfer: *t,
                    });
                }
                if received[t.to as usize][t.block as usize] && !relaxed {
                    return Err(ScheduleError::DuplicateDelivery {
                        step: j,
                        transfer: *t,
                    });
                }
                received[t.to as usize][t.block as usize] = true;
            }
            // Blocks become usable for relaying at the *next* step.
            for t in step {
                has[t.to as usize][t.block as usize] = true;
            }
        }
        for rank in 1..self.n {
            for block in 0..self.k {
                if !received[rank as usize][block as usize] {
                    return Err(ScheduleError::MissingDelivery { rank, block });
                }
            }
        }
        Ok(())
    }
}

/// One member's view of a [`GlobalSchedule`]: its outgoing transfers in
/// issue order and its expected incoming transfers per peer.
#[derive(Clone, Debug)]
pub struct RankSchedule {
    rank: Rank,
    n: u32,
    k: u32,
    num_steps: u32,
    /// Outgoing transfers in `(step, emission order)` — the order sends
    /// are posted.
    out: Vec<(u32, Transfer)>,
    /// Incoming `(step, block)` arrivals per sending peer, in wire order.
    in_per_peer: BTreeMap<Rank, Vec<(u32, u32)>>,
    in_count: u32,
}

impl RankSchedule {
    /// This member's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Group size.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Block count.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Number of asynchronous steps in the whole schedule.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Outgoing transfers in posting order, tagged with their step.
    pub fn outgoing(&self) -> &[(u32, Transfer)] {
        &self.out
    }

    /// Expected incoming `(step, block)` sequence from `peer`.
    pub fn incoming_from(&self, peer: Rank) -> &[(u32, u32)] {
        self.in_per_peer
            .get(&peer)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every peer this rank receives from, in ascending rank order.
    pub fn in_peers(&self) -> impl Iterator<Item = Rank> + '_ {
        self.in_per_peer.keys().copied()
    }

    /// Total number of blocks this rank will receive (equals the block
    /// count for non-root ranks of a valid schedule; 0 for the root).
    pub fn in_count(&self) -> u32 {
        self.in_count
    }
}

/// A shared, caching source of schedules, so the per-message schedule
/// build (which depends on the just-learned block count) is amortised
/// across messages and group members in one process.
pub struct SchedulePlanner {
    algorithm: Algorithm,
    builder: Option<Box<dyn Fn(u32, u32) -> GlobalSchedule + Send + Sync>>,
    /// Block count used to probe `first_sender` (2 for the built-in
    /// algorithms, whose first senders are block-count invariant; custom
    /// families may need the true per-message value).
    probe_k: u32,
    /// Reader/writer cache: the steady state of a long run is all hits,
    /// which take only the shared lock, so concurrent experiment workers
    /// planning the same group shapes never serialize on each other.
    cache: std::sync::RwLock<BTreeMap<(u32, u32), Arc<GlobalSchedule>>>,
    cache_hits: std::sync::atomic::AtomicU64,
    cache_misses: std::sync::atomic::AtomicU64,
}

impl fmt::Debug for SchedulePlanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulePlanner")
            .field("algorithm", &self.algorithm)
            .field("probe_k", &self.probe_k)
            .finish()
    }
}

impl SchedulePlanner {
    /// A planner for a built-in algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        assert!(
            !matches!(algorithm, Algorithm::Custom { .. }),
            "use SchedulePlanner::from_fn for custom schedule families"
        );
        SchedulePlanner {
            algorithm,
            builder: None,
            probe_k: 2,
            cache: std::sync::RwLock::new(BTreeMap::new()),
            cache_hits: std::sync::atomic::AtomicU64::new(0),
            cache_misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A planner for an externally defined schedule family. `probe_k` is
    /// the block count used to answer [`SchedulePlanner::first_sender`];
    /// pass the block count the messages will actually use if the family's
    /// first senders depend on it (MPI-style broadcasts may switch
    /// algorithms by size — a luxury RDMC does not have, as the paper
    /// notes in §6: MPI receivers know every transfer's size in advance).
    pub fn from_fn<F>(name: &str, probe_k: u32, build: F) -> Self
    where
        F: Fn(u32, u32) -> GlobalSchedule + Send + Sync + 'static,
    {
        SchedulePlanner {
            algorithm: Algorithm::Custom {
                name: name.to_owned(),
            },
            builder: Some(Box::new(build)),
            probe_k: probe_k.max(1),
            cache: std::sync::RwLock::new(BTreeMap::new()),
            cache_hits: std::sync::atomic::AtomicU64::new(0),
            cache_misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The algorithm this planner builds.
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }

    /// The (cached) global schedule for `n` members and `k` blocks.
    ///
    /// Hits take only the shared read lock. On a miss the schedule is
    /// built *outside* any lock (two racing builders may do redundant
    /// work, but schedule construction is pure so whichever insert lands
    /// first wins and both callers agree).
    pub fn plan(&self, n: u32, k: u32) -> Arc<GlobalSchedule> {
        use std::sync::atomic::Ordering;
        // A panic while holding the lock poisons it, but the cache itself
        // is never left mid-update (inserts are atomic at the BTreeMap
        // level), so recover the guard instead of propagating the panic.
        if let Some(hit) = self
            .cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&(n, k))
        {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(match &self.builder {
            Some(build) => build(n, k),
            None => GlobalSchedule::build(&self.algorithm, n, k),
        });
        let mut cache = self
            .cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(cache.entry((n, k)).or_insert(built))
    }

    /// `(hits, misses)` of the schedule cache so far. A miss that races
    /// another miss on the same key still counts once per caller.
    pub fn cache_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Who sends `rank` its first block in an `n`-member group (see
    /// [`GlobalSchedule::first_sender`]; probed at this planner's
    /// `probe_k`).
    pub fn first_sender(&self, n: u32, rank: Rank) -> Option<Rank> {
        self.plan(n, self.probe_k).first_sender(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_validate_across_sizes() {
        let algorithms = [
            Algorithm::Sequential,
            Algorithm::Chain,
            Algorithm::BinomialTree,
            Algorithm::BinomialPipeline,
        ];
        for alg in &algorithms {
            for n in [1u32, 2, 3, 4, 5, 7, 8, 13, 16, 20] {
                for k in [1u32, 2, 4, 9] {
                    let g = GlobalSchedule::build(alg, n, k);
                    g.validate()
                        .unwrap_or_else(|e| panic!("{alg} n={n} k={k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn singleton_group_has_no_transfers() {
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, 1, 5);
        assert_eq!(g.num_steps(), 0);
        assert_eq!(g.num_transfers(), 0);
        assert_eq!(g.completion_step(0), None);
    }

    #[test]
    fn rank_schedule_round_trips_the_global_view() {
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, 8, 4);
        let mut total_out = 0;
        let mut total_in = 0;
        for rank in 0..8 {
            let rs = g.for_rank(rank);
            total_out += rs.outgoing().len();
            total_in += rs.in_count() as usize;
            // Outgoing steps are non-decreasing (posting order).
            let steps: Vec<u32> = rs.outgoing().iter().map(|(s, _)| *s).collect();
            assert!(steps.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(total_out, g.num_transfers());
        assert_eq!(total_in, g.num_transfers());
    }

    #[test]
    fn root_never_receives() {
        for alg in [
            Algorithm::Sequential,
            Algorithm::Chain,
            Algorithm::BinomialTree,
            Algorithm::BinomialPipeline,
        ] {
            let g = GlobalSchedule::build(&alg, 9, 3);
            assert_eq!(g.for_rank(0).in_count(), 0, "{alg}");
            assert_eq!(g.first_sender(0), None);
        }
    }

    #[test]
    fn validate_catches_send_before_receive() {
        let g = GlobalSchedule::from_steps(
            Algorithm::Chain,
            3,
            1,
            vec![vec![GlobalTransfer {
                from: 1,
                to: 2,
                block: 0,
            }]],
        );
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::SendBeforeReceive { .. })
        ));
    }

    #[test]
    fn validate_catches_duplicate_delivery() {
        let t = GlobalTransfer {
            from: 0,
            to: 1,
            block: 0,
        };
        let g = GlobalSchedule::from_steps(Algorithm::Chain, 2, 1, vec![vec![t], vec![t]]);
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::DuplicateDelivery { .. })
        ));
    }

    #[test]
    fn validate_catches_missing_delivery() {
        let g = GlobalSchedule::from_steps(
            Algorithm::Chain,
            3,
            1,
            vec![vec![GlobalTransfer {
                from: 0,
                to: 1,
                block: 0,
            }]],
        );
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::MissingDelivery { rank: 2, block: 0 })
        ));
    }

    #[test]
    fn validate_catches_root_receive_and_malformed() {
        let g = GlobalSchedule::from_steps(
            Algorithm::Chain,
            2,
            1,
            vec![vec![GlobalTransfer {
                from: 1,
                to: 0,
                block: 0,
            }]],
        );
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::RootReceives { .. })
        ));
        let g = GlobalSchedule::from_steps(
            Algorithm::Chain,
            2,
            1,
            vec![vec![GlobalTransfer {
                from: 0,
                to: 5,
                block: 0,
            }]],
        );
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::MalformedTransfer { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ScheduleError::MissingDelivery { rank: 3, block: 7 };
        assert_eq!(e.to_string(), "rank 3 never receives block 7");
    }

    #[test]
    fn planner_cache_counts_hits_and_misses() {
        let planner = SchedulePlanner::new(Algorithm::BinomialTree);
        assert_eq!(planner.cache_stats(), (0, 0));
        let a = planner.plan(8, 4);
        let b = planner.plan(8, 4);
        let _c = planner.plan(16, 4);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached schedule");
        assert_eq!(planner.cache_stats(), (1, 2));
    }
}
