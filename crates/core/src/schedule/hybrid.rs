//! Rack-aware hybrid schedule (paper §4.3 "Hybrid Algorithms"): run one
//! binomial pipeline among rack leaders over the (oversubscribed) TOR
//! layer, then parallel binomial pipelines inside each rack. Each block
//! crosses the TOR exactly once per remote rack, instead of the many
//! crossings a randomly-embedded hypercube incurs.

use crate::schedule::{GlobalSchedule, GlobalTransfer, ScheduleError};
use crate::types::{Algorithm, Rank};

use super::binomial;

/// Groups members by rack (ascending rank order per rack) and returns the
/// rack map plus the leader list, root's rack first so the inter-rack
/// pipeline is rooted at rank 0.
///
/// # Errors
///
/// Returns [`ScheduleError::InvalidShape`] if the rack assignment does
/// not cover every rank.
#[allow(clippy::type_complexity)]
fn rack_layout(
    n: u32,
    rack_of: &[u32],
) -> Result<(std::collections::BTreeMap<u32, Vec<Rank>>, Vec<Rank>), ScheduleError> {
    if rack_of.len() != n as usize {
        return Err(ScheduleError::InvalidShape {
            reason: "rack assignment must cover every rank".to_owned(),
        });
    }
    let mut racks: std::collections::BTreeMap<u32, Vec<Rank>> = std::collections::BTreeMap::new();
    for (rank, &rack) in rack_of.iter().enumerate() {
        racks.entry(rack).or_default().push(rank as Rank);
    }
    let root_rack = rack_of[0];
    let mut leaders: Vec<Rank> = Vec::with_capacity(racks.len());
    leaders.push(racks[&root_rack][0]);
    debug_assert_eq!(leaders[0], 0, "rank 0 must lead its rack");
    for (&rack, members) in &racks {
        if rack != root_rack {
            leaders.push(members[0]);
        }
    }
    Ok((racks, leaders))
}

/// Builds the hybrid schedule. `rack_of[rank]` assigns each member to a
/// rack; the lowest rank of each rack is its leader, so the root (rank 0)
/// always leads its own rack.
///
/// # Errors
///
/// Returns [`ScheduleError::InvalidShape`] if `rack_of.len() != n`.
pub fn build(n: u32, k: u32, rack_of: &[u32]) -> Result<GlobalSchedule, ScheduleError> {
    debug_assert!(n >= 2 && k >= 1);
    let (racks, leaders) = rack_layout(n, rack_of)?;

    let mut steps: Vec<Vec<GlobalTransfer>> = Vec::new();
    // Phase 1: binomial pipeline among the leaders.
    if leaders.len() >= 2 {
        let inter = binomial::build(leaders.len() as u32, k);
        for j in 0..inter.num_steps() {
            steps.push(
                inter
                    .step(j)
                    .iter()
                    .map(|t| GlobalTransfer {
                        from: leaders[t.from as usize],
                        to: leaders[t.to as usize],
                        block: t.block,
                    })
                    .collect(),
            );
        }
    }
    // Phase 2: parallel binomial pipelines within each multi-member rack.
    let phase1_steps = steps.len();
    let mut phase2_steps = 0usize;
    for members in racks.values() {
        if members.len() < 2 {
            continue;
        }
        let intra = binomial::build(members.len() as u32, k);
        phase2_steps = phase2_steps.max(intra.num_steps() as usize);
        for j in 0..intra.num_steps() {
            let global_step = phase1_steps + j as usize;
            if steps.len() <= global_step {
                steps.resize_with(global_step + 1, Vec::new);
            }
            steps[global_step].extend(intra.step(j).iter().map(|t| GlobalTransfer {
                from: members[t.from as usize],
                to: members[t.to as usize],
                block: t.block,
            }));
        }
    }
    let _ = phase2_steps;
    Ok(GlobalSchedule::from_steps(
        Algorithm::Hybrid {
            rack_of: rack_of.to_vec(),
        },
        n,
        k,
        steps,
    ))
}

/// Builds the *pipelined* hybrid schedule: instead of waiting for the
/// whole inter-rack phase to finish, each rack starts its internal
/// dissemination as soon as its leader holds a first block, relaying
/// blocks in the leader's *arrival order*.
///
/// The construction: run the inter-rack binomial pipeline among leaders;
/// for each rack, record the order in which its leader acquires blocks;
/// lay an intra-rack binomial pipeline over the *positions* of that order
/// (position `i` = the leader's `i`-th block), offset so intra-rack step
/// `i` happens strictly after the leader's `i`-th arrival. Because the
/// binomial pipeline delivers its receivers one new block per step after
/// warm-up, position `i` is always in hand by intra step `i` — the
/// schedule validates under the standard invariants.
///
/// This removes the sequential-phase latency of [`build`]: total steps
/// drop from `steps_inter + steps_intra` to roughly
/// `max(steps_inter, warmup_inter + steps_intra)`.
///
/// # Errors
///
/// Returns [`ScheduleError::InvalidShape`] if `rack_of.len() != n`.
pub fn build_pipelined(n: u32, k: u32, rack_of: &[u32]) -> Result<GlobalSchedule, ScheduleError> {
    debug_assert!(n >= 2 && k >= 1);
    let (racks, leaders) = rack_layout(n, rack_of)?;
    let root_rack = rack_of[0];

    let mut steps: Vec<Vec<GlobalTransfer>> = Vec::new();
    let ensure_step = |steps: &mut Vec<Vec<GlobalTransfer>>, j: usize| {
        if steps.len() <= j {
            steps.resize_with(j + 1, Vec::new);
        }
    };
    // Phase 1 (runs throughout): the inter-rack pipeline among leaders.
    let inter = if leaders.len() >= 2 {
        Some(binomial::build(leaders.len() as u32, k))
    } else {
        None
    };
    if let Some(inter) = &inter {
        for j in 0..inter.num_steps() {
            ensure_step(&mut steps, j as usize);
            steps[j as usize].extend(inter.step(j).iter().map(|t| GlobalTransfer {
                from: leaders[t.from as usize],
                to: leaders[t.to as usize],
                block: t.block,
            }));
        }
    }
    // Phase 2 (overlapped): each rack relays its leader's blocks in
    // arrival order, offset past the leader's first arrival.
    for (&rack, members) in &racks {
        if members.len() < 2 {
            continue;
        }
        let leader = members[0];
        // The leader's block arrival order and first-arrival step.
        let (arrival_order, intra_offset): (Vec<u32>, u32) = if rack == root_rack {
            // The root holds everything from step 0 in numeric order.
            ((0..k).collect(), 0)
        } else {
            let inter = inter.as_ref().ok_or_else(|| ScheduleError::InvalidShape {
                reason: "a non-root rack exists but there is only one rack leader".to_owned(),
            })?;
            let virt = leaders.iter().position(|&l| l == leader).ok_or_else(|| {
                ScheduleError::InvalidShape {
                    reason: format!("rack leader {leader} missing from the leader list"),
                }
            })? as Rank;
            let mut arrivals: Vec<(u32, u32)> = Vec::with_capacity(k as usize);
            for b in 0..k {
                // A leader the inter-rack schedule never serves is a
                // missing delivery — surface it as exactly that.
                let s = inter
                    .receive_step(virt, b)
                    .ok_or(ScheduleError::MissingDelivery {
                        rank: virt,
                        block: b,
                    })?;
                arrivals.push((s, b));
            }
            arrivals.sort_unstable();
            // Valid offset: intra step i must land strictly after the
            // leader's i-th arrival. For power-of-two leader counts the
            // arrivals are consecutive and this is `first + 1`; the
            // shadow-vertex generalisation can bunch arrivals, so take
            // the worst position.
            let off = arrivals
                .iter()
                .enumerate()
                .map(|(i, &(s, _))| s as i64 - i as i64)
                .max()
                .unwrap_or(-1)
                + 1;
            let offset = u32::try_from(off.max(0)).map_err(|_| ScheduleError::InvalidShape {
                reason: format!("intra-rack offset {off} overflows the step counter"),
            })?;
            (arrivals.into_iter().map(|(_, b)| b).collect(), offset)
        };
        let intra = binomial::build(members.len() as u32, k);
        let offset = if rack == root_rack { 0 } else { intra_offset };
        for j in 0..intra.num_steps() {
            let global = (offset + j) as usize;
            ensure_step(&mut steps, global);
            steps[global].extend(intra.step(j).iter().map(|t| GlobalTransfer {
                from: members[t.from as usize],
                to: members[t.to as usize],
                block: arrival_order[t.block as usize],
            }));
        }
    }
    Ok(GlobalSchedule::from_steps(
        Algorithm::HybridPipelined {
            rack_of: rack_of.to_vec(),
        },
        n,
        k,
        steps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_racks(n: u32) -> Vec<u32> {
        (0..n).map(|r| if r < n / 2 { 0 } else { 1 }).collect()
    }

    #[test]
    fn validates_for_various_shapes() {
        for (n, racks) in [
            (8u32, two_racks(8)),
            (9, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]),
            (6, vec![0, 1, 2, 0, 1, 2]),
            (4, vec![0, 0, 0, 0]), // single rack: pure intra pipeline
            (5, vec![0, 1, 1, 1, 1]),
        ] {
            for k in [1u32, 3, 6] {
                let g = build(n, k, &racks).unwrap();
                g.validate()
                    .unwrap_or_else(|e| panic!("n={n} k={k} racks={racks:?}: {e}"));
            }
        }
    }

    #[test]
    fn each_block_crosses_rack_boundary_once_per_remote_rack() {
        let rack_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let g = build(8, 4, &rack_of).unwrap();
        for b in 0..4 {
            let crossings = (0..g.num_steps())
                .flat_map(|j| g.step(j).iter())
                .filter(|t| t.block == b && rack_of[t.from as usize] != rack_of[t.to as usize])
                .count();
            assert_eq!(crossings, 1, "block {b}");
        }
    }

    #[test]
    fn leaders_are_lowest_ranks() {
        let rack_of = vec![0, 1, 0, 1, 0, 1];
        let g = build(6, 2, &rack_of).unwrap();
        // Inter-rack transfers only ever involve ranks 0 and 1.
        for j in 0..g.num_steps() {
            for t in g.step(j) {
                if rack_of[t.from as usize] != rack_of[t.to as usize] {
                    assert!(t.from <= 1 && t.to <= 1, "cross-rack {t:?}");
                }
            }
        }
    }

    #[test]
    fn wrong_rack_assignment_length_is_an_error() {
        let err = build(4, 1, &[0, 0, 1]).unwrap_err();
        assert!(err.to_string().contains("cover every rank"), "{err}");
        let err = build_pipelined(4, 1, &[0, 0, 1]).unwrap_err();
        assert!(err.to_string().contains("cover every rank"), "{err}");
    }

    #[test]
    fn pipelined_variant_validates_for_various_shapes() {
        for (n, racks) in [
            (8u32, two_racks(8)),
            (9, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]),
            (12, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]),
            (6, vec![0, 1, 2, 0, 1, 2]),
            (4, vec![0, 0, 0, 0]),
            (5, vec![0, 1, 1, 1, 1]),
            // Non-power-of-two leader counts exercise the shadow offset.
            (10, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]),
        ] {
            for k in [1u32, 2, 5, 9] {
                let g = build_pipelined(n, k, &racks).unwrap();
                g.validate()
                    .unwrap_or_else(|e| panic!("n={n} k={k} racks={racks:?}: {e}"));
            }
        }
    }

    #[test]
    fn pipelined_variant_finishes_in_fewer_steps() {
        let rack_of = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3];
        for k in [4u32, 16, 64] {
            let phased = build(16, k, &rack_of).unwrap();
            let pipelined = build_pipelined(16, k, &rack_of).unwrap();
            assert!(
                pipelined.num_steps() < phased.num_steps(),
                "k={k}: pipelined {} vs phased {}",
                pipelined.num_steps(),
                phased.num_steps()
            );
        }
    }

    #[test]
    fn pipelined_variant_still_crosses_racks_once_per_block() {
        let rack_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let g = build_pipelined(8, 6, &rack_of).unwrap();
        for b in 0..6 {
            let crossings = (0..g.num_steps())
                .flat_map(|j| g.step(j).iter())
                .filter(|t| t.block == b && rack_of[t.from as usize] != rack_of[t.to as usize])
                .count();
            assert_eq!(crossings, 1, "block {b}");
        }
    }
}
