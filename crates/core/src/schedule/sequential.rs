//! Sequential send (paper §4.3): the root transmits the entire message to
//! each recipient in turn. `N` replicas of a `B`-bit message cost the
//! sender's NIC `N·B` bits — the hot spot the smarter schedules remove.

use crate::schedule::{GlobalSchedule, GlobalTransfer};
use crate::types::Algorithm;

/// Builds the sequential schedule: receiver 1 gets blocks `0..k`, then
/// receiver 2, and so on. One transfer per step, all from the root.
pub fn build(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2 && k >= 1);
    let mut steps = Vec::with_capacity(((n - 1) * k) as usize);
    for to in 1..n {
        for block in 0..k {
            steps.push(vec![GlobalTransfer { from: 0, to, block }]);
        }
    }
    GlobalSchedule::from_steps(Algorithm::Sequential, n, k, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_counts() {
        let g = build(5, 3);
        g.validate().unwrap();
        assert_eq!(g.num_steps(), 12);
        assert_eq!(g.num_transfers(), 12);
    }

    #[test]
    fn receivers_complete_in_rank_order() {
        let g = build(4, 2);
        let done: Vec<u32> = (1..4).map(|r| g.completion_step(r).unwrap()).collect();
        assert_eq!(done, vec![1, 3, 5]);
    }

    #[test]
    fn sender_io_load_is_n_times_message() {
        // Every byte leaves the root: (n-1) * k transfers from rank 0.
        let g = build(9, 4);
        let from_root = (0..g.num_steps())
            .flat_map(|j| g.step(j).iter())
            .filter(|t| t.from == 0)
            .count();
        assert_eq!(from_root, 8 * 4);
    }
}
