//! Binomial tree (paper §4.3, Fig. 3 left): whole messages relayed along
//! a binomial tree. Latency is logarithmic in the group size, but inner
//! transfers cannot start until the enclosing round finishes — the
//! shortcoming the binomial *pipeline* fixes.

use crate::schedule::{GlobalSchedule, GlobalTransfer};
use crate::types::Algorithm;

/// Builds the binomial-tree schedule. In round `r` (1-based) every node
/// `i < 2^(r−1)` that holds the message sends it, block by block, to
/// `i + 2^(r−1)`; round `r` occupies steps `(r−1)·k .. r·k`. Completion
/// takes `ceil(log2 n) · k` steps.
pub fn build(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2 && k >= 1);
    let rounds = 32 - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut steps = Vec::with_capacity((rounds * k) as usize);
    for r in 1..=rounds {
        let stride = 1u32 << (r - 1);
        for block in 0..k {
            let mut this_step = Vec::new();
            for i in 0..stride.min(n) {
                let to = i + stride;
                if to < n {
                    this_step.push(GlobalTransfer { from: i, to, block });
                }
            }
            steps.push(this_step);
        }
    }
    GlobalSchedule::from_steps(Algorithm::BinomialTree, n, k, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_across_sizes() {
        for n in [2u32, 3, 4, 6, 8, 15, 16, 33] {
            for k in [1u32, 3, 8] {
                let g = build(n, k);
                g.validate().unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
                let rounds = 32 - (n - 1).leading_zeros();
                assert_eq!(g.num_steps(), rounds * k);
            }
        }
    }

    #[test]
    fn fig3_left_pattern_for_eight_nodes() {
        // Paper Fig. 3 (left): 0->1, then {0->2, 1->3}, then
        // {0->4, 1->5, 2->6, 3->7}.
        let g = build(8, 1);
        let round =
            |j: u32| -> Vec<(u32, u32)> { g.step(j).iter().map(|t| (t.from, t.to)).collect() };
        assert_eq!(round(0), vec![(0, 1)]);
        assert_eq!(round(1), vec![(0, 2), (1, 3)]);
        assert_eq!(round(2), vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
    }

    #[test]
    fn inner_nodes_relay_only_after_receiving_everything() {
        let g = build(8, 4);
        // Node 1 receives blocks at steps 0..4 and first relays at step 4.
        let first_send = (0..g.num_steps())
            .find(|&j| g.step(j).iter().any(|t| t.from == 1))
            .unwrap();
        assert_eq!(first_send, 4);
    }
}
