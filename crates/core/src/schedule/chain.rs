//! Chain send (paper §4.3): a bucket brigade in the spirit of chain
//! replication. Every inner node relays each block to its successor as
//! soon as it arrives, so relayers use their full bidirectional
//! bandwidth; the price is worst-case latency linear in the chain length.

use crate::schedule::{GlobalSchedule, GlobalTransfer};
use crate::types::Algorithm;

/// Builds the chain schedule: node `i` receives block `b` from `i − 1` at
/// step `b + i − 1` and forwards it at step `b + i`. Completion takes
/// `n + k − 2` steps.
pub fn build(n: u32, k: u32) -> GlobalSchedule {
    assert!(n >= 2 && k >= 1);
    let num_steps = n + k - 2;
    let mut steps = Vec::with_capacity(num_steps as usize);
    for j in 0..num_steps {
        let mut this_step = Vec::new();
        // Node i forwards block j - i (when that block exists) to i + 1.
        for i in 0..n - 1 {
            if j >= i && j - i < k {
                this_step.push(GlobalTransfer {
                    from: i,
                    to: i + 1,
                    block: j - i,
                });
            }
        }
        steps.push(this_step);
    }
    GlobalSchedule::from_steps(Algorithm::Chain, n, k, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_finishes_in_n_plus_k_minus_2() {
        for (n, k) in [(2u32, 1u32), (4, 4), (8, 16), (5, 3)] {
            let g = build(n, k);
            g.validate().unwrap();
            assert_eq!(g.num_steps(), n + k - 2);
            assert_eq!(g.completion_step(n - 1), Some(n + k - 3));
        }
    }

    #[test]
    fn steady_state_has_every_inner_node_relaying() {
        // With enough blocks, in the middle of the transfer every inner
        // link is busy at every step.
        let g = build(4, 10);
        for j in 3..9 {
            assert_eq!(g.step(j).len(), 3, "step {j}");
        }
    }

    #[test]
    fn each_block_visits_every_link_once() {
        let g = build(5, 4);
        for b in 0..4 {
            let hops: Vec<(u32, u32)> = (0..g.num_steps())
                .flat_map(|j| g.step(j).iter())
                .filter(|t| t.block == b)
                .map(|t| (t.from, t.to))
                .collect();
            assert_eq!(hops, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        }
    }
}
