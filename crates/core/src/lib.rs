//! # rdmc — Reliable RDMA Multicast for Large Objects
//!
//! A from-scratch Rust implementation of **RDMC** (Behrens, Jha, Birman,
//! Tremel — DSN 2018): reliable multicast built from reliable unicast
//! transfers. Messages are split into blocks and moved along a
//! deterministic, precomputed schedule; the flagship *binomial pipeline*
//! delivers a `k`-block message to `n` nodes in `log2(n) + k − 1`
//! block-times while keeping every NIC busy in both directions.
//!
//! This crate is transport-agnostic. It contains:
//!
//! - [`schedule`] — the four block-dissemination algorithms of §4.3
//!   (sequential, chain, binomial tree, binomial pipeline) plus the
//!   rack-aware hybrid, with global-view validation of their invariants.
//! - [`engine`] — the sans-IO per-member protocol state machine
//!   (ready-for-block gating, size discovery via immediates, failure
//!   wedging and relay).
//! - [`analysis`] — the paper's §4.4–4.5 closed forms (slack, slow-link
//!   bandwidth bound, delay absorption) and empirical cross-checks.
//!
//! Drivers live in sibling crates: the orchestration in `rdmc-sim` is
//! generic over the `verbs` `Transport` trait, so one driver runs the
//! engine over both simulated RDMA verbs and the real-TCP backend in
//! `rdmc-tcp` (the paper's §5.3 port).
//!
//! ## Example: planning and inspecting a schedule
//!
//! ```
//! use rdmc::schedule::GlobalSchedule;
//! use rdmc::Algorithm;
//!
//! // 16 nodes, 8 blocks: the binomial pipeline finishes in
//! // log2(16) + 8 - 1 = 11 steps.
//! let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, 16, 8);
//! g.validate()?;
//! assert_eq!(g.num_steps(), 11);
//! # Ok::<(), rdmc::schedule::ScheduleError>(())
//! ```
//!
//! ## Example: driving an engine by hand
//!
//! ```
//! use std::sync::Arc;
//! use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
//! use rdmc::schedule::SchedulePlanner;
//! use rdmc::Algorithm;
//!
//! let planner = Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline));
//! let config = EngineConfig {
//!     rank: 0,
//!     num_nodes: 2,
//!     block_size: 1 << 20,
//!     ready_window: 2,
//!     max_outstanding_sends: 2,
//!     planner,
//! };
//! let (mut root, actions) = GroupEngine::new(config);
//! assert!(actions.is_empty()); // the root grants no credits
//!
//! // The app submits a 1-byte message; the send waits for the receiver's
//! // ready-for-block credit.
//! let actions = root.handle(Event::StartSend { size: 1 })?;
//! assert!(actions.is_empty());
//! let actions = root.handle(Event::ReadyReceived { from: 1 })?;
//! assert!(matches!(actions[0], Action::SendBlock { to: 1, block: 0, .. }));
//! # Ok::<(), rdmc::engine::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod rotation;
pub mod schedule;
mod types;

pub use types::{Algorithm, MessageLayout, Rank, Transfer};
