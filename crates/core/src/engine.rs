//! The sans-IO RDMC protocol engine (paper §4.2–4.3).
//!
//! [`GroupEngine`] is one group member's protocol state machine. It owns
//! no sockets, queues, or clocks: a *driver* feeds it [`Event`]s (a block
//! arrived, a ready-for-block notice arrived, a send completed) and
//! executes the [`Action`]s it returns (send this block, tell that peer
//! we're ready, hand the application a buffer, deliver the message). The
//! same engine therefore runs unchanged over simulated RDMA
//! (`rdmc-sim`), real TCP sockets (`rdmc-tcp`), and the in-memory
//! loopback used by the test suite.
//!
//! Protocol highlights, mirroring the paper:
//!
//! - **Deterministic schedules.** When a transfer starts, each member
//!   derives its full send/receive sequence from `(group size, rank,
//!   block count)` alone — no control traffic.
//! - **Size discovery via immediates.** Receivers learn the message size
//!   from the first block's immediate value; only then do they allocate a
//!   buffer and compute the schedule ([`Action::AllocateBuffer`]).
//! - **Ready-for-block gating.** A block is sent only after the target
//!   announced readiness ([`Event::ReadyReceived`]), so RDMA receives are
//!   always pre-posted and RNR retries never fire (§4.2). Readiness is
//!   credit-based, granted [`EngineConfig::ready_window`] transfers ahead.
//! - **Failure wedging.** On a peer failure the group stops transmitting
//!   and relays the notice so every survivor learns (§3 property 6).
//! - **Epoch-based recovery.** Once the survivors agree on the failure
//!   set, a membership layer calls [`GroupEngine::install_epoch`] with the
//!   surviving membership and per-message *resume* schedules that
//!   retransmit exactly the blocks each survivor was missing at the
//!   wedge; the engine then continues in the new epoch. Wedge-only
//!   operation (destroy and re-create the group by hand) remains the
//!   pre-recovery subset of this machinery.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::schedule::{RankSchedule, SchedulePlanner};
use crate::types::{MessageLayout, Rank};

/// Immutable configuration of one group member's engine.
#[derive(Clone)]
pub struct EngineConfig {
    /// This member's rank (0 is the root/sender).
    pub rank: Rank,
    /// Group size.
    pub num_nodes: u32,
    /// Block size in bytes used for every message in this group.
    pub block_size: u64,
    /// How many transfers ahead a receiver grants readiness per peer
    /// (≥ 1). Small values bound posted-receive memory, mirroring RDMC's
    /// "posts only a few receives per group" (§4.2).
    pub ready_window: u32,
    /// How many block sends may be posted to the NIC at once (≥ 1). The
    /// paper queues work requests ahead so the NIC never idles between
    /// blocks ("queues them up to run as asynchronously as possible",
    /// §3); 2 is usually enough to hide completion latency.
    pub max_outstanding_sends: u32,
    /// Source of block-transfer schedules.
    pub planner: Arc<SchedulePlanner>,
}

impl fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineConfig")
            .field("rank", &self.rank)
            .field("num_nodes", &self.num_nodes)
            .field("block_size", &self.block_size)
            .field("ready_window", &self.ready_window)
            .field("algorithm", self.planner.algorithm())
            .finish()
    }
}

/// An input to the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The application asked the root to multicast `size` bytes. Queued if
    /// a transfer is already active (sends complete in initiation order,
    /// §3 property 4).
    StartSend {
        /// Message size in bytes.
        size: u64,
    },
    /// A block arrived from `from`; `total_size` is the immediate value
    /// carrying the whole message's size. The block's identity is *not*
    /// on the wire: the engine derives it from the deterministic schedule
    /// and the per-connection arrival order, exactly as the paper's
    /// receivers do (§4.2).
    BlockReceived {
        /// The sending peer.
        from: Rank,
        /// The total message size from the immediate value.
        total_size: u64,
    },
    /// `from` announced readiness for our next scheduled block to it.
    ReadyReceived {
        /// The peer that is ready.
        from: Rank,
    },
    /// Our in-flight block send to `to` completed.
    SendCompleted {
        /// The target of the completed send.
        to: Rank,
    },
    /// A peer failed (local connection break, or a relayed notice).
    PeerFailed {
        /// The failed member.
        rank: Rank,
    },
}

/// An effect the driver must carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Tell `to` (e.g. via a one-sided write) that we are ready for its
    /// next scheduled block.
    SendReady {
        /// The peer to notify.
        to: Rank,
    },
    /// Transmit a block. `offset`/`bytes` locate it in the message;
    /// `total_size` must ride along as the immediate value.
    SendBlock {
        /// The receiving peer.
        to: Rank,
        /// The block number.
        block: u32,
        /// Byte offset of the block within the message.
        offset: u64,
        /// Block length in bytes.
        bytes: u64,
        /// The message's total size (the immediate).
        total_size: u64,
    },
    /// First block of a message arrived: the application must provide a
    /// buffer of `size` bytes (the `incoming_message_callback` of Fig. 1).
    AllocateBuffer {
        /// Total message size.
        size: u64,
    },
    /// The message is locally complete and its memory reusable (the
    /// `message_completion_callback` of Fig. 1).
    DeliverMessage {
        /// Total message size.
        size: u64,
    },
    /// Relay a failure notice to every surviving peer and inform the
    /// application; the group is now wedged.
    RelayFailure {
        /// The member that failed.
        failed: Rank,
    },
}

/// A protocol violation detected by the engine — always a driver or peer
/// bug, never a normal runtime condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// `StartSend` on a non-root member (§4.1: only the root sends).
    NotRoot {
        /// The offending member's rank.
        rank: Rank,
    },
    /// A block arrived from a peer the schedule expects nothing (more)
    /// from.
    UnexpectedArrival {
        /// The sending peer.
        from: Rank,
    },
    /// The immediate value disagreed with the active transfer's size.
    SizeMismatch {
        /// Size the active transfer was created with.
        expected: u64,
        /// Size carried by the offending block.
        got: u64,
    },
    /// A send completion arrived with no send in flight to that peer.
    UnexpectedSendCompletion {
        /// The reported target.
        to: Rank,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NotRoot { rank } => {
                write!(f, "rank {rank} is not the root and cannot send")
            }
            EngineError::UnexpectedArrival { from } => {
                write!(f, "unscheduled block arrived from rank {from}")
            }
            EngineError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "immediate size {got} disagrees with active transfer size {expected}"
                )
            }
            EngineError::UnexpectedSendCompletion { to } => {
                write!(f, "no send in flight to rank {to}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One interrupted message's continuation plan for a member, installed
/// with [`GroupEngine::install_epoch`]. Built by the membership layer
/// (the `recovery` crate) from every survivor's received-block bitmap:
/// the schedule's incoming transfers are exactly this member's missing
/// blocks, and its outgoing transfers only ever carry blocks the member
/// holds (initially or after a scheduled receive).
#[derive(Clone, Debug)]
pub struct ResumeTransfer {
    /// The message's total size in bytes.
    pub total_size: u64,
    /// This member's slice of the resume schedule, expressed in
    /// *new-epoch* ranks.
    pub sched: RankSchedule,
    /// Which blocks this member already holds from the old epoch.
    pub have: Vec<bool>,
    /// True if the member already delivered the message before the wedge
    /// (it participates to re-seed others but must not deliver twice).
    pub already_delivered: bool,
}

/// A new-epoch installation order for one member: its new rank, the
/// surviving group size, and the interrupted messages to finish first
/// (in original submission order).
#[derive(Clone, Debug)]
pub struct EpochInstall {
    /// Monotonically increasing epoch number (the initial epoch is 0).
    pub epoch: u64,
    /// This member's rank in the new epoch.
    pub rank: Rank,
    /// Surviving group size.
    pub num_nodes: u32,
    /// Interrupted messages to resume, oldest first.
    pub resumes: Vec<ResumeTransfer>,
}

/// Placement of one schedule-determined block within a message buffer:
/// which block is (or will be) on the wire, and where its bytes live.
/// Returned by [`GroupEngine::next_expected_block`] and
/// [`GroupEngine::incoming_block_info`] so drivers can aim incoming
/// payloads without tuple-position guesswork.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDescriptor {
    /// Block number within the message.
    pub block: u32,
    /// Byte offset of the block within the message buffer.
    pub offset: u64,
    /// Block length in bytes (the final block may be short).
    pub bytes: u64,
}

/// Instantaneous send-side pressure at one member, for admission and
/// load-reporting layers (the multi-tenant traffic engine samples this
/// at every arrival to find each group's backlog high-water mark).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueuePressure {
    /// Root only: messages accepted but not yet begun.
    pub queued_messages: usize,
    /// Whether a transfer is currently active at this member.
    pub active: bool,
    /// Block sends posted to the NIC and not yet completed.
    pub inflight_block_sends: u32,
    /// Interrupted messages still awaiting resumption in this epoch.
    pub pending_resumes: usize,
}

impl QueuePressure {
    /// Messages this member still owes work for: queued sends, pending
    /// resumes, and the active transfer if any.
    pub fn backlog(&self) -> usize {
        self.queued_messages + self.pending_resumes + usize::from(self.active)
    }
}

/// A snapshot of one not-yet-delivered (or delivered-but-still-relaying)
/// message at a wedged member, exported for the membership layer to plan
/// resumes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferStatus {
    /// The message's total size in bytes.
    pub total_size: u64,
    /// Received-block bitmap (true = this member holds the block).
    pub have: Vec<bool>,
    /// Whether the member already delivered the message locally.
    pub delivered: bool,
}

/// State of an in-progress message transfer at this member.
#[derive(Clone, Debug)]
struct ActiveTransfer {
    layout: MessageLayout,
    sched: RankSchedule,
    have: Vec<bool>,
    have_count: u32,
    received_count: u32,
    /// Index of the next outgoing transfer to issue, in schedule order.
    out_idx: usize,
    /// Posted-but-uncompleted block sends, per target.
    sends_inflight: BTreeMap<Rank, u32>,
    total_inflight: u32,
    /// Per in-peer: how many of its transfers we've granted readiness for.
    granted: BTreeMap<Rank, u32>,
    /// Per in-peer: how many of its transfers have arrived.
    recvd: BTreeMap<Rank, u32>,
    delivered: bool,
}

/// One group member's protocol state machine. See the module docs.
#[derive(Clone, Debug)]
pub struct GroupEngine {
    config: EngineConfig,
    active: Option<ActiveTransfer>,
    /// Root only: sizes waiting to be sent after the current transfer.
    send_queue: VecDeque<u64>,
    /// Unconsumed readiness credits from each peer (they persist across
    /// message boundaries: a peer may grant its next-message credit while
    /// we are still finishing this one).
    credits: BTreeMap<Rank, u32>,
    failed: BTreeSet<Rank>,
    wedged: bool,
    messages_completed: u64,
    /// Current configuration epoch (bumped by `install_epoch`).
    epoch: u64,
    /// Interrupted messages awaiting resumption in the current epoch,
    /// oldest first; drained before any newly queued send.
    pending_resumes: VecDeque<ResumeTransfer>,
    /// Flight recorder for protocol events; disabled (one branch per
    /// event) unless the driver attaches one. The engine is sans-IO and
    /// has no clock — the recorder's shared clock, kept current by the
    /// driver, timestamps its events.
    recorder: trace::Recorder,
    /// Where this engine's events are recorded (node/group/rank); the
    /// rank coordinate follows epoch renumbering.
    scope: trace::Scope,
}

impl GroupEngine {
    /// Creates the engine and returns its initial actions (a non-root
    /// member immediately grants its first-block sender one readiness
    /// credit so the transfer can start before the message size is known).
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero sizes, rank out of
    /// range).
    pub fn new(config: EngineConfig) -> (Self, Vec<Action>) {
        assert!(config.num_nodes >= 1, "group needs at least one member");
        assert!(config.rank < config.num_nodes, "rank out of range");
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.ready_window >= 1, "ready window must be at least 1");
        assert!(
            config.max_outstanding_sends >= 1,
            "need at least one outstanding send"
        );
        let mut actions = Vec::new();
        // The root's incoming transfers (if its schedule has any) are
        // granted when a send starts, not while idle.
        if config.rank != 0 {
            if let Some(first) = config.planner.first_sender(config.num_nodes, config.rank) {
                actions.push(Action::SendReady { to: first });
            }
        }
        (
            GroupEngine {
                config,
                active: None,
                send_queue: VecDeque::new(),
                credits: BTreeMap::new(),
                failed: BTreeSet::new(),
                wedged: false,
                messages_completed: 0,
                epoch: 0,
                pending_resumes: VecDeque::new(),
                recorder: trace::Recorder::disabled(),
                scope: trace::Scope::none(),
            },
            actions,
        )
    }

    /// Attaches a flight recorder, labelling this engine's events with
    /// `scope`. The initial readiness credit returned by
    /// [`GroupEngine::new`] predates this call; a driver that wants it
    /// on the record must record it itself.
    pub fn set_recorder(&mut self, recorder: trace::Recorder, scope: trace::Scope) {
        self.recorder = recorder;
        self.scope = scope;
    }

    /// This member's rank (in the current epoch).
    pub fn rank(&self) -> Rank {
        self.config.rank
    }

    /// The current configuration epoch (0 until a reconfiguration).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when no transfer is active, none is queued, and no resume is
    /// pending.
    pub fn is_idle(&self) -> bool {
        self.active.is_none() && self.send_queue.is_empty() && self.pending_resumes.is_empty()
    }

    /// True once a failure has wedged the group (no further transfers).
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Peers known to have failed.
    pub fn failed_peers(&self) -> impl Iterator<Item = Rank> + '_ {
        self.failed.iter().copied()
    }

    /// Messages locally completed so far.
    pub fn messages_completed(&self) -> u64 {
        self.messages_completed
    }

    /// The active transfer's received-block bitmap (true = held), or
    /// `None` while idle. At a wedge this is exactly what the membership
    /// layer reports to plan block-wise resumption.
    pub fn received_blocks(&self) -> Option<&[bool]> {
        self.active.as_ref().map(|t| t.have.as_slice())
    }

    /// Root only: sizes of messages accepted but not yet begun (the
    /// membership layer uses this to tell "never started" from
    /// "interrupted" at a wedge).
    pub fn queued_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.send_queue.iter().copied()
    }

    /// This member's instantaneous send-side pressure: queued sends,
    /// active-transfer flag, in-flight block sends, pending resumes.
    pub fn queue_pressure(&self) -> QueuePressure {
        QueuePressure {
            queued_messages: self.send_queue.len(),
            active: self.active.is_some(),
            inflight_block_sends: self.active.as_ref().map_or(0, |t| t.total_inflight),
            pending_resumes: self.pending_resumes.len(),
        }
    }

    /// Every message this member has begun but not fully finished with —
    /// the active transfer followed by any still-pending resumes, oldest
    /// first. Messages whose `delivered` flag is set were handed to the
    /// application before the wedge but may still owe relays to peers.
    pub fn incomplete_transfers(&self) -> Vec<TransferStatus> {
        let mut out = Vec::new();
        if let Some(t) = &self.active {
            out.push(TransferStatus {
                total_size: t.layout.size,
                have: t.have.clone(),
                delivered: t.delivered,
            });
        }
        for r in &self.pending_resumes {
            out.push(TransferStatus {
                total_size: r.total_size,
                have: r.have.clone(),
                delivered: r.already_delivered,
            });
        }
        out
    }

    /// Installs a new configuration epoch on a wedged member: adopts the
    /// surviving membership (`rank` / `num_nodes` are in new-epoch
    /// numbering), clears the failure state, and begins working through
    /// the resume plans — then any still-queued sends. Returns the
    /// actions to perform, exactly like [`GroupEngine::handle`].
    ///
    /// The caller (membership layer) must install compatible epochs on
    /// every survivor: same epoch number, same message list, schedules
    /// drawn from one global resume plan.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not wedged, the epoch does not advance,
    /// the new shape is nonsensical, or a resume's bitmap disagrees with
    /// its schedule's block count.
    pub fn install_epoch(&mut self, install: EpochInstall) -> Vec<Action> {
        assert!(self.wedged, "install_epoch requires a wedged engine");
        assert!(install.epoch > self.epoch, "epoch must advance");
        assert!(install.num_nodes >= 1, "new epoch needs members");
        assert!(install.rank < install.num_nodes, "new rank out of range");
        for r in &install.resumes {
            let layout = MessageLayout::new(r.total_size, self.config.block_size);
            assert_eq!(
                r.have.len(),
                layout.num_blocks as usize,
                "resume bitmap length disagrees with the block count"
            );
        }
        self.epoch = install.epoch;
        self.config.rank = install.rank;
        self.config.num_nodes = install.num_nodes;
        if self.scope.rank.is_some() {
            self.scope.rank = Some(install.rank);
        }
        if self.recorder.is_enabled() {
            let resume_blocks_out: u32 = install
                .resumes
                .iter()
                .map(|r| r.sched.outgoing().len() as u32)
                .sum();
            let (epoch, rank, num_nodes) = (install.epoch, install.rank, install.num_nodes);
            let resumes = install.resumes.len() as u32;
            self.recorder
                .record(self.scope, || trace::EventKind::EpochInstalled {
                    epoch,
                    rank,
                    num_nodes,
                    resumes,
                    resume_blocks_out,
                });
        }
        self.failed.clear();
        self.wedged = false;
        // Old-epoch credits and the interrupted transfer die with the old
        // connections; resumes restate everything in new-epoch terms.
        self.credits.clear();
        self.active = None;
        self.pending_resumes = install.resumes.into();
        if self.config.rank != 0 {
            // Queued sends belong to the root; a member that is no longer
            // rank 0 can never multicast them.
            self.send_queue.clear();
        }
        let mut actions = Vec::new();
        self.begin_next_work(&mut actions);
        actions
    }

    /// Starts the next unit of work: the oldest pending resume if any,
    /// else (root) the next queued send, else re-arm the idle credit.
    fn begin_next_work(&mut self, actions: &mut Vec<Action>) {
        if let Some(resume) = self.pending_resumes.pop_front() {
            self.begin_resume(resume, actions);
            return;
        }
        if self.config.rank == 0 {
            self.begin_next_send(actions);
        } else if let Some(first) = self
            .config
            .planner
            .first_sender(self.config.num_nodes, self.config.rank)
        {
            // Re-grant the idle-state credit for the next message.
            self.recorder
                .record(self.scope, || trace::EventKind::ReadyGranted { to: first });
            actions.push(Action::SendReady { to: first });
        }
    }

    /// Activates one resume plan: the message continues from this
    /// member's old-epoch bitmap under the freshly built schedule.
    fn begin_resume(&mut self, resume: ResumeTransfer, actions: &mut Vec<Action>) {
        let layout = MessageLayout::new(resume.total_size, self.config.block_size);
        let have_count = resume.have.iter().filter(|&&h| h).count() as u32;
        self.recorder
            .record(self.scope, || trace::EventKind::ResumeStarted {
                size: resume.total_size,
                blocks: layout.num_blocks,
                held: resume
                    .have
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &h)| h.then_some(i as u32))
                    .collect(),
                already_delivered: resume.already_delivered,
            });
        if !resume.already_delivered && have_count < layout.num_blocks {
            // The buffer from the old epoch survives at this member in
            // real deployments; our drivers re-allocate, so surface the
            // allocation cost again only when blocks are still missing.
            actions.push(Action::AllocateBuffer {
                size: resume.total_size,
            });
            self.recorder
                .record(self.scope, || trace::EventKind::BufferRequested {
                    size: resume.total_size,
                });
        }
        self.active = Some(ActiveTransfer {
            layout,
            sched: resume.sched,
            have: resume.have,
            have_count,
            received_count: 0,
            out_idx: 0,
            sends_inflight: BTreeMap::new(),
            total_inflight: 0,
            granted: BTreeMap::new(),
            recvd: BTreeMap::new(),
            delivered: resume.already_delivered,
        });
        self.top_up_grants(None, actions);
        self.try_issue_send(actions);
        self.try_complete(actions);
    }

    /// Canonical encoding of the protocol-visible state, for state-space
    /// exploration (two engines with equal digests behave identically on
    /// every future event sequence). The encoding covers the credit map,
    /// failure set, queued sends, and — when a transfer is active — the
    /// received-block bitmap, outgoing progress, in-flight sends, and the
    /// per-peer grant/arrival counters.
    pub fn state_digest(&self) -> Vec<u64> {
        let mut d = Vec::new();
        d.push(self.epoch);
        d.push(self.pending_resumes.len() as u64);
        for r in &self.pending_resumes {
            d.push(r.total_size);
            d.push(u64::from(r.already_delivered));
            for chunk in r.have.chunks(64) {
                let mut word = 0u64;
                for (i, &bit) in chunk.iter().enumerate() {
                    word |= u64::from(bit) << i;
                }
                d.push(word);
            }
        }
        d.push(u64::from(self.wedged));
        d.push(self.messages_completed);
        d.push(self.credits.len() as u64);
        for (&r, &c) in &self.credits {
            d.push(u64::from(r));
            d.push(u64::from(c));
        }
        d.push(self.failed.len() as u64);
        d.extend(self.failed.iter().map(|&r| u64::from(r)));
        d.push(self.send_queue.len() as u64);
        d.extend(self.send_queue.iter().copied());
        match &self.active {
            None => d.push(0),
            Some(t) => {
                d.push(1);
                d.push(t.layout.size);
                d.push(t.out_idx as u64);
                d.push(u64::from(t.total_inflight));
                d.push(u64::from(t.delivered));
                // Received-block bitmap, packed 64 blocks per word.
                for chunk in t.have.chunks(64) {
                    let mut word = 0u64;
                    for (i, &bit) in chunk.iter().enumerate() {
                        word |= u64::from(bit) << i;
                    }
                    d.push(word);
                }
                d.push(t.sends_inflight.len() as u64);
                for (&r, &c) in &t.sends_inflight {
                    d.push(u64::from(r));
                    d.push(u64::from(c));
                }
                d.push(t.granted.len() as u64);
                for (&r, &c) in &t.granted {
                    d.push(u64::from(r));
                    d.push(u64::from(c));
                }
                d.push(t.recvd.len() as u64);
                for (&r, &c) in &t.recvd {
                    d.push(u64::from(r));
                    d.push(u64::from(c));
                }
            }
        }
        d
    }

    /// The [`BlockDescriptor`] the schedule says `from` will deliver
    /// next, so a driver can aim the incoming bytes at the right place in
    /// the receive buffer before reading them. `None` while idle (the
    /// first block's destination is only known once the size arrives —
    /// real RDMC receives it into a scratch block and copies, §4.2) or
    /// when nothing more is expected from `from`.
    pub fn next_expected_block(&self, from: Rank) -> Option<BlockDescriptor> {
        let t = self.active.as_ref()?;
        let idx = *t.recvd.get(&from).unwrap_or(&0) as usize;
        let (_, block) = t.sched.incoming_from(from).get(idx).copied()?;
        Some(BlockDescriptor {
            block,
            offset: t.layout.block_offset(block),
            bytes: t.layout.block_bytes(block),
        })
    }

    /// Like [`GroupEngine::next_expected_block`], but also answers while
    /// idle by planning against the `total_size` the arriving first block
    /// announced. Drivers that must place payload bytes before handing the
    /// engine the event (e.g. the TCP transport) use this for every
    /// arrival.
    pub fn incoming_block_info(&self, from: Rank, total_size: u64) -> Option<BlockDescriptor> {
        if self.active.is_some() {
            return self.next_expected_block(from);
        }
        let layout = MessageLayout::new(total_size, self.config.block_size);
        let sched = self
            .config
            .planner
            .plan(self.config.num_nodes, layout.num_blocks)
            .for_rank(self.config.rank);
        let (_, block) = sched.incoming_from(from).first().copied()?;
        Some(BlockDescriptor {
            block,
            offset: layout.block_offset(block),
            bytes: layout.block_bytes(block),
        })
    }

    /// Feeds one event to the engine, returning the actions the driver
    /// must perform (in order).
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] on protocol violations; the engine's
    /// state is unspecified afterwards and the group should be destroyed.
    pub fn handle(&mut self, event: Event) -> Result<Vec<Action>, EngineError> {
        let mut actions = Vec::new();
        self.handle_into(event, &mut actions)?;
        Ok(actions)
    }

    /// Like [`GroupEngine::handle`], but appends the resulting actions to
    /// a caller-owned buffer instead of allocating a fresh `Vec` per event
    /// — the hot path for drivers feeding thousands of events per virtual
    /// millisecond. Actions already in `out` are left untouched.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] on protocol violations; the engine's
    /// state is unspecified afterwards and the group should be destroyed.
    pub fn handle_into(&mut self, event: Event, out: &mut Vec<Action>) -> Result<(), EngineError> {
        let actions = out;
        match event {
            Event::StartSend { size } => {
                if self.config.rank != 0 {
                    return Err(EngineError::NotRoot {
                        rank: self.config.rank,
                    });
                }
                self.recorder
                    .record(self.scope, || trace::EventKind::MessageSubmitted { size });
                if self.wedged {
                    // The wedged group transmits nothing, but the message
                    // is accepted: it goes out in the next epoch if this
                    // member remains the root (§3 property 4 ordering is
                    // preserved across the reconfiguration).
                    self.send_queue.push_back(size);
                    return Ok(());
                }
                self.send_queue.push_back(size);
                if self.active.is_none() {
                    self.begin_next_send(actions);
                }
            }
            Event::BlockReceived { from, total_size } => {
                if self.wedged {
                    return Ok(());
                }
                let first = self.active.is_none();
                if first {
                    self.begin_receive(total_size, actions);
                }
                let t = self.active.as_mut().expect("just initialised");
                if t.layout.size != total_size {
                    return Err(EngineError::SizeMismatch {
                        expected: t.layout.size,
                        got: total_size,
                    });
                }
                // Derive which block this is from the schedule and the
                // per-connection FIFO arrival order.
                let expected = t
                    .sched
                    .incoming_from(from)
                    .get(*t.recvd.get(&from).unwrap_or(&0) as usize)
                    .copied();
                let Some((step, block)) = expected else {
                    return Err(EngineError::UnexpectedArrival { from });
                };
                *t.recvd.entry(from).or_insert(0) += 1;
                t.received_count += 1;
                if !t.have[block as usize] {
                    t.have[block as usize] = true;
                    t.have_count += 1;
                }
                let epoch = self.epoch;
                self.recorder
                    .record(self.scope, || trace::EventKind::BlockArrived {
                        from,
                        block,
                        step,
                        first,
                        epoch,
                    });
                self.top_up_grants(Some(from), actions);
                self.try_issue_send(actions);
                self.try_complete(actions);
            }
            Event::ReadyReceived { from } => {
                *self.credits.entry(from).or_insert(0) += 1;
                self.recorder
                    .record(self.scope, || trace::EventKind::ReadyHeard { from });
                if self.wedged {
                    return Ok(());
                }
                self.try_issue_send(actions);
                self.try_complete(actions);
            }
            Event::SendCompleted { to } => {
                let Some(t) = self.active.as_mut() else {
                    return Err(EngineError::UnexpectedSendCompletion { to });
                };
                match t.sends_inflight.get_mut(&to) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        t.total_inflight -= 1;
                    }
                    _ => return Err(EngineError::UnexpectedSendCompletion { to }),
                }
                self.recorder
                    .record(self.scope, || trace::EventKind::BlockSendCompleted { to });
                if self.wedged {
                    return Ok(());
                }
                self.try_issue_send(actions);
                self.try_complete(actions);
            }
            Event::PeerFailed { rank } => {
                if self.failed.insert(rank) {
                    self.wedged = true;
                    self.recorder
                        .record(self.scope, || trace::EventKind::Wedged { failed: rank });
                    actions.push(Action::RelayFailure { failed: rank });
                }
            }
        }
        Ok(())
    }

    /// Root: pop the next queued message and begin its transfer.
    fn begin_next_send(&mut self, actions: &mut Vec<Action>) {
        let Some(size) = self.send_queue.pop_front() else {
            return;
        };
        let layout = MessageLayout::new(size, self.config.block_size);
        let sched = self
            .config
            .planner
            .plan(self.config.num_nodes, layout.num_blocks)
            .for_rank(0);
        let k = layout.num_blocks;
        self.recorder
            .record(self.scope, || trace::EventKind::TransferStarted {
                size,
                blocks: k,
                root: true,
            });
        self.active = Some(ActiveTransfer {
            layout,
            sched,
            have: vec![true; k as usize],
            have_count: k,
            received_count: 0,
            out_idx: 0,
            sends_inflight: BTreeMap::new(),
            total_inflight: 0,
            granted: BTreeMap::new(),
            recvd: BTreeMap::new(),
            delivered: false,
        });
        // Some non-RDMC schedules (e.g. the MPI-style scatter/allgather
        // baseline) route blocks back through the root; grant readiness
        // for any incoming transfers it has.
        self.top_up_grants(None, actions);
        self.try_issue_send(actions);
        self.try_complete(actions);
    }

    /// Receiver: the first block of a message arrived — size now known.
    fn begin_receive(&mut self, total_size: u64, actions: &mut Vec<Action>) {
        let layout = MessageLayout::new(total_size, self.config.block_size);
        let sched = self
            .config
            .planner
            .plan(self.config.num_nodes, layout.num_blocks)
            .for_rank(self.config.rank);
        actions.push(Action::AllocateBuffer { size: total_size });
        let k = layout.num_blocks;
        self.recorder
            .record(self.scope, || trace::EventKind::TransferStarted {
                size: total_size,
                blocks: k,
                root: false,
            });
        self.recorder
            .record(self.scope, || trace::EventKind::BufferRequested {
                size: total_size,
            });
        let mut granted = BTreeMap::new();
        if let Some(first) = self
            .config
            .planner
            .first_sender(self.config.num_nodes, self.config.rank)
        {
            // The idle-state credit issued at construction / last
            // completion counts toward this message.
            granted.insert(first, 1);
        }
        self.active = Some(ActiveTransfer {
            layout,
            sched,
            have: vec![false; k as usize],
            have_count: 0,
            received_count: 0,
            out_idx: 0,
            sends_inflight: BTreeMap::new(),
            total_inflight: 0,
            granted,
            recvd: BTreeMap::new(),
            delivered: false,
        });
        self.top_up_grants(None, actions);
    }

    /// Grants readiness credits up to the window for one peer (or all).
    fn top_up_grants(&mut self, only: Option<Rank>, actions: &mut Vec<Action>) {
        let Some(t) = self.active.as_mut() else {
            return;
        };
        let window = self.config.ready_window;
        let peers: Vec<Rank> = match only {
            Some(p) => vec![p],
            None => t.sched.in_peers().collect(),
        };
        for peer in peers {
            let total = t.sched.incoming_from(peer).len() as u32;
            let recvd = *t.recvd.get(&peer).unwrap_or(&0);
            let granted = t.granted.entry(peer).or_insert(0);
            let target = total.min(recvd + window);
            while *granted < target {
                *granted += 1;
                self.recorder
                    .record(self.scope, || trace::EventKind::ReadyGranted { to: peer });
                actions.push(Action::SendReady { to: peer });
            }
        }
    }

    /// Issues the next outgoing transfer if its block is here, the target
    /// granted a credit, and no send is in flight.
    fn try_issue_send(&mut self, actions: &mut Vec<Action>) {
        let Some(t) = self.active.as_mut() else {
            return;
        };
        let max_outstanding = self.config.max_outstanding_sends;
        loop {
            if t.total_inflight >= max_outstanding || t.out_idx >= t.sched.outgoing().len() {
                return;
            }
            let (step, transfer) = t.sched.outgoing()[t.out_idx];
            if self.failed.contains(&transfer.peer) {
                // Never send to the dead; the group is wedging anyway.
                return;
            }
            if !t.have[transfer.block as usize] {
                return; // strictly in schedule order: wait for the block
            }
            let credit = self.credits.entry(transfer.peer).or_insert(0);
            if *credit == 0 {
                return; // target not ready yet (§4.2 ready-for-block)
            }
            *credit -= 1;
            t.out_idx += 1;
            *t.sends_inflight.entry(transfer.peer).or_insert(0) += 1;
            t.total_inflight += 1;
            let (bytes, epoch) = (t.layout.block_bytes(transfer.block), self.epoch);
            self.recorder
                .record(self.scope, || trace::EventKind::BlockSendIssued {
                    to: transfer.peer,
                    block: transfer.block,
                    step,
                    bytes,
                    epoch,
                });
            actions.push(Action::SendBlock {
                to: transfer.peer,
                block: transfer.block,
                offset: t.layout.block_offset(transfer.block),
                bytes: t.layout.block_bytes(transfer.block),
                total_size: t.layout.size,
            });
        }
    }

    /// Delivers the message (unless it already was, pre-wedge) and
    /// returns to the next unit of work once all receives and relays are
    /// done.
    fn try_complete(&mut self, actions: &mut Vec<Action>) {
        let Some(t) = self.active.as_mut() else {
            return;
        };
        let all_received = t.received_count == t.sched.in_count();
        let all_sent = t.out_idx >= t.sched.outgoing().len() && t.total_inflight == 0;
        if !(all_received && all_sent) {
            return;
        }
        if !t.delivered {
            t.delivered = true;
            let size = t.layout.size;
            self.recorder
                .record(self.scope, || trace::EventKind::Delivered { size });
            actions.push(Action::DeliverMessage { size });
            self.messages_completed += 1;
        }
        self.active = None;
        self.begin_next_work(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{GlobalSchedule, GlobalTransfer};
    use crate::Algorithm;

    fn engine(rank: Rank, n: u32) -> (GroupEngine, Vec<Action>) {
        GroupEngine::new(EngineConfig {
            rank,
            num_nodes: n,
            block_size: 1024,
            ready_window: 2,
            max_outstanding_sends: 2,
            planner: Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline)),
        })
    }

    #[test]
    fn receivers_pre_grant_their_first_credit() {
        let (_, actions) = engine(3, 4);
        assert_eq!(actions, vec![Action::SendReady { to: 1 }]);
        let (_, actions) = engine(0, 4);
        assert!(actions.is_empty(), "the root grants nothing while idle");
    }

    #[test]
    fn start_send_waits_for_credit_then_fires() {
        let (mut e, _) = engine(0, 2);
        assert!(e
            .handle(Event::StartSend { size: 2000 })
            .unwrap()
            .is_empty());
        let actions = e.handle(Event::ReadyReceived { from: 1 }).unwrap();
        assert!(matches!(
            actions[0],
            Action::SendBlock {
                to: 1,
                block: 0,
                bytes: 1024,
                ..
            }
        ));
    }

    #[test]
    fn size_mismatch_is_a_protocol_error() {
        let (mut e, _) = engine(1, 2);
        e.handle(Event::BlockReceived {
            from: 0,
            total_size: 2048,
        })
        .unwrap();
        let err = e
            .handle(Event::BlockReceived {
                from: 0,
                total_size: 4096,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::SizeMismatch {
                expected: 2048,
                got: 4096
            }
        ));
    }

    #[test]
    fn arrival_from_an_unscheduled_peer_is_an_error() {
        // In a 4-member binomial pipeline, rank 1's first block comes from
        // the root; rank 2 never sends to rank 1's first position.
        let (mut e, _) = engine(1, 4);
        let err = e
            .handle(Event::BlockReceived {
                from: 2,
                total_size: 100,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::UnexpectedArrival { from: 2 }));
    }

    #[test]
    fn stray_send_completion_is_an_error() {
        let (mut e, _) = engine(0, 2);
        let err = e.handle(Event::SendCompleted { to: 1 }).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnexpectedSendCompletion { to: 1 }
        ));
        assert_eq!(err.to_string(), "no send in flight to rank 1");
    }

    #[test]
    fn wedged_engine_ignores_traffic_but_reports_failures_once() {
        let (mut e, _) = engine(1, 4);
        let actions = e.handle(Event::PeerFailed { rank: 2 }).unwrap();
        assert_eq!(actions, vec![Action::RelayFailure { failed: 2 }]);
        // Duplicate notice: no second relay.
        assert!(e.handle(Event::PeerFailed { rank: 2 }).unwrap().is_empty());
        // A second distinct failure is relayed.
        let actions = e.handle(Event::PeerFailed { rank: 3 }).unwrap();
        assert_eq!(actions, vec![Action::RelayFailure { failed: 3 }]);
        assert!(e.is_wedged());
        assert_eq!(e.failed_peers().collect::<Vec<_>>(), vec![2, 3]);
        // Incoming blocks are dropped silently.
        assert!(e
            .handle(Event::BlockReceived {
                from: 0,
                total_size: 10
            })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn max_outstanding_limits_posted_sends() {
        // Sequential: the root owes 4 sends to rank 1 for a 4-block
        // message; with 2 outstanding and 4 credits, exactly 2 post.
        let (mut e, _) = GroupEngine::new(EngineConfig {
            rank: 0,
            num_nodes: 2,
            block_size: 1024,
            ready_window: 4,
            max_outstanding_sends: 2,
            planner: Arc::new(SchedulePlanner::new(Algorithm::Sequential)),
        });
        e.handle(Event::StartSend { size: 4096 }).unwrap();
        let mut posted = 0;
        for _ in 0..4 {
            posted += e
                .handle(Event::ReadyReceived { from: 1 })
                .unwrap()
                .iter()
                .filter(|a| matches!(a, Action::SendBlock { .. }))
                .count();
        }
        assert_eq!(posted, 2, "window must cap outstanding sends");
        // A completion frees a slot: one more posts.
        let actions = e.handle(Event::SendCompleted { to: 1 }).unwrap();
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::SendBlock { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn next_expected_block_tracks_arrivals() {
        let (mut e, _) = engine(1, 2);
        let desc = |block, offset, bytes| BlockDescriptor {
            block,
            offset,
            bytes,
        };
        assert_eq!(e.next_expected_block(0), None, "idle: nothing active");
        assert_eq!(
            e.incoming_block_info(0, 3000),
            Some(desc(0, 0, 1024)),
            "idle lookups plan against the announced size"
        );
        e.handle(Event::BlockReceived {
            from: 0,
            total_size: 3000,
        })
        .unwrap();
        assert_eq!(e.next_expected_block(0), Some(desc(1, 1024, 1024)));
        e.handle(Event::BlockReceived {
            from: 0,
            total_size: 3000,
        })
        .unwrap();
        // The final block is short: 3000 - 2048 = 952 bytes.
        assert_eq!(e.next_expected_block(0), Some(desc(2, 2048, 952)));
    }

    #[test]
    fn singleton_group_delivers_to_itself() {
        let (mut e, _) = engine(0, 1);
        let actions = e.handle(Event::StartSend { size: 10 }).unwrap();
        assert!(actions.contains(&Action::DeliverMessage { size: 10 }));
        assert!(e.is_idle());
        assert_eq!(e.messages_completed(), 1);
    }

    /// One member's slice of a hand-built resume schedule.
    fn resume_sched(n: u32, k: u32, steps: Vec<Vec<GlobalTransfer>>, rank: Rank) -> RankSchedule {
        GlobalSchedule::from_custom_steps("resume", n, k, steps).for_rank(rank)
    }

    #[test]
    fn wedge_then_resume_retransmits_only_missing_blocks() {
        // Rank 1 of a 3-member group receives one block of a 3-block
        // message, then learns rank 2 died (mid-transfer failure).
        let (mut e, _) = engine(1, 3);
        let planner = Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline));
        let first = planner.first_sender(3, 1).expect("rank 1 receives");
        let got_block = e
            .incoming_block_info(first, 3072)
            .expect("first block")
            .block;
        e.handle(Event::BlockReceived {
            from: first,
            total_size: 3072,
        })
        .unwrap();
        e.handle(Event::PeerFailed { rank: 2 }).unwrap();
        assert!(e.is_wedged());
        // The wedge-time bitmap is exported for the membership layer.
        let have = e.received_blocks().expect("transfer active").to_vec();
        assert_eq!(have.iter().filter(|&&h| h).count(), 1);
        assert!(have[got_block as usize]);
        // Survivors {0, 1} renumber to {0, 1}; the resume schedule sends
        // rank 1 exactly its two missing blocks, nothing else.
        let missing: Vec<u32> = (0..3).filter(|&b| !have[b as usize]).collect();
        let steps: Vec<Vec<GlobalTransfer>> = missing
            .iter()
            .map(|&b| {
                vec![GlobalTransfer {
                    from: 0,
                    to: 1,
                    block: b,
                }]
            })
            .collect();
        let actions = e.install_epoch(EpochInstall {
            epoch: 1,
            rank: 1,
            num_nodes: 2,
            resumes: vec![ResumeTransfer {
                total_size: 3072,
                sched: resume_sched(2, 3, steps, 1),
                have,
                already_delivered: false,
            }],
        });
        assert!(!e.is_wedged());
        assert_eq!(e.epoch(), 1);
        // The resume grants readiness for both missing blocks up front.
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::SendReady { to: 0 }))
                .count(),
            2
        );
        let a = e.handle(Event::BlockReceived {
            from: 0,
            total_size: 3072,
        });
        assert!(a
            .unwrap()
            .iter()
            .all(|x| !matches!(x, Action::DeliverMessage { .. })));
        let a = e
            .handle(Event::BlockReceived {
                from: 0,
                total_size: 3072,
            })
            .unwrap();
        assert!(a.contains(&Action::DeliverMessage { size: 3072 }));
        assert!(e.is_idle());
        assert_eq!(e.messages_completed(), 1);
    }

    #[test]
    fn resume_after_sender_failure_relays_held_blocks() {
        // The current sender (old rank 0) dies mid-transfer; old rank 1
        // holds block 0 and becomes new rank 0. The resume plan has it
        // forward block 0 while fetching blocks 1-2 from new rank 1.
        let (mut e, _) = engine(1, 3);
        let planner = Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline));
        let first = planner.first_sender(3, 1).expect("rank 1 receives");
        e.handle(Event::BlockReceived {
            from: first,
            total_size: 3072,
        })
        .unwrap();
        let have = e.received_blocks().unwrap().to_vec();
        let held: Vec<u32> = (0..3).filter(|&b| have[b as usize]).collect();
        assert_eq!(held.len(), 1);
        e.handle(Event::PeerFailed { rank: 0 }).unwrap();
        let missing: Vec<u32> = (0..3).filter(|&b| !have[b as usize]).collect();
        let mut steps = vec![vec![GlobalTransfer {
            from: 0,
            to: 1,
            block: held[0],
        }]];
        for &b in &missing {
            steps.push(vec![GlobalTransfer {
                from: 1,
                to: 0,
                block: b,
            }]);
        }
        let actions = e.install_epoch(EpochInstall {
            epoch: 1,
            rank: 0,
            num_nodes: 2,
            resumes: vec![ResumeTransfer {
                total_size: 3072,
                sched: resume_sched(2, 3, steps, 0),
                have,
                already_delivered: false,
            }],
        });
        // It grants readiness for its two missing blocks...
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::SendReady { to: 1 }))
                .count(),
            2
        );
        // ...and once the peer is ready, forwards the block it held.
        let a = e.handle(Event::ReadyReceived { from: 1 }).unwrap();
        assert!(a.iter().any(|x| matches!(
            x,
            Action::SendBlock { to: 1, block, .. } if *block == held[0]
        )));
        e.handle(Event::BlockReceived {
            from: 1,
            total_size: 3072,
        })
        .unwrap();
        // All blocks in, but the outgoing relay is still in flight:
        // delivery (and idling) wait for its completion.
        let a = e
            .handle(Event::BlockReceived {
                from: 1,
                total_size: 3072,
            })
            .unwrap();
        assert!(!a.contains(&Action::DeliverMessage { size: 3072 }));
        let a = e.handle(Event::SendCompleted { to: 1 }).unwrap();
        assert!(a.contains(&Action::DeliverMessage { size: 3072 }));
        assert!(e.is_idle());
    }

    #[test]
    fn already_delivered_member_reseeds_without_double_delivery() {
        let (mut e, _) = engine(1, 3);
        e.handle(Event::PeerFailed { rank: 2 }).unwrap();
        let steps = vec![vec![GlobalTransfer {
            from: 0,
            to: 1,
            block: 0,
        }]];
        // New rank 0 already delivered the 1-block message pre-wedge; it
        // only re-seeds new rank 1.
        let actions = e.install_epoch(EpochInstall {
            epoch: 1,
            rank: 0,
            num_nodes: 2,
            resumes: vec![ResumeTransfer {
                total_size: 1024,
                sched: resume_sched(2, 1, steps, 0),
                have: vec![true],
                already_delivered: true,
            }],
        });
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::DeliverMessage { .. } | Action::AllocateBuffer { .. }
            )),
            "a delivered message must not deliver or allocate again"
        );
        let a = e.handle(Event::ReadyReceived { from: 1 }).unwrap();
        assert!(a.iter().any(|x| matches!(
            x,
            Action::SendBlock {
                to: 1,
                block: 0,
                ..
            }
        )));
        let a = e.handle(Event::SendCompleted { to: 1 }).unwrap();
        assert!(!a.contains(&Action::DeliverMessage { size: 1024 }));
        assert!(e.is_idle());
        assert_eq!(e.messages_completed(), 0, "counted in the old epoch");
    }

    #[test]
    fn wedged_start_send_queues_for_the_next_epoch() {
        let (mut e, _) = engine(0, 2);
        e.handle(Event::PeerFailed { rank: 1 }).unwrap();
        assert!(e.handle(Event::StartSend { size: 500 }).unwrap().is_empty());
        assert_eq!(e.queued_sizes().collect::<Vec<_>>(), vec![500]);
        // Sole survivor: the new epoch is a singleton group, and the
        // queued message delivers to itself immediately.
        let actions = e.install_epoch(EpochInstall {
            epoch: 1,
            rank: 0,
            num_nodes: 1,
            resumes: Vec::new(),
        });
        assert!(actions.contains(&Action::DeliverMessage { size: 500 }));
        assert!(e.is_idle());
        assert_eq!(e.epoch(), 1);
    }

    #[test]
    fn incomplete_transfers_snapshot_active_and_pending() {
        let (mut e, _) = engine(1, 2);
        e.handle(Event::BlockReceived {
            from: 0,
            total_size: 2048,
        })
        .unwrap();
        e.handle(Event::PeerFailed { rank: 0 }).unwrap();
        let snap = e.incomplete_transfers();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].total_size, 2048);
        assert_eq!(snap[0].have, vec![true, false]);
        assert!(!snap[0].delivered);
    }

    #[test]
    fn queued_sends_start_in_order_after_completion() {
        let (mut e, _) = engine(0, 2);
        e.handle(Event::StartSend { size: 100 }).unwrap();
        e.handle(Event::StartSend { size: 200 }).unwrap();
        // First message: one block.
        let a = e.handle(Event::ReadyReceived { from: 1 }).unwrap();
        assert!(matches!(
            a[0],
            Action::SendBlock {
                total_size: 100,
                ..
            }
        ));
        let a = e.handle(Event::SendCompleted { to: 1 }).unwrap();
        // Delivery of msg 1 chains into msg 2 (still needing a credit).
        assert!(a.contains(&Action::DeliverMessage { size: 100 }));
        let a = e.handle(Event::ReadyReceived { from: 1 }).unwrap();
        assert!(matches!(
            a[0],
            Action::SendBlock {
                total_size: 200,
                ..
            }
        ));
    }
}
