//! End-to-end engine tests over an in-memory "perfect wire" that preserves
//! per-connection FIFO order but can otherwise interleave events
//! arbitrarily — the weakest ordering the real transports guarantee.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};

/// An in-memory cluster of engines connected by FIFO channels.
struct Loopback {
    engines: Vec<GroupEngine>,
    /// FIFO per (from, to) ordered channel, as RDMA RC / TCP would give us.
    channels: BTreeMap<(Rank, Rank), VecDeque<Event>>,
    delivered: Vec<Vec<u64>>,
    allocated: Vec<Vec<u64>>,
    rng: Option<StdRng>,
}

impl Loopback {
    fn new(n: u32, algorithm: Algorithm, block_size: u64, ready_window: u32) -> Self {
        let planner = Arc::new(SchedulePlanner::new(algorithm));
        let mut engines = Vec::new();
        let channels: BTreeMap<(Rank, Rank), VecDeque<Event>> = BTreeMap::new();
        let mut initial = Vec::new();
        for rank in 0..n {
            let (engine, actions) = GroupEngine::new(EngineConfig {
                rank,
                num_nodes: n,
                block_size,
                ready_window,
                max_outstanding_sends: 2,
                planner: Arc::clone(&planner),
            });
            engines.push(engine);
            initial.push(actions);
        }
        let mut this = Loopback {
            engines,
            channels,
            delivered: vec![Vec::new(); n as usize],
            allocated: vec![Vec::new(); n as usize],
            rng: None,
        };
        for (rank, actions) in initial.into_iter().enumerate() {
            this.perform(rank as Rank, actions);
        }
        this
    }

    /// Use a seeded RNG to pick which channel delivers next (stress event
    /// interleaving); `None` delivers in deterministic channel order.
    fn with_random_order(mut self, seed: u64) -> Self {
        self.rng = Some(StdRng::seed_from_u64(seed));
        self
    }

    fn perform(&mut self, from: Rank, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendReady { to } => {
                    self.channels
                        .entry((from, to))
                        .or_default()
                        .push_back(Event::ReadyReceived { from });
                }
                Action::SendBlock { to, total_size, .. } => {
                    self.channels
                        .entry((from, to))
                        .or_default()
                        .push_back(Event::BlockReceived { from, total_size });
                    // The hardware ack: completion back to the sender,
                    // ordered after the data on the same channel pair.
                    self.channels
                        .entry((to, from))
                        .or_default()
                        .push_back(Event::SendCompleted { to });
                }
                Action::AllocateBuffer { size } => {
                    self.allocated[from as usize].push(size);
                }
                Action::DeliverMessage { size } => {
                    self.delivered[from as usize].push(size);
                }
                Action::RelayFailure { failed } => {
                    let n = self.engines.len() as Rank;
                    for peer in 0..n {
                        if peer != from {
                            self.channels
                                .entry((from, peer))
                                .or_default()
                                .push_back(Event::PeerFailed { rank: failed });
                        }
                    }
                }
            }
        }
    }

    fn submit(&mut self, rank: Rank, event: Event) {
        let actions = self.engines[rank as usize]
            .handle(event)
            .expect("engine error");
        self.perform(rank, actions);
    }

    /// Delivers queued events until quiescent. The SendCompleted events on
    /// channel (to, from) model the hardware ack; they are consumed by
    /// `from`, so a channel (a, b) holds events consumed by `b` except for
    /// SendCompleted which `a` consumes — to keep things simple we route
    /// by inspecting the event.
    fn run(&mut self) {
        loop {
            let keys: Vec<(Rank, Rank)> = self
                .channels
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| *k)
                .collect();
            if keys.is_empty() {
                break;
            }
            let key = match &mut self.rng {
                Some(rng) => keys[rng.random_range(0..keys.len())],
                None => keys[0],
            };
            let event = self.channels.get_mut(&key).unwrap().pop_front().unwrap();
            let target = match &event {
                Event::SendCompleted { .. } => key.1,
                _ => key.1,
            };
            self.submit(target, event);
        }
    }

    fn all_idle(&self) -> bool {
        self.engines.iter().all(|e| e.is_idle())
    }
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ]
}

#[test]
fn single_message_reaches_every_member() {
    for alg in algorithms() {
        for n in [2u32, 3, 4, 5, 7, 8, 11, 16] {
            let mut lb = Loopback::new(n, alg.clone(), 1024, 2);
            lb.submit(0, Event::StartSend { size: 10_000 });
            lb.run();
            assert!(lb.all_idle(), "{alg} n={n}: not idle");
            for rank in 0..n as usize {
                assert_eq!(
                    lb.delivered[rank],
                    vec![10_000],
                    "{alg} n={n} rank={rank}: wrong deliveries"
                );
            }
            // Receivers allocated exactly one buffer of the right size.
            for rank in 1..n as usize {
                assert_eq!(lb.allocated[rank], vec![10_000], "{alg} n={n} rank={rank}");
            }
        }
    }
}

#[test]
fn hybrid_schedule_end_to_end() {
    let rack_of = vec![0, 0, 0, 1, 1, 1, 2, 2];
    let mut lb = Loopback::new(8, Algorithm::Hybrid { rack_of }, 512, 2);
    lb.submit(0, Event::StartSend { size: 5_000 });
    lb.run();
    assert!(lb.all_idle());
    for rank in 0..8 {
        assert_eq!(lb.delivered[rank], vec![5_000]);
    }
}

#[test]
fn message_smaller_than_block_is_single_block() {
    let mut lb = Loopback::new(4, Algorithm::BinomialPipeline, 1 << 20, 2);
    lb.submit(0, Event::StartSend { size: 1 });
    lb.run();
    for rank in 0..4 {
        assert_eq!(lb.delivered[rank], vec![1]);
    }
}

#[test]
fn zero_byte_message_still_delivers() {
    let mut lb = Loopback::new(3, Algorithm::Chain, 4096, 2);
    lb.submit(0, Event::StartSend { size: 0 });
    lb.run();
    for rank in 0..3 {
        assert_eq!(lb.delivered[rank], vec![0]);
    }
}

#[test]
fn exact_block_multiple_has_no_ragged_tail() {
    let mut lb = Loopback::new(6, Algorithm::BinomialPipeline, 1000, 2);
    lb.submit(0, Event::StartSend { size: 8_000 });
    lb.run();
    for rank in 0..6 {
        assert_eq!(lb.delivered[rank], vec![8_000]);
    }
}

#[test]
fn back_to_back_messages_of_different_sizes() {
    for alg in algorithms() {
        let mut lb = Loopback::new(5, alg.clone(), 1024, 2);
        // Queue three sends up front: sizes force different block counts,
        // so schedules are rebuilt per message.
        lb.submit(0, Event::StartSend { size: 10_000 });
        lb.submit(0, Event::StartSend { size: 100 });
        lb.submit(0, Event::StartSend { size: 50_000 });
        lb.run();
        assert!(lb.all_idle(), "{alg}");
        for rank in 0..5 {
            assert_eq!(
                lb.delivered[rank],
                vec![10_000, 100, 50_000],
                "{alg} rank={rank}: messages must arrive in send order"
            );
        }
    }
}

#[test]
fn many_small_messages_in_sequence() {
    let mut lb = Loopback::new(4, Algorithm::BinomialPipeline, 1 << 20, 2);
    for i in 0..20u64 {
        lb.submit(0, Event::StartSend { size: i + 1 });
    }
    lb.run();
    for rank in 0..4 {
        assert_eq!(lb.delivered[rank].len(), 20);
        assert_eq!(lb.delivered[rank][19], 20);
    }
}

#[test]
fn ready_window_of_one_still_completes() {
    for alg in algorithms() {
        let mut lb = Loopback::new(8, alg.clone(), 512, 1);
        lb.submit(0, Event::StartSend { size: 9_999 });
        lb.run();
        for rank in 0..8 {
            assert_eq!(lb.delivered[rank], vec![9_999], "{alg} rank={rank}");
        }
    }
}

#[test]
fn wide_ready_window_matches_narrow() {
    let mut narrow = Loopback::new(6, Algorithm::BinomialPipeline, 256, 1);
    let mut wide = Loopback::new(6, Algorithm::BinomialPipeline, 256, 8);
    for lb in [&mut narrow, &mut wide] {
        lb.submit(0, Event::StartSend { size: 4_096 });
        lb.run();
    }
    assert_eq!(narrow.delivered, wide.delivered);
}

#[test]
fn non_root_send_is_rejected() {
    let planner = Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline));
    let (mut engine, _) = GroupEngine::new(EngineConfig {
        rank: 3,
        num_nodes: 4,
        block_size: 1024,
        ready_window: 2,
        max_outstanding_sends: 2,
        planner,
    });
    let err = engine.handle(Event::StartSend { size: 10 }).unwrap_err();
    assert_eq!(err.to_string(), "rank 3 is not the root and cannot send");
}

#[test]
fn failure_notice_wedges_everyone() {
    let mut lb = Loopback::new(6, Algorithm::BinomialPipeline, 1024, 2);
    // Node 4 locally detects that node 2 died.
    lb.submit(4, Event::PeerFailed { rank: 2 });
    lb.run();
    for (rank, engine) in lb.engines.iter().enumerate() {
        if rank == 2 {
            continue; // the dead node's own engine is unreachable in reality
        }
        assert!(
            engine.is_wedged(),
            "rank {rank} did not learn of the failure"
        );
        assert_eq!(engine.failed_peers().collect::<Vec<_>>(), vec![2]);
    }
}

#[test]
fn wedged_root_refuses_new_transfers() {
    let mut lb = Loopback::new(4, Algorithm::Chain, 1024, 2);
    lb.submit(0, Event::PeerFailed { rank: 3 });
    lb.run();
    lb.submit(0, Event::StartSend { size: 1000 });
    lb.run();
    for rank in 0..4 {
        assert!(lb.delivered[rank].is_empty(), "no delivery after wedge");
    }
}

#[test]
fn random_event_interleavings_preserve_delivery() {
    // The same multicast under 20 random FIFO-preserving interleavings.
    for seed in 0..20u64 {
        for alg in algorithms() {
            let mut lb = Loopback::new(7, alg.clone(), 512, 2).with_random_order(seed);
            lb.submit(0, Event::StartSend { size: 6_000 });
            lb.submit(0, Event::StartSend { size: 2_000 });
            lb.run();
            assert!(lb.all_idle(), "{alg} seed={seed}");
            for rank in 0..7 {
                assert_eq!(
                    lb.delivered[rank],
                    vec![6_000, 2_000],
                    "{alg} seed={seed} rank={rank}"
                );
            }
        }
    }
}

#[test]
fn large_group_binomial_pipeline() {
    let mut lb = Loopback::new(64, Algorithm::BinomialPipeline, 4096, 3);
    lb.submit(0, Event::StartSend { size: 1 << 20 });
    lb.run();
    for rank in 0..64 {
        assert_eq!(lb.delivered[rank], vec![1 << 20]);
    }
}
