//! Property-based tests of the protocol engine under randomly interleaved
//! (but per-channel FIFO) event delivery — the weakest ordering any real
//! transport provides.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;
use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};

/// Runs `messages` through `n` engines, delivering channel events in an
/// order chosen by the `picks` stream (FIFO per channel). Returns per-rank
/// delivered sizes.
fn run_interleaved(
    algorithm: Algorithm,
    n: u32,
    block_size: u64,
    messages: &[u64],
    mut picks: impl FnMut(usize) -> usize,
) -> Vec<Vec<u64>> {
    let planner = Arc::new(SchedulePlanner::new(algorithm));
    let mut engines = Vec::new();
    let mut channels: BTreeMap<(Rank, Rank), VecDeque<Event>> = BTreeMap::new();
    let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    let perform = |from: Rank,
                   actions: Vec<Action>,
                   channels: &mut BTreeMap<(Rank, Rank), VecDeque<Event>>,
                   delivered: &mut Vec<Vec<u64>>| {
        for action in actions {
            match action {
                Action::SendReady { to } => channels
                    .entry((from, to))
                    .or_default()
                    .push_back(Event::ReadyReceived { from }),
                Action::SendBlock { to, total_size, .. } => {
                    channels
                        .entry((from, to))
                        .or_default()
                        .push_back(Event::BlockReceived { from, total_size });
                    channels
                        .entry((to, from))
                        .or_default()
                        .push_back(Event::SendCompleted { to });
                }
                Action::DeliverMessage { size } => delivered[from as usize].push(size),
                Action::AllocateBuffer { .. } => {}
                Action::RelayFailure { .. } => unreachable!("no failures injected"),
            }
        }
    };
    for rank in 0..n {
        let (engine, actions) = GroupEngine::new(EngineConfig {
            rank,
            num_nodes: n,
            block_size,
            ready_window: 2,
            max_outstanding_sends: 2,
            planner: Arc::clone(&planner),
        });
        engines.push(engine);
        perform(rank, actions, &mut channels, &mut delivered);
    }
    for &size in messages {
        let actions = engines[0].handle(Event::StartSend { size }).expect("send");
        perform(0, actions, &mut channels, &mut delivered);
    }
    loop {
        let keys: Vec<(Rank, Rank)> = channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(k, _)| *k)
            .collect();
        if keys.is_empty() {
            break;
        }
        let key = keys[picks(keys.len())];
        let event = channels.get_mut(&key).unwrap().pop_front().unwrap();
        let target = key.1;
        let actions = engines[target as usize].handle(event).expect("engine ok");
        perform(target, actions, &mut channels, &mut delivered);
    }
    assert!(engines.iter().all(|e| e.is_idle()), "engines not idle");
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the interleaving, every member delivers every message, in
    /// order, exactly once.
    #[test]
    fn delivery_is_interleaving_invariant(
        n in 2u32..10,
        block_size in prop::sample::select(vec![64u64, 500, 1 << 12]),
        messages in prop::collection::vec(0u64..60_000, 1..5),
        choices in prop::collection::vec(any::<prop::sample::Index>(), 0..4096),
    ) {
        let mut idx = 0usize;
        let picks = |len: usize| {
            let c = choices
                .get(idx)
                .map(|i| i.index(len))
                .unwrap_or(0);
            idx += 1;
            c
        };
        let delivered = run_interleaved(Algorithm::BinomialPipeline, n, block_size, &messages, picks);
        for (rank, got) in delivered.iter().enumerate() {
            prop_assert_eq!(got, &messages, "rank {} deliveries differ", rank);
        }
    }

    /// The same holds for every schedule family.
    #[test]
    fn all_algorithms_are_interleaving_invariant(
        alg_idx in 0usize..4,
        n in 2u32..8,
        choices in prop::collection::vec(any::<prop::sample::Index>(), 0..2048),
    ) {
        let algorithm = [
            Algorithm::Sequential,
            Algorithm::Chain,
            Algorithm::BinomialTree,
            Algorithm::BinomialPipeline,
        ][alg_idx]
            .clone();
        let messages = [10_000u64, 1];
        let mut idx = 0usize;
        let picks = |len: usize| {
            let c = choices.get(idx).map(|i| i.index(len)).unwrap_or(0);
            idx += 1;
            c
        };
        let delivered = run_interleaved(algorithm.clone(), n, 1024, &messages, picks);
        for (rank, got) in delivered.iter().enumerate() {
            prop_assert_eq!(got.as_slice(), &messages[..], "{} rank {}", algorithm, rank);
        }
    }
}
