//! Property-based tests of schedule and analysis invariants.

use proptest::prelude::*;
use rdmc::analysis;
use rdmc::schedule::{send_at_step, GlobalSchedule};
use rdmc::Algorithm;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sequential),
        Just(Algorithm::Chain),
        Just(Algorithm::BinomialTree),
        Just(Algorithm::BinomialPipeline),
    ]
}

/// An algorithm paired with a legal group size — includes both hybrid
/// variants over an arbitrary rack assignment (so non-power-of-two group
/// and rack sizes are exercised constantly).
fn arb_algorithm_with_n() -> impl Strategy<Value = (Algorithm, u32)> {
    let flat = (arb_algorithm(), 1u32..24).prop_map(|(alg, n)| (alg, n));
    // Rack assignments: every rank gets a rack in 0..nr, remapped so the
    // used rack ids are contiguous (the builders require rack ids to
    // cover 0..#racks).
    let hybrid = (
        2u32..20,
        2u32..5,
        any::<bool>(),
        prop::collection::vec(0u32..4, 2..20),
    )
        .prop_map(|(n, nr, pipelined, raw)| {
            let mut rack_of: Vec<u32> = (0..n as usize)
                .map(|i| raw.get(i % raw.len()).copied().unwrap_or(0) % nr)
                .collect();
            // Remap to contiguous rack ids 0..#used.
            let mut seen: Vec<u32> = Vec::new();
            for r in &mut rack_of {
                let id = match seen.iter().position(|s| s == r) {
                    Some(p) => p as u32,
                    None => {
                        seen.push(*r);
                        (seen.len() - 1) as u32
                    }
                };
                *r = id;
            }
            let alg = if pipelined {
                Algorithm::HybridPipelined { rack_of }
            } else {
                Algorithm::Hybrid { rack_of }
            };
            (alg, n)
        });
    prop_oneof![flat, hybrid]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm produces a valid schedule (exactly-once delivery,
    /// holders-only sends, no root receives) for arbitrary group sizes and
    /// block counts.
    #[test]
    fn schedules_always_validate(alg in arb_algorithm(), n in 1u32..40, k in 1u32..24) {
        let g = GlobalSchedule::build(&alg, n, k);
        prop_assert!(g.validate().is_ok(), "{alg} n={n} k={k}: {:?}", g.validate());
    }

    /// The binomial pipeline finishes in exactly `ceil(log2 n) + k - 1`
    /// asynchronous steps, matching the paper's bound, for every size.
    #[test]
    fn binomial_pipeline_step_count(n in 2u32..130, k in 1u32..20) {
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
        prop_assert_eq!(g.num_steps(), analysis::log2_ceil(n) + k - 1);
        // And nobody completes later than the final step.
        for rank in 1..n {
            let done = g.completion_step(rank).expect("receiver completes");
            prop_assert!(done < g.num_steps());
        }
    }

    /// The rank that delivers a member's first block never depends on the
    /// block count — the property that lets RDMC pre-grant the first
    /// ready-for-block credit before the message size is known (§4.2).
    #[test]
    fn first_sender_is_block_count_invariant(
        alg in arb_algorithm(),
        n in 2u32..34,
        k1 in 1u32..16,
        k2 in 1u32..16,
    ) {
        let a = GlobalSchedule::build(&alg, n, k1);
        let b = GlobalSchedule::build(&alg, n, k2);
        for rank in 0..n {
            prop_assert_eq!(a.first_sender(rank), b.first_sender(rank), "{} rank {}", alg, rank);
        }
    }

    /// Each rank's slice of the schedule exactly partitions the global
    /// transfer list.
    #[test]
    fn rank_slices_partition_global(alg in arb_algorithm(), n in 1u32..24, k in 1u32..12) {
        let g = GlobalSchedule::build(&alg, n, k);
        let mut out_total = 0usize;
        let mut in_total = 0usize;
        for rank in 0..n {
            let rs = g.for_rank(rank);
            out_total += rs.outgoing().len();
            in_total += rs.in_count() as usize;
            // Non-root members of a valid schedule receive exactly k blocks.
            if rank != 0 {
                prop_assert_eq!(rs.in_count(), k);
            }
        }
        prop_assert_eq!(out_total, g.num_transfers());
        prop_assert_eq!(in_total, g.num_transfers());
    }

    /// Exact partition: the multiset of `(step, from, to, block)` tuples
    /// reassembled from the per-rank sender slices — and, independently,
    /// from the per-rank receiver slices — is *identical* to the global
    /// schedule's transfer list. Every transfer lands in exactly one
    /// sender slice and exactly one receiver slice; nothing is dropped,
    /// duplicated, or re-addressed by the slicing. Covers both hybrid
    /// variants at non-power-of-two group and rack sizes.
    #[test]
    fn rank_slices_are_an_exact_partition((alg, n) in arb_algorithm_with_n(), k in 1u32..10) {
        let g = GlobalSchedule::build(&alg, n, k);
        let mut global: Vec<(u32, u32, u32, u32)> = g
            .transfers()
            .map(|(j, t)| (j, t.from, t.to, t.block))
            .collect();
        let mut from_senders = Vec::with_capacity(global.len());
        let mut from_receivers = Vec::with_capacity(global.len());
        for rank in 0..n {
            let rs = g.for_rank(rank);
            for &(j, t) in rs.outgoing() {
                from_senders.push((j, rank, t.peer, t.block));
            }
            for peer in rs.in_peers().collect::<Vec<_>>() {
                for &(j, block) in rs.incoming_from(peer) {
                    from_receivers.push((j, peer, rank, block));
                }
            }
        }
        global.sort_unstable();
        from_senders.sort_unstable();
        from_receivers.sort_unstable();
        prop_assert_eq!(&from_senders, &global, "{} n={} k={}: sender slices", alg, n, k);
        prop_assert_eq!(&from_receivers, &global, "{} n={} k={}: receiver slices", alg, n, k);
    }

    /// The §4.4 closed-form send rule agrees with the built power-of-two
    /// schedule: the union of per-step sends is identical.
    #[test]
    fn closed_form_matches_built_schedule(l in 1u32..7, k in 1u32..12) {
        let n = 1u32 << l;
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
        // Collect kept transfers per step, and check each appears in the
        // closed form (pruning only ever removes, and for powers of two
        // nothing is pruned).
        for j in 0..g.num_steps() {
            let mut formula: Vec<(u32, u32, u32)> = (0..n)
                .filter_map(|i| send_at_step(n, i, j, k).map(|t| (i, t.peer, t.block)))
                .collect();
            let mut built: Vec<(u32, u32, u32)> =
                g.step(j).iter().map(|t| (t.from, t.to, t.block)).collect();
            formula.sort_unstable();
            built.sort_unstable();
            prop_assert_eq!(formula, built, "step {}", j);
        }
    }

    /// Steady-state slack of the power-of-two binomial pipeline matches
    /// the paper's constant 2(1 − (l−1)/(n−2)) at every steady step.
    #[test]
    fn slack_constant_property(l in 2u32..7, k in 3u32..16) {
        let n = 1u32 << l;
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
        let predicted = analysis::predicted_avg_slack(n);
        for j in analysis::steady_steps(n, k) {
            let measured = analysis::empirical_avg_slack(&g, j).expect("senders exist");
            prop_assert!((measured - predicted).abs() < 1e-9,
                "n={} step {}: {} vs {}", n, j, measured, predicted);
        }
    }

    /// Chain: every block crosses every link exactly once — no redundant
    /// transfers (the property behind the Fig. 9 bisection argument).
    #[test]
    fn chain_has_no_redundant_transfers(n in 2u32..20, k in 1u32..12) {
        let g = GlobalSchedule::build(&Algorithm::Chain, n, k);
        prop_assert_eq!(g.num_transfers() as u32, (n - 1) * k);
    }

    /// The binomial pipeline also moves each block the minimum number of
    /// times: (n − 1) deliveries per block, nothing redundant.
    #[test]
    fn binomial_pipeline_minimal_transfer_count(n in 2u32..40, k in 1u32..12) {
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
        prop_assert_eq!(g.num_transfers() as u32, (n - 1) * k);
    }

    /// Slow-link fraction stays within (0, 1] and the paper's example
    /// ordering holds: more hypercube dimensions dilute a slow link more.
    #[test]
    fn slow_link_fraction_bounds(l in 1u32..10, slow_pct in 1u32..=100) {
        let f = analysis::slow_link_bandwidth_fraction(l, 1.0, slow_pct as f64 / 100.0);
        prop_assert!(f > 0.0 && f <= 1.0);
        if l >= 2 && slow_pct < 100 {
            let f_higher = analysis::slow_link_bandwidth_fraction(l + 1, 1.0, slow_pct as f64 / 100.0);
            prop_assert!(f_higher > f, "dimension should dilute the slow link");
        }
    }
}
