//! Unit tests for the simulated fabric's semantics.

use bytes::Bytes;
use simnet::{FlowNet, HostProfile, JitterModel, SimDuration, SimTime, Topology};

use crate::{CompletionMode, Delivery, Fabric, FabricParams, NodeId, VerbsError, WaitSpec, WrId};

/// A flat fabric with `n` nodes, 100 Gb/s links, 2 µs one-hop latency, and
/// zeroed software overheads (so timing assertions are exact).
fn zero_overhead_fabric(n: usize) -> Fabric {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, n, 100.0, SimDuration::from_micros(2));
    let params = FabricParams {
        nic_op_overhead: SimDuration::ZERO,
        ..FabricParams::default()
    };
    let mut fabric = Fabric::new(net, topo, params);
    for i in 0..n {
        fabric.set_profile(
            NodeId(i as u32),
            HostProfile {
                post_overhead: SimDuration::ZERO,
                completion_overhead: SimDuration::ZERO,
                ..HostProfile::default()
            },
        );
        fabric.set_completion_mode(NodeId(i as u32), CompletionMode::Polling);
    }
    fabric
}

fn drain(fabric: &mut Fabric) -> Vec<(SimTime, NodeId, Delivery)> {
    std::iter::from_fn(|| fabric.advance()).collect()
}

#[test]
fn send_recv_timing_is_exact() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(10), 1_250_000).unwrap();
    f.post_send(q0, WrId(20), 1_250_000, 5, None).unwrap();
    let events = drain(&mut f);
    // 1.25 MB = 10 Mb at 100 Gb/s = 100 us on the wire; +2 us to receiver,
    // +4 us round trip for the sender's ack.
    let recv = events
        .iter()
        .find(|(_, _, d)| matches!(d, Delivery::RecvDone { .. }))
        .unwrap();
    assert_eq!(recv.0.as_nanos(), 102_000);
    assert_eq!(recv.1, NodeId(1));
    let send = events
        .iter()
        .find(|(_, _, d)| matches!(d, Delivery::SendDone { .. }))
        .unwrap();
    assert_eq!(send.0.as_nanos(), 104_000);
    assert_eq!(send.1, NodeId(0));
}

#[test]
fn sends_on_one_qp_are_fifo() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    for i in 0..4 {
        f.post_recv(q1, WrId(i), 1 << 20).unwrap();
    }
    for i in 0..4 {
        f.post_send(q0, WrId(100 + i), 1000, i, None).unwrap();
    }
    let events = drain(&mut f);
    let recv_order: Vec<u64> = events
        .iter()
        .filter_map(|(_, _, d)| match d {
            Delivery::RecvDone { wr_id, imm, .. } => {
                // Receives consumed in posted order, imms in send order.
                Some((wr_id.0, *imm))
            }
            _ => None,
        })
        .map(|(wr, imm)| {
            assert_eq!(wr, imm);
            imm
        })
        .collect();
    assert_eq!(recv_order, vec![0, 1, 2, 3]);
}

#[test]
fn concurrent_qps_share_sender_nic_fairly() {
    // One sender, two receivers, simultaneous 1.25 MB sends: both complete
    // at ~200 us (half rate each) instead of 100 us.
    let mut f = zero_overhead_fabric(3);
    let (q0a, qa) = f.connect(NodeId(0), NodeId(1));
    let (q0b, qb) = f.connect(NodeId(0), NodeId(2));
    f.post_recv(qa, WrId(1), 1_250_000).unwrap();
    f.post_recv(qb, WrId(2), 1_250_000).unwrap();
    f.post_send(q0a, WrId(3), 1_250_000, 0, None).unwrap();
    f.post_send(q0b, WrId(4), 1_250_000, 0, None).unwrap();
    let events = drain(&mut f);
    let recv_times: Vec<u64> = events
        .iter()
        .filter(|(_, _, d)| matches!(d, Delivery::RecvDone { .. }))
        .map(|(t, _, _)| t.as_nanos())
        .collect();
    assert_eq!(recv_times.len(), 2);
    for t in recv_times {
        assert_eq!(t, 202_000);
    }
}

#[test]
fn relay_uses_full_duplex_bandwidth() {
    // 0 -> 1 -> 2 chain: node 1 receives and forwards concurrently, so the
    // two hops overlap almost perfectly.
    let mut f = zero_overhead_fabric(3);
    let (q01, q10) = f.connect(NodeId(0), NodeId(1));
    let (q12, q21) = f.connect(NodeId(1), NodeId(2));
    f.post_recv(q10, WrId(1), 1_250_000).unwrap();
    f.post_recv(q21, WrId(2), 1_250_000).unwrap();
    f.post_send(q01, WrId(3), 1_250_000, 0, None).unwrap();
    // Node 1 forwards as soon as its receive completes.
    let mut done_at = SimTime::ZERO;
    while let Some((t, node, d)) = f.advance() {
        match d {
            Delivery::RecvDone { .. } if node == NodeId(1) => {
                f.post_send(q12, WrId(4), 1_250_000, 0, None).unwrap();
            }
            Delivery::RecvDone { .. } if node == NodeId(2) => done_at = t,
            _ => {}
        }
    }
    // Hop 1 delivers at 102 us; hop 2 takes another 102 us.
    assert_eq!(done_at.as_nanos(), 204_000);
}

#[test]
fn rnr_retries_then_breaks_connection() {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
    let params = FabricParams {
        rnr_timer: SimDuration::from_micros(100),
        rnr_retry_limit: 3,
        ..FabricParams::default()
    };
    let mut f = Fabric::new(net, topo, params);
    let (q0, _q1) = f.connect(NodeId(0), NodeId(1));
    // Send with no posted receive: must eventually break both endpoints.
    f.post_send(q0, WrId(1), 1000, 0, None).unwrap();
    let events = drain(&mut f);
    let broken: Vec<NodeId> = events
        .iter()
        .filter(|(_, _, d)| matches!(d, Delivery::QpBroken { .. }))
        .map(|(_, n, _)| *n)
        .collect();
    assert_eq!(broken.len(), 2);
    assert!(broken.contains(&NodeId(0)));
    assert!(broken.contains(&NodeId(1)));
    // Further posts on the broken QP are rejected.
    assert_eq!(
        f.post_send(q0, WrId(2), 10, 0, None),
        Err(VerbsError::QpBroken)
    );
}

#[test]
fn late_recv_post_rescues_rnr_wait() {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
    let params = FabricParams {
        rnr_timer: SimDuration::from_micros(100),
        rnr_retry_limit: 7,
        nic_op_overhead: SimDuration::ZERO,
        ..FabricParams::default()
    };
    let mut f = Fabric::new(net, topo, params);
    for i in 0..2 {
        f.set_profile(
            NodeId(i),
            HostProfile {
                post_overhead: SimDuration::ZERO,
                completion_overhead: SimDuration::ZERO,
                ..HostProfile::default()
            },
        );
        f.set_completion_mode(NodeId(i), CompletionMode::Polling);
    }
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_send(q0, WrId(1), 1000, 0, None).unwrap();
    // Post the receive via a timer at t = 50 us, mid RNR wait.
    f.schedule_timer(NodeId(1), SimDuration::from_micros(50), 99);
    let mut recv_time = None;
    while let Some((t, node, d)) = f.advance() {
        match d {
            Delivery::Timer { token: 99 } => {
                assert_eq!(node, NodeId(1));
                f.post_recv(q1, WrId(2), 1000).unwrap();
            }
            Delivery::RecvDone { .. } => recv_time = Some(t),
            Delivery::QpBroken { .. } => panic!("connection should survive"),
            _ => {}
        }
    }
    // Transfer starts when the receive is posted (50 us), not at an RNR
    // retry boundary: wire time for 1000 B is negligible, ~2 us latency.
    let t = recv_time.expect("receive completed").as_nanos();
    assert!((52_000..60_000).contains(&t), "recv at {t}ns");
}

#[test]
fn one_sided_write_arrives_without_recv() {
    let mut f = zero_overhead_fabric(2);
    let (q0, _q1) = f.connect(NodeId(0), NodeId(1));
    f.post_write(q0, WrId(1), 77, Bytes::from_static(b"ready"), None)
        .unwrap();
    let events = drain(&mut f);
    let arrived = events
        .iter()
        .find_map(|(_, n, d)| match d {
            Delivery::WriteArrived { tag, payload, .. } => Some((*n, *tag, payload.clone())),
            _ => None,
        })
        .expect("write arrived");
    assert_eq!(arrived, (NodeId(1), 77, Bytes::from_static(b"ready")));
    assert!(events
        .iter()
        .any(|(_, n, d)| *n == NodeId(0) && matches!(d, Delivery::WriteDone { .. })));
}

#[test]
fn cross_channel_send_waits_for_recv_completion() {
    // CORE-Direct: node 1's relay send is queued *before* its receive
    // completes, with a dependency on the receive; hardware fires it
    // without software involvement.
    let mut f = zero_overhead_fabric(3);
    let (q01, q10) = f.connect(NodeId(0), NodeId(1));
    let (q12, q21) = f.connect(NodeId(1), NodeId(2));
    f.post_recv(q10, WrId(1), 1_250_000).unwrap();
    f.post_recv(q21, WrId(2), 1_250_000).unwrap();
    // Pre-queue the dependent relay.
    f.post_send(
        q12,
        WrId(4),
        1_250_000,
        0,
        Some(WaitSpec {
            qp: q10,
            wr_id: WrId(1),
        }),
    )
    .unwrap();
    f.post_send(q01, WrId(3), 1_250_000, 0, None).unwrap();
    let events = drain(&mut f);
    let node2_recv = events
        .iter()
        .find(|(_, n, d)| *n == NodeId(2) && matches!(d, Delivery::RecvDone { .. }))
        .expect("node 2 got the relayed block");
    // Hop 1 hardware-completes at 102 us; relay finishes 102 us later.
    assert_eq!(node2_recv.0.as_nanos(), 204_000);
}

#[test]
fn oversized_send_breaks_connection() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 100).unwrap();
    f.post_send(q0, WrId(2), 1000, 0, None).unwrap();
    let events = drain(&mut f);
    assert_eq!(
        events
            .iter()
            .filter(|(_, _, d)| matches!(d, Delivery::QpBroken { .. }))
            .count(),
        2
    );
}

#[test]
fn crash_notifies_peers_after_detection_delay() {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, 3, 100.0, SimDuration::from_micros(2));
    let params = FabricParams {
        failure_detect: SimDuration::from_millis(1),
        ..FabricParams::default()
    };
    let mut f = Fabric::new(net, topo, params);
    let (_q01, _q10) = f.connect(NodeId(0), NodeId(1));
    let (_q02, _q20) = f.connect(NodeId(0), NodeId(2));
    f.schedule_timer(NodeId(0), SimDuration::from_micros(10), 1);
    let mut breaks = Vec::new();
    while let Some((t, node, d)) = f.advance() {
        match d {
            Delivery::Timer { token: 1 } => f.crash(NodeId(0)),
            Delivery::QpBroken { .. } => breaks.push((t, node)),
            _ => {}
        }
    }
    // Nodes 1 and 2 each learn of the crash ~1 ms after it happened; the
    // crashed node itself hears nothing.
    assert_eq!(breaks.len(), 2);
    for (t, node) in breaks {
        assert_ne!(node, NodeId(0));
        let dt = t.as_nanos();
        assert!(dt >= 1_000_000, "detected at {dt}ns");
        assert!(dt < 1_300_000, "detected at {dt}ns");
    }
}

#[test]
fn crash_aborts_inflight_transfer() {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
    let mut f = Fabric::new(net, topo, FabricParams::default());
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 1 << 30).unwrap();
    // A 1 GB transfer takes ~86 ms; crash the sender at 1 ms.
    f.post_send(q0, WrId(2), 1 << 30, 0, None).unwrap();
    f.schedule_timer(NodeId(1), SimDuration::from_millis(1), 5);
    let mut saw_recv_done = false;
    let mut saw_broken = false;
    while let Some((_, _node, d)) = f.advance() {
        match d {
            Delivery::Timer { token: 5 } => f.crash(NodeId(0)),
            Delivery::RecvDone { .. } => saw_recv_done = true,
            Delivery::QpBroken { .. } => saw_broken = true,
            _ => {}
        }
    }
    assert!(!saw_recv_done, "aborted transfer must not complete");
    assert!(saw_broken, "survivor must learn of the failure");
}

#[test]
fn interrupt_mode_adds_wakeup_latency() {
    let mut f = zero_overhead_fabric(2);
    let wakeup = SimDuration::from_micros(4);
    f.set_profile(
        NodeId(1),
        HostProfile {
            post_overhead: SimDuration::ZERO,
            completion_overhead: SimDuration::ZERO,
            interrupt_wakeup: wakeup,
            ..HostProfile::default()
        },
    );
    f.set_completion_mode(NodeId(1), CompletionMode::Interrupt);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 1_250_000).unwrap();
    f.post_send(q0, WrId(2), 1_250_000, 0, None).unwrap();
    let events = drain(&mut f);
    let recv = events
        .iter()
        .find(|(_, _, d)| matches!(d, Delivery::RecvDone { .. }))
        .unwrap();
    // Polling timing was 102 us; interrupts add exactly the wakeup.
    assert_eq!(recv.0.as_nanos(), 106_000);
}

#[test]
fn hybrid_mode_polls_within_window_then_sleeps() {
    let mut f = zero_overhead_fabric(2);
    let profile = HostProfile {
        post_overhead: SimDuration::ZERO,
        completion_overhead: SimDuration::ZERO,
        interrupt_wakeup: SimDuration::from_micros(4),
        poll_window: SimDuration::from_millis(1),
        ..HostProfile::default()
    };
    f.set_profile(NodeId(1), profile);
    f.set_completion_mode(NodeId(1), CompletionMode::Hybrid);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    for i in 0..3 {
        f.post_recv(q1, WrId(i), 2000).unwrap();
    }
    // First send at t=0 (cold: pays wakeup). Second lands within the poll
    // window (no wakeup). Third arrives 2 ms later (window expired: pays
    // wakeup again).
    f.post_send(q0, WrId(10), 1000, 0, None).unwrap();
    f.schedule_timer(NodeId(0), SimDuration::from_micros(100), 1);
    f.schedule_timer(NodeId(0), SimDuration::from_millis(3), 2);
    let mut recv_times = Vec::new();
    while let Some((t, node, d)) = f.advance() {
        match d {
            Delivery::Timer { token } => {
                assert_eq!(node, NodeId(0));
                f.post_send(q0, WrId(10 + token), 1000, 0, None).unwrap();
            }
            Delivery::RecvDone { .. } => recv_times.push(t.as_nanos()),
            _ => {}
        }
    }
    assert_eq!(recv_times.len(), 3);
    let wire = 2_000 + 80; // 2 us latency + 1000 B at 100 Gb/s
    assert_eq!(recv_times[0], wire + 4_000); // cold wakeup
    assert_eq!(recv_times[1], 100_000 + wire); // polled
    assert_eq!(recv_times[2], 3_000_000 + wire + 4_000); // expired window
    let report = f.cpu_report(NodeId(1));
    assert!(report.polling > SimDuration::from_millis(2));
}

#[test]
fn cpu_serialization_defers_deliveries() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 2000).unwrap();
    f.post_recv(q1, WrId(2), 2000).unwrap();
    f.post_send(q0, WrId(3), 1000, 0, None).unwrap();
    f.post_send(q0, WrId(4), 1000, 0, None).unwrap();
    let mut recv_times = Vec::new();
    while let Some((t, node, d)) = f.advance() {
        if let Delivery::RecvDone { .. } = d {
            recv_times.push(t);
            if recv_times.len() == 1 {
                // The handler spends 500 us of CPU: the second completion
                // must wait for it even though it arrived earlier.
                f.consume_cpu(node, SimDuration::from_micros(500));
            }
        }
    }
    assert_eq!(recv_times.len(), 2);
    assert!(recv_times[1].since(recv_times[0]) >= SimDuration::from_micros(500));
}

#[test]
fn jitter_delays_deliveries_deterministically() {
    let run = |seed: u64| {
        let mut f = zero_overhead_fabric(2);
        f.set_jitter(
            NodeId(1),
            JitterModel::new(
                seed,
                1.0,
                SimDuration::from_micros(50),
                SimDuration::from_micros(150),
            ),
        );
        let (q0, q1) = f.connect(NodeId(0), NodeId(1));
        f.post_recv(q1, WrId(1), 2000).unwrap();
        f.post_send(q0, WrId(2), 1000, 0, None).unwrap();
        drain(&mut f)
            .iter()
            .find(|(_, _, d)| matches!(d, Delivery::RecvDone { .. }))
            .unwrap()
            .0
            .as_nanos()
    };
    let base = 2_000 + 80;
    let a = run(9);
    assert!(a >= base + 50_000 && a <= base + 150_000, "got {a}");
    assert_eq!(a, run(9), "same seed, same schedule");
}

#[test]
fn qp_node_and_peer_accessors() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    assert_eq!(f.qp_node(q0), NodeId(0));
    assert_eq!(f.qp_peer(q0), NodeId(1));
    assert_eq!(f.qp_node(q1), NodeId(1));
    assert_eq!(f.qp_peer(q1), NodeId(0));
}

#[test]
fn posts_rejected_after_crash() {
    let mut f = zero_overhead_fabric(2);
    let (q0, _q1) = f.connect(NodeId(0), NodeId(1));
    f.crash(NodeId(0));
    assert_eq!(
        f.post_send(q0, WrId(1), 10, 0, None),
        Err(VerbsError::NodeCrashed)
    );
}

/// Per-node flush record: (wr_id, is_recv) in delivery order, plus where
/// the QpBroken notice landed relative to the flushes.
fn flush_log(events: &[(SimTime, NodeId, Delivery)], node: NodeId) -> (Vec<(u64, bool)>, bool) {
    let mut flushes = Vec::new();
    let mut broken_after_flushes = false;
    for (_, n, d) in events {
        if *n != node {
            continue;
        }
        match d {
            Delivery::WrFlushed { wr_id, recv, .. } => {
                assert!(!broken_after_flushes, "flush delivered after QpBroken");
                flushes.push((wr_id.0, *recv));
            }
            Delivery::QpBroken { .. } => broken_after_flushes = true,
            _ => {}
        }
    }
    (flushes, broken_after_flushes)
}

#[test]
fn break_flushes_queued_sends_and_posted_recvs() {
    let mut f = zero_overhead_fabric(2);
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 2000).unwrap();
    f.post_recv(q1, WrId(2), 2000).unwrap();
    f.post_send(q0, WrId(10), 1_000_000, 0, None).unwrap();
    f.post_send(q0, WrId(11), 1_000_000, 0, None).unwrap();
    f.post_send(q0, WrId(12), 1_000_000, 0, None).unwrap();
    f.break_qp(q0);
    let events = drain(&mut f);
    // Every outstanding WR comes back as an error completion, in posting
    // order, before the break notice (IBV_WC_WR_FLUSH_ERR semantics).
    let (sender_flushes, sender_broken) = flush_log(&events, NodeId(0));
    assert_eq!(sender_flushes, vec![(10, false), (11, false), (12, false)]);
    assert!(sender_broken);
    let (receiver_flushes, receiver_broken) = flush_log(&events, NodeId(1));
    assert_eq!(receiver_flushes, vec![(1, true), (2, true)]);
    assert!(receiver_broken);
    // Nothing completed successfully.
    assert!(!events
        .iter()
        .any(|(_, _, d)| matches!(d, Delivery::SendDone { .. } | Delivery::RecvDone { .. })));
}

#[test]
fn crash_flushes_survivors_inflight_send() {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
    let mut f = Fabric::new(net, topo, FabricParams::default());
    let (q0, q1) = f.connect(NodeId(0), NodeId(1));
    f.post_recv(q1, WrId(1), 1 << 30).unwrap();
    // A 1 GB transfer takes ~86 ms; the receiver dies at 1 ms, mid-flight.
    f.post_send(q0, WrId(2), 1 << 30, 0, None).unwrap();
    f.schedule_timer(NodeId(0), SimDuration::from_millis(1), 5);
    let mut events = Vec::new();
    while let Some((t, node, d)) = f.advance() {
        if matches!(d, Delivery::Timer { token: 5 }) {
            f.crash(NodeId(1));
            continue;
        }
        events.push((t, node, d));
    }
    let (flushes, broken) = flush_log(&events, NodeId(0));
    assert_eq!(flushes, vec![(2, false)], "in-flight send must flush");
    assert!(broken, "survivor must learn of the failure");
    assert!(!events
        .iter()
        .any(|(_, _, d)| matches!(d, Delivery::SendDone { .. })));
}

#[test]
fn connect_to_crashed_peer_times_out() {
    let mut f = zero_overhead_fabric(2);
    f.crash(NodeId(1));
    // Re-establishing toward a dead node is allowed (recovery needs it);
    // the attempt behaves like a handshake that times out.
    let (q0, _q1) = f.connect(NodeId(0), NodeId(1));
    f.post_send(q0, WrId(7), 1000, 0, None).unwrap();
    let events = drain(&mut f);
    let (flushes, broken) = flush_log(&events, NodeId(0));
    assert_eq!(flushes, vec![(7, false)]);
    assert!(broken);
    let break_time = events
        .iter()
        .find(|(_, _, d)| matches!(d, Delivery::QpBroken { .. }))
        .map(|(t, _, _)| t.as_nanos())
        .expect("connection must break");
    assert_eq!(break_time, 1_000_000, "breaks after failure_detect");
}
