//! # verbs — simulated RDMA for the RDMC reproduction
//!
//! A faithful-semantics, simulated implementation of the slice of the RDMA
//! Verbs API that RDMC (DSN 2018) relies on:
//!
//! - **Reliable connections** ([`Fabric::connect`]): in-order, exactly-once
//!   delivery per queue pair, like hardware RC mode.
//! - **Two-sided send/receive** with **immediate values**
//!   ([`Fabric::post_send`], [`Fabric::post_recv`]): a send consumes a
//!   posted receive; RDMC carries the total message size in the immediate.
//! - **Receiver-not-ready (RNR) semantics**: a send that finds no posted
//!   receive retries on a timer and, after the retry budget, *breaks the
//!   connection* and reports error completions at both ends — the failure
//!   signal RDMC's recovery story is built on (§2, §3 property 6).
//! - **One-sided writes** ([`Fabric::post_write`]): how receivers tell
//!   senders they are ready for a block, and how the `sst` crate's shared
//!   state table works.
//! - **Cross-channel dependencies** ([`WaitSpec`]): Mellanox CORE-Direct
//!   style "send when that other WR completes", used to reproduce the
//!   offloading experiment (Fig. 12).
//! - **Completion modes** ([`CompletionMode`]): busy polling, interrupts,
//!   or the paper's 50 ms hybrid — with CPU-load accounting (Fig. 11).
//!
//! Time, bandwidth contention and topology come from [`simnet`]: every
//! transfer is a flow across full-duplex NIC links with max-min fair
//! sharing.
//!
//! ## Example
//!
//! ```
//! use simnet::{FlowNet, SimDuration, Topology};
//! use verbs::{Delivery, Fabric, FabricParams, NodeId, WrId};
//!
//! let mut net = FlowNet::new();
//! let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
//! let mut fabric = Fabric::new(net, topo, FabricParams::default());
//!
//! let (qp0, qp1) = fabric.connect(NodeId(0), NodeId(1));
//! fabric.post_recv(qp1, WrId(7), 1 << 20).unwrap();
//! fabric.post_send(qp0, WrId(1), 1 << 20, 42, None).unwrap();
//!
//! let mut got_recv = false;
//! while let Some((_, node, delivery)) = fabric.advance() {
//!     if let Delivery::RecvDone { wr_id, len, imm, .. } = delivery {
//!         assert_eq!(node, NodeId(1));
//!         assert_eq!(wr_id, WrId(7));
//!         assert_eq!(len, 1 << 20);
//!         assert_eq!(imm, 42);
//!         got_recv = true;
//!     }
//! }
//! assert!(got_recv);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
pub mod perf;
pub mod sched;
pub mod transport;
mod types;

pub use fabric::{Fabric, FabricStats, PostingSnapshot};
pub use sched::{Candidate, CandidateKind, ChoicePoint, PointKind, Scheduler, SharedScheduler};
pub use transport::Transport;
pub use types::{
    CompletionMode, CpuReport, Delivery, FabricParams, NodeId, QpHandle, VerbsError, WaitSpec, WrId,
};

#[cfg(test)]
mod tests;
