//! Controlled scheduling of same-instant event races.
//!
//! The fabric's event queue breaks timestamp ties deterministically (by
//! schedule order), which makes every run reproducible — but it also
//! means one arbitrary interleaving out of many legal ones is the only
//! interleaving ever tested. A [`Scheduler`] externalises those
//! tie-breaks: when it is attached, every burst of same-instant
//! software-visible deliveries becomes an explicit *choice point*, and
//! the scheduler picks which delivery the software observes first.
//! Model checkers (the `analyzer::explore` module) drive this to
//! enumerate alternative executions; the choice sequence they record is
//! sufficient to replay any execution bit-for-bit.
//!
//! Choice points are deliberately restricted to *software-visible*
//! deliveries. Internal hardware events (kicks, completions, RNR
//! timers, flow wakeups) are processed eagerly in deterministic order:
//! hardware progress at an instant commutes with software observation
//! order, so exposing it would multiply the state space without adding
//! distinguishable behaviours.

/// What a schedulable candidate event is, summarised for footprint
/// computation and human-readable counterexamples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateKind {
    /// A two-sided receive completion (an arrived block).
    Recv,
    /// A send completion returning to the sender.
    Send,
    /// A one-sided write's local completion at the issuer.
    WriteDone,
    /// A one-sided write landing in the target's memory, with its
    /// control tag (ready credits, failure notices, status rows,
    /// TAG_VIEW epidemic payloads).
    WriteArrived {
        /// The write's control tag.
        tag: u64,
    },
    /// A flushed (errored) work request after a connection break.
    Flushed,
    /// A broken-connection notice.
    Broken,
    /// A driver timer (retransmit probes, reconfiguration holdoff).
    Timer {
        /// The driver's timer token.
        token: u64,
    },
    /// A queued block send competing for a freed pacer slot.
    PacerSend {
        /// Group the queued send belongs to.
        group: u64,
        /// Queue position at the time of the tie.
        slot: u64,
    },
    /// A fault-injection site: crash `victim` after the cluster has fed
    /// `step` protocol events.
    FaultSite {
        /// Number of fed events before the crash fires.
        step: u64,
        /// The node to crash.
        victim: u32,
    },
    /// One outcome at a wire loss site: deliver the payload intact, or
    /// drop it on the floor. Offered per completed data transfer while
    /// the fabric's loss-choice budget lasts, so model checkers can
    /// enumerate retransmit/escalation interleavings instead of
    /// sampling them.
    Loss {
        /// True for the drop outcome, false for intact delivery.
        drop: bool,
    },
}

/// One enabled event at a choice point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Stable identifier within the run (the event-queue sequence
    /// number for deliveries; an enumeration index for pacer and fault
    /// candidates). Model checkers use it to correlate the same event
    /// across choice points.
    pub seq: u64,
    /// The node whose software observes the event — the primary
    /// footprint atom for independence reasoning.
    pub node: u32,
    /// The connection the event travels on, if any.
    pub conn: Option<u32>,
    /// Event class.
    pub kind: CandidateKind,
}

/// Which layer is asking for a decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointKind {
    /// Same-instant software-visible deliveries racing in the fabric.
    Delivery,
    /// Equally-preferred queued sends competing for one pacer slot.
    PacerTie,
    /// Crash/flap injection sites offered before traffic starts.
    FaultSite,
    /// Deliver-or-drop outcomes at a wire loss site.
    LossSite,
}

/// A choice point: two or more enabled candidates at one instant.
#[derive(Debug)]
pub struct ChoicePoint<'a> {
    /// Virtual time of the racing events, in nanoseconds.
    pub time_ns: u64,
    /// Which layer is asking.
    pub kind: PointKind,
    /// The enabled candidates, in deterministic (default) order; the
    /// answer indexes into this slice. Always has at least two entries.
    pub candidates: &'a [Candidate],
}

/// Decides which of several enabled same-instant events runs first.
///
/// Implementations must return an index `< point.candidates.len()`;
/// out-of-range answers are clamped to the deterministic default
/// (index 0) by callers. A scheduler that always answers 0 reproduces
/// the queue's default tie-break order within each choice point.
pub trait Scheduler {
    /// Picks the candidate to execute now.
    fn choose(&mut self, point: &ChoicePoint<'_>) -> usize;
}

/// A scheduler shared between the fabric and higher layers (the
/// cluster's pacer and fault injector), so every layer's choices land
/// in one globally ordered sequence.
pub type SharedScheduler = std::sync::Arc<std::sync::Mutex<dyn Scheduler + Send>>;

/// Asks `sched` to pick among `candidates`, clamping out-of-range
/// answers to 0. Panics if the mutex is poisoned (a scheduler panic is
/// already fatal to the exploration).
pub fn pick(sched: &SharedScheduler, point: &ChoicePoint<'_>) -> usize {
    let idx = sched
        .lock()
        .expect("scheduler mutex poisoned")
        .choose(point);
    if idx < point.candidates.len() {
        idx
    } else {
        0
    }
}
