//! Public identifier, parameter, and event types for the simulated fabric.

use bytes::Bytes;
use simnet::SimDuration;

/// A host attached to the fabric (index into the topology's node list).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize (for indexing driver-side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One endpoint of a reliable connection: the local queue pair.
///
/// Obtained from [`Fabric::connect`](crate::Fabric::connect), which returns
/// the two bound endpoints of a new reliable connection.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QpHandle {
    pub(crate) conn: u32,
    pub(crate) end: u8,
}

impl QpHandle {
    /// Assembles a queue-pair handle from a connection index and an
    /// endpoint side. External [`Transport`](crate::Transport)
    /// implementations use this to mint the handles
    /// [`connect`](crate::Transport::connect) returns; the simulated
    /// fabric constructs its own internally.
    pub fn from_parts(conn: u32, end: u8) -> Self {
        QpHandle { conn, end }
    }

    /// The connection index shared by both endpoints — the `conn` the
    /// flight recorder stamps on every wire-level event, so drivers can
    /// correlate their own records with the fabric's.
    pub fn conn_id(self) -> u32 {
        self.conn
    }

    /// Which side of the connection this endpoint is (0 or 1).
    pub fn endpoint(self) -> u8 {
        self.end
    }
}

/// Caller-chosen work-request identifier, echoed in completions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WrId(pub u64);

/// Names a posted work request for cross-channel (CORE-Direct style)
/// dependencies: a send may be held in hardware until this WR completes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WaitSpec {
    /// Queue pair the awaited work request was posted on (must belong to
    /// the same node as the dependent send).
    pub qp: QpHandle,
    /// The awaited work request.
    pub wr_id: WrId,
}

/// How a node's software learns about completions (paper §4.2, §5.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompletionMode {
    /// Busy-poll the completion queue: zero signalling latency, one core
    /// pinned at 100%.
    Polling,
    /// Block on interrupts: pay a wakeup latency per completion, CPU load
    /// proportional to handling work only.
    Interrupt,
    /// The paper's scheme: poll for a window after each completion, then
    /// re-arm interrupts.
    #[default]
    Hybrid,
}

/// Fabric-wide hardware constants.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricParams {
    /// Receiver-not-ready retry interval.
    pub rnr_timer: SimDuration,
    /// Number of RNR retries before the NIC breaks the connection and
    /// reports failure (paper §2: "after a specified number of retries, it
    /// breaks the connection").
    pub rnr_retry_limit: u32,
    /// Fixed per-transfer NIC processing time (dominates 1-byte messages).
    pub nic_op_overhead: SimDuration,
    /// How long a surviving NIC takes to detect a crashed peer and report
    /// an error completion.
    pub failure_detect: SimDuration,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            rnr_timer: SimDuration::from_micros(500),
            rnr_retry_limit: 7,
            nic_op_overhead: SimDuration::from_nanos(600),
            failure_detect: SimDuration::from_millis(1),
        }
    }
}

/// A completion or notification made visible to a node's software.
#[derive(Clone, Debug)]
pub enum Delivery {
    /// A two-sided send finished (hardware ack received).
    SendDone {
        /// Local queue pair the send was posted on.
        qp: QpHandle,
        /// The completed work request.
        wr_id: WrId,
    },
    /// A two-sided receive finished: data is in the posted buffer.
    RecvDone {
        /// Local queue pair the receive was posted on.
        qp: QpHandle,
        /// The matching posted receive's work request id.
        wr_id: WrId,
        /// Payload length in bytes.
        len: u64,
        /// The sender-attached immediate value (RDMC uses it to carry the
        /// total message size, §4.2).
        imm: u64,
    },
    /// A one-sided RDMA write we issued completed locally.
    WriteDone {
        /// Local queue pair the write was posted on.
        qp: QpHandle,
        /// The completed work request.
        wr_id: WrId,
    },
    /// A one-sided RDMA write from the peer landed in our memory.
    ///
    /// Real one-sided writes are invisible to the remote CPU until it polls
    /// the written region; this notification models that poll observing the
    /// new value (so it bypasses interrupt-mode wakeup latency).
    WriteArrived {
        /// Local queue pair whose registered memory was written.
        qp: QpHandle,
        /// Caller-chosen tag identifying the region/offset written.
        tag: u64,
        /// The written bytes.
        payload: Bytes,
    },
    /// A two-sided receive completed, but the payload failed its
    /// integrity check (injected corruption): the posted receive was
    /// consumed and the buffer contents must be discarded by software.
    /// Only surfaced when a fault model is attached
    /// ([`Fabric::set_fault_profile`](crate::Fabric::set_fault_profile));
    /// lossless fabrics never emit it.
    RecvCorrupted {
        /// Local queue pair the receive was posted on.
        qp: QpHandle,
        /// The consumed posted receive's work request id.
        wr_id: WrId,
        /// Payload length in bytes (the garbage is full-length).
        len: u64,
        /// The sender-attached immediate value (assumed intact — real
        /// NICs protect headers and payload with separate CRCs).
        imm: u64,
    },
    /// The connection failed (peer crashed, RNR retries exhausted, or a
    /// receive was too small). Every outstanding work request on the
    /// queue pair is flushed back as a [`Delivery::WrFlushed`] error
    /// completion before this notice arrives.
    QpBroken {
        /// The broken local queue pair.
        qp: QpHandle,
    },
    /// An outstanding work request was flushed with an error completion
    /// because its queue pair broke (the verbs `IBV_WC_WR_FLUSH_ERR`
    /// status). Emitted for queued sends, the in-flight send, and posted
    /// receives, in posting order, ahead of the [`Delivery::QpBroken`]
    /// notice for the same queue pair.
    WrFlushed {
        /// The broken local queue pair the work request was posted on.
        qp: QpHandle,
        /// The flushed work request.
        wr_id: WrId,
        /// True if the flushed work request was a posted receive, false
        /// for a send or one-sided write.
        recv: bool,
    },
    /// A driver-scheduled timer fired.
    Timer {
        /// The token passed to [`Fabric::schedule_timer`](crate::Fabric::schedule_timer).
        token: u64,
    },
}

/// Errors returned by fabric verbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerbsError {
    /// The queue pair's connection is broken; no further posts accepted.
    QpBroken,
    /// The node owning this queue pair has crashed.
    NodeCrashed,
}

impl std::fmt::Display for VerbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerbsError::QpBroken => write!(f, "queue pair connection is broken"),
            VerbsError::NodeCrashed => write!(f, "node has crashed"),
        }
    }
}

impl std::error::Error for VerbsError {}

/// Per-node CPU usage summary (for the paper's Fig. 11 CPU-load contrast).
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuReport {
    /// Time spent in software handlers and posting verbs.
    pub handling: SimDuration,
    /// Time spent busy-polling (hybrid mode's poll windows).
    pub polling: SimDuration,
    /// The node's completion mode.
    pub mode: CompletionMode,
}

impl CpuReport {
    /// CPU load over a wall-clock interval: 1.0 for pure polling, poll
    /// windows + handling for hybrid, handling only for interrupts.
    pub fn load(&self, wall: SimDuration) -> f64 {
        if wall == SimDuration::ZERO {
            return 0.0;
        }
        let busy = match self.mode {
            CompletionMode::Polling => return 1.0,
            CompletionMode::Hybrid => self.polling + self.handling,
            CompletionMode::Interrupt => self.handling,
        };
        (busy.as_secs_f64() / wall.as_secs_f64()).min(1.0)
    }
}
