//! Process-wide simulation-kernel performance counters.
//!
//! Every [`Fabric`](crate::Fabric) folds its event and rate-reallocation
//! counters into these global accumulators when it is dropped, so a
//! benchmark harness can meter *all* simulation work in a section — across
//! many clusters, worker threads, and harness styles (`SimCluster`, the
//! offloaded-chain runner, the SST table) — by taking a [`snapshot`]
//! before and after and diffing:
//!
//! ```
//! let before = verbs::perf::snapshot();
//! let wall = std::time::Instant::now();
//! // ... run experiments ...
//! let work = verbs::perf::snapshot().delta_since(&before);
//! let events_per_sec = work.events as f64 / wall.elapsed().as_secs_f64();
//! # let _ = events_per_sec;
//! ```
//!
//! The counters are monotonic `u64`s updated with relaxed atomics: exact
//! under any interleaving of fabric drops, and free when unused.

use std::sync::atomic::{AtomicU64, Ordering};

static FABRICS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static KICKS: AtomicU64 = AtomicU64::new(0);
static REALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static REALLOC_NANOS: AtomicU64 = AtomicU64::new(0);
static FLOWS_VISITED: AtomicU64 = AtomicU64::new(0);
static HEAP_PUSHES: AtomicU64 = AtomicU64::new(0);
static RATE_CHANGES: AtomicU64 = AtomicU64::new(0);
static FULL_REALLOCS: AtomicU64 = AtomicU64::new(0);
static LINK_VISITS: AtomicU64 = AtomicU64::new(0);
static COALESCED: AtomicU64 = AtomicU64::new(0);
static HEAP_COMPACTIONS: AtomicU64 = AtomicU64::new(0);
static SIM_NANOS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the process-wide kernel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelPerf {
    /// Fabrics accounted so far (one increment per dropped fabric).
    pub fabrics: u64,
    /// Events popped from fabric event queues.
    pub events: u64,
    /// Connection kick attempts.
    pub kicks: u64,
    /// Flow-rate reallocations run by the flow network.
    pub realloc_count: u64,
    /// Wall-clock nanoseconds spent inside reallocations.
    pub realloc_nanos: u64,
    /// Flows visited across all reallocations (ripple-set size sum).
    pub flows_visited: u64,
    /// Water-filling heap pushes across all reallocations.
    pub heap_pushes: u64,
    /// Flows whose rate actually changed across all reallocations.
    pub rate_changes: u64,
    /// Reallocations that extended to a full recomputation.
    pub full_reallocs: u64,
    /// Links visited by ripple traversals and full scans, summed.
    pub link_visits: u64,
    /// Flow starts/removals coalesced into an already-pending
    /// reallocation (recomputations that never had to run).
    pub coalesced: u64,
    /// Completion-heap compactions (stale-entry sweeps).
    pub heap_compactions: u64,
    /// Virtual nanoseconds simulated (summed over fabrics).
    pub sim_nanos: u64,
}

impl KernelPerf {
    /// Counter increments since `base` (which must be an earlier
    /// snapshot; each field saturates at zero otherwise).
    pub fn delta_since(&self, base: &KernelPerf) -> KernelPerf {
        KernelPerf {
            fabrics: self.fabrics.saturating_sub(base.fabrics),
            events: self.events.saturating_sub(base.events),
            kicks: self.kicks.saturating_sub(base.kicks),
            realloc_count: self.realloc_count.saturating_sub(base.realloc_count),
            realloc_nanos: self.realloc_nanos.saturating_sub(base.realloc_nanos),
            flows_visited: self.flows_visited.saturating_sub(base.flows_visited),
            heap_pushes: self.heap_pushes.saturating_sub(base.heap_pushes),
            rate_changes: self.rate_changes.saturating_sub(base.rate_changes),
            full_reallocs: self.full_reallocs.saturating_sub(base.full_reallocs),
            link_visits: self.link_visits.saturating_sub(base.link_visits),
            coalesced: self.coalesced.saturating_sub(base.coalesced),
            heap_compactions: self.heap_compactions.saturating_sub(base.heap_compactions),
            sim_nanos: self.sim_nanos.saturating_sub(base.sim_nanos),
        }
    }
}

/// Reads the current process-wide totals.
pub fn snapshot() -> KernelPerf {
    KernelPerf {
        fabrics: FABRICS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
        kicks: KICKS.load(Ordering::Relaxed),
        realloc_count: REALLOC_COUNT.load(Ordering::Relaxed),
        realloc_nanos: REALLOC_NANOS.load(Ordering::Relaxed),
        flows_visited: FLOWS_VISITED.load(Ordering::Relaxed),
        heap_pushes: HEAP_PUSHES.load(Ordering::Relaxed),
        rate_changes: RATE_CHANGES.load(Ordering::Relaxed),
        full_reallocs: FULL_REALLOCS.load(Ordering::Relaxed),
        link_visits: LINK_VISITS.load(Ordering::Relaxed),
        coalesced: COALESCED.load(Ordering::Relaxed),
        heap_compactions: HEAP_COMPACTIONS.load(Ordering::Relaxed),
        sim_nanos: SIM_NANOS.load(Ordering::Relaxed),
    }
}

/// Folds one finished fabric's counters into the globals (called from
/// `Fabric::drop`).
pub(crate) fn record(d: KernelPerf) {
    FABRICS.fetch_add(1, Ordering::Relaxed);
    EVENTS.fetch_add(d.events, Ordering::Relaxed);
    KICKS.fetch_add(d.kicks, Ordering::Relaxed);
    REALLOC_COUNT.fetch_add(d.realloc_count, Ordering::Relaxed);
    REALLOC_NANOS.fetch_add(d.realloc_nanos, Ordering::Relaxed);
    FLOWS_VISITED.fetch_add(d.flows_visited, Ordering::Relaxed);
    HEAP_PUSHES.fetch_add(d.heap_pushes, Ordering::Relaxed);
    RATE_CHANGES.fetch_add(d.rate_changes, Ordering::Relaxed);
    FULL_REALLOCS.fetch_add(d.full_reallocs, Ordering::Relaxed);
    LINK_VISITS.fetch_add(d.link_visits, Ordering::Relaxed);
    COALESCED.fetch_add(d.coalesced, Ordering::Relaxed);
    HEAP_COMPACTIONS.fetch_add(d.heap_compactions, Ordering::Relaxed);
    SIM_NANOS.fetch_add(d.sim_nanos, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_per_field_difference() {
        let a = KernelPerf {
            fabrics: 1,
            events: 10,
            kicks: 5,
            realloc_count: 3,
            realloc_nanos: 1000,
            flows_visited: 7,
            heap_pushes: 9,
            rate_changes: 2,
            full_reallocs: 1,
            link_visits: 20,
            coalesced: 6,
            heap_compactions: 1,
            sim_nanos: 400,
        };
        let mut b = a;
        b.events += 90;
        b.realloc_count += 2;
        let d = b.delta_since(&a);
        assert_eq!(d.events, 90);
        assert_eq!(d.realloc_count, 2);
        assert_eq!(d.kicks, 0);
    }

    #[test]
    fn dropped_fabric_is_recorded() {
        use crate::{Fabric, FabricParams, NodeId, WrId};
        use simnet::{FlowNet, SimDuration, Topology};

        let before = snapshot();
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, 2, 100.0, SimDuration::from_micros(2));
        let mut fabric = Fabric::new(net, topo, FabricParams::default());
        let (qp0, qp1) = fabric.connect(NodeId(0), NodeId(1));
        fabric.post_recv(qp1, WrId(7), 1 << 20).unwrap();
        fabric.post_send(qp0, WrId(1), 1 << 20, 42, None).unwrap();
        while fabric.advance().is_some() {}
        drop(fabric);
        let d = snapshot().delta_since(&before);
        assert!(d.fabrics >= 1, "fabric drop not recorded");
        assert!(d.events > 0, "no events recorded");
        assert!(d.realloc_count > 0, "no reallocations recorded");
        assert!(d.sim_nanos > 0, "no simulated time recorded");
    }
}
