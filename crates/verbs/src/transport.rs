//! The datapath contract shared by every RDMC backend.
//!
//! [`Transport`] is the exact subset of the simulated [`Fabric`] surface
//! that the protocol orchestration (`rdmc-sim`'s cluster, pacer, epoch
//! recovery, reliability shim, and atomic overlay) consumes: reliable
//! connections, two-sided send/receive with immediates, one-sided
//! writes, driver timers, crash/break notifications, and a pull-based
//! completion loop ([`Transport::advance`]). Anything that implements it
//! — the simulated verbs fabric here, the nonblocking TCP event loop in
//! `rdmc-tcp` — can run the full RDMC stack unchanged, which is what the
//! paper's §5.3 "RDMC over TCP works surprisingly well" observation and
//! Derecho's dual verbs/TCP deployment call for.
//!
//! The contract inherits the fabric's ordering guarantees, and backends
//! must preserve them for the protocol to stay correct *and* for the
//! `transport_equivalence` gate to hold:
//!
//! - **Per-connection-direction FIFO**: two-sided sends and one-sided
//!   writes posted on one endpoint are delivered to the peer in posting
//!   order, sharing a single queue (hardware RC semantics; a TCP socket
//!   per direction gives the same property).
//! - **Flush-then-break**: when a connection breaks, every outstanding
//!   work request is flushed ([`Delivery::WrFlushed`]) in posting order
//!   before the [`Delivery::QpBroken`] notice.
//! - **Crash silence**: no deliveries (including timers) ever surface on
//!   a crashed node; surviving peers learn of the crash only through
//!   their failure-detect timeout breaking the connection.
//! - **Timers before I/O**: all timers due at or before the current
//!   instant fire before later completions are surfaced, so e.g. every
//!   failure-detect break on a node batches ahead of gossip arriving
//!   from peers.

use bytes::Bytes;
use simnet::{HostProfile, SimDuration, SimTime};

use crate::fabric::{Fabric, FabricStats, PostingSnapshot};
use crate::types::{CpuReport, Delivery, NodeId, QpHandle, VerbsError, WaitSpec, WrId};

/// A reliable, connection-oriented datapath capable of carrying RDMC.
///
/// See the [module docs](self) for the ordering guarantees every
/// implementation must uphold. Method semantics are specified on the
/// [`Fabric`] inherent methods of the same names, which this trait was
/// extracted from; `Fabric` is the reference implementation.
pub trait Transport {
    /// Current transport time. Simulated backends report virtual time;
    /// real backends report elapsed wall-clock time since creation.
    fn now(&self) -> SimTime;

    /// Advances the transport and surfaces the next completion, or
    /// `None` when the transport is quiescent (no deliveries pending,
    /// nothing in flight, no timers armed for live nodes).
    fn advance(&mut self) -> Option<(SimTime, NodeId, Delivery)>;

    /// Establishes a reliable connection between two nodes, returning
    /// the bound endpoints `(a's queue pair, b's queue pair)`.
    fn connect(&mut self, a: NodeId, b: NodeId) -> (QpHandle, QpHandle);

    /// Posts a two-sided send of `bytes` with immediate `imm`; consumes
    /// one posted receive at the peer.
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    fn post_send(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        bytes: u64,
        imm: u64,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError>;

    /// Posts a one-sided write of `payload` into the peer's region
    /// `tag`; the peer observes [`Delivery::WriteArrived`].
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    fn post_write(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        tag: u64,
        payload: Bytes,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError>;

    /// Posts a receive of capacity `max_len`, consumed in order by
    /// incoming two-sided sends.
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    fn post_recv(&mut self, qp: QpHandle, wr_id: WrId, max_len: u64) -> Result<(), VerbsError>;

    /// Arms a one-shot driver timer on `node`; fires as
    /// [`Delivery::Timer`] carrying `token` after `delay`.
    fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64);

    /// Accounts `dur` of software handler time against `node`'s CPU.
    /// Backends without a CPU model treat this as a no-op.
    fn consume_cpu(&mut self, node: NodeId, dur: SimDuration);

    /// Fail-stops `node`: its queue pairs go silent, peers detect the
    /// failure after the failure-detect interval and see their
    /// connections break.
    fn crash(&mut self, node: NodeId);

    /// Whether `node` has crashed.
    fn is_crashed(&self, node: NodeId) -> bool;

    /// Breaks one connection immediately (both ends flush and report
    /// [`Delivery::QpBroken`]), without crashing either node.
    fn break_qp(&mut self, qp: QpHandle);

    /// The host performance model for `node`. Backends without a host
    /// model return a default profile.
    fn profile(&self, node: NodeId) -> &HostProfile;

    /// Snapshot of one endpoint's posting state, for invariant checks.
    fn posting_snapshot(&self, qp: QpHandle) -> PostingSnapshot;

    /// Attaches a flight recorder; the transport stamps it with the
    /// current time and streams wire-level events into it.
    fn set_recorder(&mut self, recorder: trace::Recorder);

    /// Transport-level counters (see [`FabricStats`]).
    fn stats(&self) -> FabricStats;

    /// Per-node CPU usage summary.
    fn cpu_report(&self, node: NodeId) -> CpuReport;

    /// Number of nodes attached to the transport.
    fn num_nodes(&self) -> usize;

    /// Attaches a controlled scheduler resolving same-instant races.
    /// Only meaningful on simulated backends; the default is a no-op so
    /// generic configuration code can call it unconditionally.
    fn set_scheduler(&mut self, scheduler: crate::sched::SharedScheduler) {
        let _ = scheduler;
    }
}

impl Transport for Fabric {
    fn now(&self) -> SimTime {
        Fabric::now(self)
    }

    fn advance(&mut self) -> Option<(SimTime, NodeId, Delivery)> {
        Fabric::advance(self)
    }

    fn connect(&mut self, a: NodeId, b: NodeId) -> (QpHandle, QpHandle) {
        Fabric::connect(self, a, b)
    }

    fn post_send(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        bytes: u64,
        imm: u64,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        Fabric::post_send(self, qp, wr_id, bytes, imm, wait_for)
    }

    fn post_write(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        tag: u64,
        payload: Bytes,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        Fabric::post_write(self, qp, wr_id, tag, payload, wait_for)
    }

    fn post_recv(&mut self, qp: QpHandle, wr_id: WrId, max_len: u64) -> Result<(), VerbsError> {
        Fabric::post_recv(self, qp, wr_id, max_len)
    }

    fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        Fabric::schedule_timer(self, node, delay, token)
    }

    fn consume_cpu(&mut self, node: NodeId, dur: SimDuration) {
        Fabric::consume_cpu(self, node, dur)
    }

    fn crash(&mut self, node: NodeId) {
        Fabric::crash(self, node)
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        Fabric::is_crashed(self, node)
    }

    fn break_qp(&mut self, qp: QpHandle) {
        Fabric::break_qp(self, qp)
    }

    fn profile(&self, node: NodeId) -> &HostProfile {
        Fabric::profile(self, node)
    }

    fn posting_snapshot(&self, qp: QpHandle) -> PostingSnapshot {
        Fabric::posting_snapshot(self, qp)
    }

    fn set_recorder(&mut self, recorder: trace::Recorder) {
        Fabric::set_recorder(self, recorder)
    }

    fn stats(&self) -> FabricStats {
        Fabric::stats(self)
    }

    fn cpu_report(&self, node: NodeId) -> CpuReport {
        Fabric::cpu_report(self, node)
    }

    fn num_nodes(&self) -> usize {
        self.topology().num_nodes()
    }

    fn set_scheduler(&mut self, scheduler: crate::sched::SharedScheduler) {
        Fabric::set_scheduler(self, scheduler)
    }
}
