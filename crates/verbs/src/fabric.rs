//! The simulated RDMA fabric: reliable connections, work queues,
//! completions, and failure semantics over a [`simnet`] flow network.
//!
//! The fabric is *pull-based*: drivers call [`Fabric::advance`] in a loop;
//! each call runs internal hardware events forward and returns the next
//! software-visible [`Delivery`] (a completion, an arrived one-sided
//! write, a broken-connection notice, or a driver timer). While handling a
//! delivery the driver may post new verbs, schedule timers, and charge CPU
//! time; the fabric serialises each node's software on a single virtual
//! core, exactly like RDMC's single completion thread (§4.2).

// The two hashed collections below (`hw_completed`, `inflight_index`)
// are pure membership/lookup tables — insert, contains, remove, get;
// never iterated — so their randomized order cannot reach behavior.
#[allow(clippy::disallowed_types)]
use std::collections::{HashSet, VecDeque};

use bytes::Bytes;
use simnet::{
    CpuMeter, EventQueue, EventToken, FlowId, FlowNet, HostProfile, JitterModel, LinkId,
    SimDuration, SimTime, Topology,
};

use crate::types::{
    CompletionMode, CpuReport, Delivery, FabricParams, NodeId, QpHandle, VerbsError, WaitSpec, WrId,
};

/// Transfers at or below this size bypass the bandwidth allocator and
/// complete at pure propagation latency (their serialisation time is
/// sub-nanosecond at the simulated link speeds).
const TINY_BYPASS_BYTES: u64 = 256;

/// What kind of data a pending send moves.
#[derive(Clone, Debug)]
enum SendKind {
    /// Two-sided send: consumes a posted receive at the peer.
    TwoSided { imm: u64 },
    /// One-sided write: no receive required; the peer's memory is updated.
    Write { tag: u64, payload: Bytes },
}

#[derive(Clone, Debug)]
struct PendingSend {
    wr_id: WrId,
    bytes: u64,
    kind: SendKind,
    wait_for: Option<WaitSpec>,
    /// Software finished posting at this instant; hardware may not start
    /// earlier.
    ready_at: SimTime,
}

#[derive(Debug, Default)]
struct DirState {
    queue: VecDeque<PendingSend>,
    /// The send currently on the wire, with its claimed receive (wr_id,
    /// max_len) if two-sided.
    inflight: Option<(FlowId, PendingSend, Option<WrId>)>,
    rnr_remaining: u32,
    /// Incremented whenever an armed RNR timer becomes irrelevant.
    rnr_epoch: u64,
    rnr_armed: bool,
}

#[derive(Debug)]
struct Conn {
    nodes: [NodeId; 2],
    paths: [Vec<LinkId>; 2],
    latency: [SimDuration; 2],
    /// Receives posted at each end, consumed in order by incoming sends.
    recvs: [VecDeque<(WrId, u64)>; 2],
    dirs: [DirState; 2],
    broken: bool,
    /// Work requests torn off the wire before the break was delivered
    /// (e.g. an in-flight send aborted by a peer crash): flushed as error
    /// completions when the break lands. `(endpoint, wr, is_recv)`.
    pending_flush: Vec<(u8, WrId, bool)>,
}

struct Node {
    profile: HostProfile,
    mode: CompletionMode,
    jitter: JitterModel,
    meter: CpuMeter,
    cpu_free_at: SimTime,
    /// Hybrid mode: polling continues until this instant.
    poll_until: SimTime,
    poll_busy: SimDuration,
    crashed: bool,
    conns: Vec<u32>,
    /// Hardware-level completed WRs, for cross-channel dependencies.
    /// Membership-only (never iterated); see the import note.
    #[allow(clippy::disallowed_types)]
    hw_completed: HashSet<(u32, u8, u64)>,
}

#[derive(Debug)]
enum Ev {
    /// Re-check the flow network for due completions.
    NetWake,
    /// Try to start the head-of-line send of a connection direction.
    Kick { conn: u32, dir: u8 },
    /// An RNR retry timer fired.
    RnrRetry { conn: u32, dir: u8, epoch: u64 },
    /// A transfer's last byte reached the receiver / the ack reached the
    /// sender: generate the hardware completion.
    HwComplete {
        conn: u32,
        dir: u8,
        side: Side,
        wr: CompletedWr,
    },
    /// A NIC noticed its peer died.
    BreakConn { conn: u32 },
    /// Software-visible delivery (after completion-mode delay + jitter).
    Deliver { node: NodeId, delivery: Delivery },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Sender,
    Receiver,
}

#[derive(Clone, Debug)]
enum CompletedWr {
    Send {
        wr_id: WrId,
    },
    Recv {
        wr_id: WrId,
        len: u64,
        imm: u64,
    },
    /// A receive whose payload the fault model corrupted in flight.
    RecvCorrupt {
        wr_id: WrId,
        len: u64,
        imm: u64,
    },
    WriteLocal {
        wr_id: WrId,
    },
    WriteRemote {
        tag: u64,
        payload: Bytes,
    },
}

/// Internal event/work counters, for performance debugging.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Events popped from the queue.
    pub events: u64,
    /// Kick attempts.
    pub kicks: u64,
    /// Rate reallocations triggered.
    pub reallocs: u64,
    /// Deliveries requeued because the node's CPU was busy.
    pub cpu_requeues: u64,
    /// Linear connection scans for in-flight flows.
    pub inflight_scans: u64,
    /// Times a send found its peer without a posted receive and armed the
    /// RNR retry timer. Under RDMC's ready-for-block discipline this stays
    /// zero on healthy runs (§4.2); a non-zero count means senders are
    /// racing ahead of receive posting and burning retry budget.
    pub rnr_arms: u64,
    /// Payloads the fault model dropped on the wire (receiver-side
    /// completion suppressed; the sender still completed).
    pub payload_drops: u64,
    /// Payloads the fault model corrupted in flight (delivered as
    /// [`Delivery::RecvCorrupted`], or discarded for one-sided writes).
    pub payload_corruptions: u64,
}

/// A snapshot of one queue-pair endpoint's posting state, for static
/// analysis and debug-build invariant checks. `queued_sends` counts sends
/// not yet on the wire (including one blocked on receiver-not-ready);
/// `posted_recvs` counts receives not yet consumed. A non-zero
/// `rnr_started` with an empty peer receive queue is exactly the posting
/// window RDMC's ready-for-block protocol exists to keep closed (§4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PostingSnapshot {
    /// Sends posted on this endpoint that have not started transmitting.
    pub queued_sends: usize,
    /// Whether a send from this endpoint is currently on the wire.
    pub send_inflight: bool,
    /// Receives posted at this endpoint and not yet consumed.
    pub posted_recvs: usize,
    /// Whether this endpoint's head-of-line send has an RNR timer armed
    /// (it found the peer without a posted receive).
    pub rnr_armed: bool,
    /// Remaining RNR retries before the connection breaks.
    pub rnr_remaining: u32,
    /// Whether the connection has broken.
    pub broken: bool,
}

/// The simulated RDMA fabric. See the crate docs for an end-to-end
/// example.
pub struct Fabric {
    net: FlowNet,
    topo: Topology,
    params: FabricParams,
    queue: EventQueue<Ev>,
    conns: Vec<Conn>,
    nodes: Vec<Node>,
    net_wake: Option<EventToken>,
    /// The NetWake event no longer points at the earliest flow completion
    /// (flows started/finished since it was aimed). Re-aiming is deferred
    /// to the event loop so a burst of same-instant flow changes costs
    /// one re-aim — and one rate recomputation — instead of one each.
    net_stale: bool,
    /// flow -> (conn, dir) index for completions. Lookup-only (never
    /// iterated); see the import note.
    #[allow(clippy::disallowed_types)]
    inflight_index: std::collections::HashMap<FlowId, (u32, u8)>,
    /// Reusable buffer for a node's connection list while dependent sends
    /// are re-kicked (avoids one Vec allocation per hardware completion).
    conn_scratch: Vec<u32>,
    stats: FabricStats,
    /// Flight recorder for verb-level events (posts, completions, RNR
    /// arms, flushes); disabled — one branch per event — by default.
    recorder: trace::Recorder,
    /// Controlled scheduler for same-instant delivery races; when
    /// attached, [`Fabric::advance`] routes tie-breaks through it
    /// instead of the queue's schedule-order default.
    scheduler: Option<crate::sched::SharedScheduler>,
    /// Seeded wire fault model; `None` (the default) is the paper's
    /// lossless fabric and costs nothing on the completion path.
    faults: Option<simnet::FaultProfile>,
    /// Remaining deliver-or-drop choice points to offer the attached
    /// scheduler (model-checking mode); 0 disables loss choice points.
    loss_choices: u64,
}

impl Fabric {
    /// Creates a fabric over an already-built topology and flow network.
    /// All nodes start with default host profiles, hybrid completion mode,
    /// and no scheduling jitter.
    pub fn new(net: FlowNet, topo: Topology, params: FabricParams) -> Self {
        let nodes = (0..topo.num_nodes())
            .map(|_| Node {
                profile: HostProfile::default(),
                mode: CompletionMode::default(),
                jitter: JitterModel::none(),
                meter: CpuMeter::new(),
                cpu_free_at: SimTime::ZERO,
                poll_until: SimTime::ZERO,
                poll_busy: SimDuration::ZERO,
                crashed: false,
                conns: Vec::new(),
                #[allow(clippy::disallowed_types)]
                hw_completed: HashSet::new(),
            })
            .collect();
        Fabric {
            net,
            topo,
            params,
            queue: EventQueue::new(),
            conns: Vec::new(),
            nodes,
            net_wake: None,
            net_stale: false,
            #[allow(clippy::disallowed_types)]
            inflight_index: std::collections::HashMap::new(),
            conn_scratch: Vec::new(),
            stats: FabricStats::default(),
            recorder: trace::Recorder::disabled(),
            scheduler: None,
            faults: None,
            loss_choices: 0,
        }
    }

    /// Attaches a seeded wire fault model ([`simnet::FaultProfile`]):
    /// completed transfers may be dropped (receiver-side completion
    /// suppressed — the sender still completes, SDR-RDMA's sender-local
    /// semantics) or corrupted (surfaced as [`Delivery::RecvCorrupted`]).
    /// Only allocator-managed transfers (larger than the control bypass
    /// threshold) are subject to faults: control-sized traffic models a
    /// separately protected reliable channel, which is what keeps
    /// membership, credits, and NACKs working on a lossy fabric.
    ///
    /// An all-clean profile is behaviourally identical to no profile,
    /// and runs without one are untouched — the lossless default stays
    /// bit-for-bit what it was.
    pub fn set_fault_profile(&mut self, profile: simnet::FaultProfile) {
        self.faults = if profile.is_clean() {
            None
        } else {
            Some(profile)
        };
    }

    /// The attached fault model, if any (its drop/corruption counters
    /// included).
    pub fn fault_profile(&self) -> Option<&simnet::FaultProfile> {
        self.faults.as_ref()
    }

    /// Grants the attached scheduler `budget` deliver-or-drop choice
    /// points ([`crate::sched::PointKind::LossSite`]): while the budget
    /// lasts, every eligible completed transfer asks the scheduler
    /// whether to deliver or drop instead of sampling the fault
    /// profile. Model checkers use this to enumerate loss placements
    /// exhaustively; each offered site spends one unit of budget
    /// whatever the answer, so the explored depth stays bounded.
    pub fn set_loss_choice_budget(&mut self, budget: u64) {
        self.loss_choices = budget;
    }

    /// Attaches a controlled scheduler: same-instant delivery races
    /// become explicit choice points answered by `scheduler` (see
    /// [`crate::sched`]). Without one, ties break by schedule order and
    /// runs are bit-for-bit reproducible; with one, reproducibility
    /// additionally requires replaying the same choice answers.
    pub fn set_scheduler(&mut self, scheduler: crate::sched::SharedScheduler) {
        self.scheduler = Some(scheduler);
    }

    /// Whether a controlled scheduler is attached.
    pub fn has_scheduler(&self) -> bool {
        self.scheduler.is_some()
    }

    /// Attaches a flight recorder to the fabric and its flow network.
    /// The fabric keeps the recorder's clock current as its event loop
    /// advances, so clock-less layers sharing the recorder (the sans-IO
    /// protocol engines) timestamp correctly.
    pub fn set_recorder(&mut self, recorder: trace::Recorder) {
        self.net.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Opts the underlying flow network into flow-set interning
    /// ([`FlowNet::set_interning`]): transfers sharing an identical path —
    /// the common many-flows-same-route multicast case — share one entry
    /// in the allocator's sharing graph. Intended for scale experiments;
    /// interned rates can differ from the default kernel in the last ulps.
    ///
    /// # Panics
    ///
    /// Panics if a transfer has already been started on the fabric.
    pub fn set_path_interning(&mut self, on: bool) {
        self.net.set_interning(on);
    }

    /// Internal work counters (for performance debugging).
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The topology the fabric runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The underlying flow network (for link byte accounting).
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Fabric-wide hardware constants.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Posting-order metadata for one queue-pair endpoint: what is queued,
    /// what is posted, and how close the endpoint is to RNR exhaustion.
    /// Static analyses (the `analyzer` crate) and debug-build runtime
    /// mirrors use this to check the receive-before-send discipline
    /// without disturbing the simulation.
    pub fn posting_snapshot(&self, qp: QpHandle) -> PostingSnapshot {
        let conn = &self.conns[qp.conn as usize];
        let d = &conn.dirs[qp.end as usize];
        PostingSnapshot {
            queued_sends: d.queue.len(),
            send_inflight: d.inflight.is_some(),
            posted_recvs: conn.recvs[qp.end as usize].len(),
            rnr_armed: d.rnr_armed,
            rnr_remaining: d.rnr_remaining,
            broken: conn.broken,
        }
    }

    /// Sets a node's host cost profile.
    pub fn set_profile(&mut self, node: NodeId, profile: HostProfile) {
        self.nodes[node.index()].profile = profile;
    }

    /// The node's host cost profile.
    pub fn profile(&self, node: NodeId) -> &HostProfile {
        &self.nodes[node.index()].profile
    }

    /// Sets a node's completion mode.
    pub fn set_completion_mode(&mut self, node: NodeId, mode: CompletionMode) {
        self.nodes[node.index()].mode = mode;
    }

    /// Sets a node's scheduling-jitter model.
    pub fn set_jitter(&mut self, node: NodeId, jitter: JitterModel) {
        self.nodes[node.index()].jitter = jitter;
    }

    /// Which node owns a queue pair endpoint.
    pub fn qp_node(&self, qp: QpHandle) -> NodeId {
        self.conns[qp.conn as usize].nodes[qp.end as usize]
    }

    /// The peer node of a queue pair endpoint.
    pub fn qp_peer(&self, qp: QpHandle) -> NodeId {
        self.conns[qp.conn as usize].nodes[1 - qp.end as usize]
    }

    /// Creates a reliable connection between two distinct nodes, returning
    /// the local endpoint for each (first for `a`, second for `b`).
    ///
    /// Connecting to a crashed peer is allowed — the connection attempt
    /// behaves like the real handshake timing out: the queue pair exists
    /// but breaks after the fabric's failure-detection delay.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> (QpHandle, QpHandle) {
        assert_ne!(a, b, "cannot connect a node to itself");
        let dead_peer = self.nodes[a.index()].crashed || self.nodes[b.index()].crashed;
        let path_ab = self.topo.path(a.index(), b.index());
        let path_ba = self.topo.path(b.index(), a.index());
        let lat_ab = self.net.path_latency(&path_ab);
        let lat_ba = self.net.path_latency(&path_ba);
        let idx = u32::try_from(self.conns.len()).expect("too many connections");
        self.conns.push(Conn {
            nodes: [a, b],
            paths: [path_ab, path_ba],
            latency: [lat_ab, lat_ba],
            recvs: [VecDeque::new(), VecDeque::new()],
            dirs: [
                DirState {
                    rnr_remaining: self.params.rnr_retry_limit,
                    ..DirState::default()
                },
                DirState {
                    rnr_remaining: self.params.rnr_retry_limit,
                    ..DirState::default()
                },
            ],
            broken: false,
            pending_flush: Vec::new(),
        });
        self.nodes[a.index()].conns.push(idx);
        self.nodes[b.index()].conns.push(idx);
        if dead_peer {
            self.queue
                .schedule_in(self.params.failure_detect, Ev::BreakConn { conn: idx });
        }
        (
            QpHandle { conn: idx, end: 0 },
            QpHandle { conn: idx, end: 1 },
        )
    }

    /// Posts a two-sided send of `bytes` with immediate value `imm`.
    ///
    /// Sends on one queue pair execute in FIFO order. If `wait_for` is
    /// given, the send additionally waits (in hardware, CORE-Direct style)
    /// for that work request's completion.
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    pub fn post_send(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        bytes: u64,
        imm: u64,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        self.post(qp, wr_id, bytes, SendKind::TwoSided { imm }, wait_for)
    }

    /// Posts a one-sided write of `payload` into the peer's memory region
    /// identified by `tag`. The peer's software observes it as
    /// [`Delivery::WriteArrived`]; no posted receive is consumed.
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    pub fn post_write(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        tag: u64,
        payload: Bytes,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        let bytes = payload.len() as u64;
        self.post(qp, wr_id, bytes, SendKind::Write { tag, payload }, wait_for)
    }

    fn post(
        &mut self,
        qp: QpHandle,
        wr_id: WrId,
        bytes: u64,
        kind: SendKind,
        wait_for: Option<WaitSpec>,
    ) -> Result<(), VerbsError> {
        let node = self.qp_node(qp);
        self.check_postable(qp, node)?;
        self.recorder.record_at(
            self.queue.now().as_nanos(),
            trace::Scope::node(node.index() as u32),
            || match &kind {
                SendKind::TwoSided { .. } => trace::EventKind::SendPosted {
                    conn: qp.conn,
                    end: qp.end,
                    wr: wr_id.0,
                    bytes,
                },
                SendKind::Write { tag, .. } => trace::EventKind::WritePosted {
                    conn: qp.conn,
                    end: qp.end,
                    tag: *tag,
                    bytes,
                },
            },
        );
        let ready_at = self.charge_cpu(node, self.nodes[node.index()].profile.post_overhead);
        let conn = &mut self.conns[qp.conn as usize];
        conn.dirs[qp.end as usize].queue.push_back(PendingSend {
            wr_id,
            bytes,
            kind,
            wait_for,
            ready_at,
        });
        self.queue.schedule_at(
            ready_at,
            Ev::Kick {
                conn: qp.conn,
                dir: qp.end,
            },
        );
        Ok(())
    }

    /// Posts a receive of capacity `max_len`. Receives are consumed in
    /// order by incoming two-sided sends; an incoming send larger than the
    /// matched receive breaks the connection (the RDMA local-length
    /// error).
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the local node crashed.
    pub fn post_recv(&mut self, qp: QpHandle, wr_id: WrId, max_len: u64) -> Result<(), VerbsError> {
        let node = self.qp_node(qp);
        self.check_postable(qp, node)?;
        self.recorder.record_at(
            self.queue.now().as_nanos(),
            trace::Scope::node(node.index() as u32),
            || trace::EventKind::RecvPosted {
                conn: qp.conn,
                end: qp.end,
                wr: wr_id.0,
            },
        );
        let ready_at = self.charge_cpu(node, self.nodes[node.index()].profile.post_overhead);
        let conn = &mut self.conns[qp.conn as usize];
        conn.recvs[qp.end as usize].push_back((wr_id, max_len));
        // A sender blocked on receiver-not-ready can now proceed: kick the
        // opposite direction once the post is effective.
        self.queue.schedule_at(
            ready_at,
            Ev::Kick {
                conn: qp.conn,
                dir: 1 - qp.end,
            },
        );
        Ok(())
    }

    fn check_postable(&self, qp: QpHandle, node: NodeId) -> Result<(), VerbsError> {
        if self.nodes[node.index()].crashed {
            return Err(VerbsError::NodeCrashed);
        }
        if self.conns[qp.conn as usize].broken {
            return Err(VerbsError::QpBroken);
        }
        Ok(())
    }

    /// Schedules a driver timer on `node` after `delay`; fires as
    /// [`Delivery::Timer`] with `token`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.queue.schedule_in(
            delay,
            Ev::Deliver {
                node,
                delivery: Delivery::Timer { token },
            },
        );
    }

    /// Charges `dur` of software work to `node` (e.g. a buffer allocation
    /// or memory copy on the critical path). Subsequent posts and
    /// deliveries on this node are pushed back accordingly.
    pub fn consume_cpu(&mut self, node: NodeId, dur: SimDuration) {
        self.charge_cpu(node, dur);
    }

    /// Serialises `dur` of CPU on the node's single core; returns the
    /// instant the work finishes.
    fn charge_cpu(&mut self, node: NodeId, dur: SimDuration) -> SimTime {
        let now = self.queue.now();
        let n = &mut self.nodes[node.index()];
        let start = if n.cpu_free_at > now {
            n.cpu_free_at
        } else {
            now
        };
        n.cpu_free_at = start + dur;
        n.meter.record(dur);
        n.cpu_free_at
    }

    /// Crashes a node: all its connections break; peers learn after the
    /// fabric's failure-detection delay; the node receives nothing further.
    pub fn crash(&mut self, node: NodeId) {
        let now = self.queue.now();
        if self.nodes[node.index()].crashed {
            return;
        }
        self.nodes[node.index()].crashed = true;
        self.recorder.record_at(
            now.as_nanos(),
            trace::Scope::node(node.index() as u32),
            || trace::EventKind::NodeCrashed,
        );
        let conns = self.nodes[node.index()].conns.clone();
        for c in conns {
            if self.conns[c as usize].broken {
                continue;
            }
            // The wire goes quiet immediately...
            for dir in 0..2 {
                if let Some((flow, send, claimed_recv)) =
                    self.conns[c as usize].dirs[dir].inflight.take()
                {
                    self.inflight_index.remove(&flow);
                    self.net.abort_flow(now, flow);
                    // Remember the torn-off WRs so the eventual break
                    // flushes them as error completions.
                    let conn = &mut self.conns[c as usize];
                    conn.pending_flush.push((dir as u8, send.wr_id, false));
                    if let Some(wr) = claimed_recv {
                        conn.pending_flush.push((1 - dir as u8, wr, true));
                    }
                }
            }
            self.net_stale = true;
            // ...but the peer only notices after the NIC timeout.
            self.queue
                .schedule_in(self.params.failure_detect, Ev::BreakConn { conn: c });
        }
    }

    /// Whether a node has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[node.index()].crashed
    }

    /// Per-node CPU usage summary.
    pub fn cpu_report(&self, node: NodeId) -> CpuReport {
        let n = &self.nodes[node.index()];
        CpuReport {
            handling: n.meter.busy(),
            polling: n.poll_busy,
            mode: n.mode,
        }
    }

    /// Runs the fabric forward and returns the next software-visible
    /// delivery, or `None` when the simulation has quiesced.
    pub fn advance(&mut self) -> Option<(SimTime, NodeId, Delivery)> {
        if self.scheduler.is_some() {
            return self.advance_scheduled();
        }
        loop {
            if self.net_stale {
                // Same-instant coalescing: while further events share the
                // current instant, keep deferring the NetWake re-aim — and
                // the rate recomputation forced through
                // [`FlowNet::next_completion`] — so a burst of k flow
                // changes at one instant costs one reallocation instead of
                // k. Safe because every allocator-managed flow is larger
                // than [`TINY_BYPASS_BYTES`] and thus never completes at
                // the instant it started, and no virtual time passes while
                // the changes are pending, so the batched fill is
                // bit-identical to k sequential same-instant fills.
                // Skipped when a flight recorder is attached: traces pin
                // every intermediate rate-change event.
                if self.recorder.is_enabled() || self.queue.peek_time() != Some(self.queue.now()) {
                    self.net_stale = false;
                    self.resync_net();
                }
            }
            let (t, ev) = self.queue.pop()?;
            self.stats.events += 1;
            // Keep the shared trace clock at the instant being
            // processed; everything recorded while handling this event
            // (including by protocol engines fed from it) stamps `t`.
            self.recorder.set_now(t.as_nanos());
            match ev {
                Ev::Deliver { node, delivery } => {
                    if let Some(out) = self.deliver_or_defer(t, node, delivery) {
                        return Some(out);
                    }
                }
                internal => self.handle_internal(t, internal),
            }
        }
    }

    /// Handles one internal (hardware-level) event.
    fn handle_internal(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::NetWake => {
                self.net_wake = None;
                self.process_due_flows(t);
                self.net_stale = true;
            }
            Ev::Kick { conn, dir } => self.kick(conn, dir),
            Ev::RnrRetry { conn, dir, epoch } => self.rnr_retry(conn, dir, epoch),
            Ev::HwComplete {
                conn,
                dir,
                side,
                wr,
            } => self.hw_complete(t, conn, dir, side, wr),
            Ev::BreakConn { conn } => self.break_conn(conn),
            Ev::Deliver { .. } => unreachable!("deliveries are not internal events"),
        }
    }

    /// Crash/busy filtering plus the CPU charge for a popped delivery;
    /// returns the delivery if the node's software observes it now.
    fn deliver_or_defer(
        &mut self,
        t: SimTime,
        node: NodeId,
        delivery: Delivery,
    ) -> Option<(SimTime, NodeId, Delivery)> {
        let n = &mut self.nodes[node.index()];
        if n.crashed {
            return None;
        }
        if n.cpu_free_at > t {
            // Software is busy; the completion waits.
            let at = n.cpu_free_at;
            self.stats.cpu_requeues += 1;
            self.queue.schedule_at(at, Ev::Deliver { node, delivery });
            return None;
        }
        let overhead = n.profile.completion_overhead;
        self.charge_cpu(node, overhead);
        Some((t, node, delivery))
    }

    /// Summarises a pending delivery for the scheduler.
    fn candidate(seq: u64, node: NodeId, delivery: &Delivery) -> crate::sched::Candidate {
        use crate::sched::CandidateKind as K;
        let (conn, kind) = match delivery {
            // A corrupted receive races like any other receive
            // completion; the payload's fate is already decided.
            Delivery::RecvDone { qp, .. } | Delivery::RecvCorrupted { qp, .. } => {
                (Some(qp.conn), K::Recv)
            }
            Delivery::SendDone { qp, .. } => (Some(qp.conn), K::Send),
            Delivery::WriteDone { qp, .. } => (Some(qp.conn), K::WriteDone),
            Delivery::WriteArrived { qp, tag, .. } => {
                (Some(qp.conn), K::WriteArrived { tag: *tag })
            }
            Delivery::WrFlushed { qp, .. } => (Some(qp.conn), K::Flushed),
            Delivery::QpBroken { qp } => (Some(qp.conn), K::Broken),
            Delivery::Timer { token } => (None, K::Timer { token: *token }),
        };
        crate::sched::Candidate {
            seq,
            node: node.index() as u32,
            conn,
            kind,
        }
    }

    /// [`Fabric::advance`] under a controlled scheduler: internal
    /// hardware events at the due instant are drained eagerly, crashed
    /// and CPU-busy deliveries are filtered deterministically, and any
    /// remaining same-instant race between two or more enabled
    /// deliveries becomes a choice point answered by the scheduler.
    fn advance_scheduled(&mut self) -> Option<(SimTime, NodeId, Delivery)> {
        enum Step {
            /// Run an internal hardware event.
            Run(u64),
            /// Discard a delivery to a crashed node.
            Discard(u64),
            /// Requeue a delivery whose node's CPU is busy.
            Requeue(u64),
            /// Offer the enabled deliveries (possibly just one).
            Offer(Vec<crate::sched::Candidate>),
        }
        loop {
            if self.net_stale {
                // Re-aim eagerly (as with a recorder attached): deferred
                // re-aims would make the due set visible to the scheduler
                // depend on coalescing internals rather than on protocol
                // state.
                self.net_stale = false;
                self.resync_net();
            }
            let t = self.queue.peek_time()?;
            let step = {
                let due = self.queue.peek_due();
                let mut cands = Vec::new();
                let mut step = None;
                for (seq, ev) in due {
                    match ev {
                        Ev::Deliver { node, delivery } => {
                            let n = &self.nodes[node.index()];
                            if n.crashed {
                                step = Some(Step::Discard(seq));
                                break;
                            }
                            if n.cpu_free_at > t {
                                step = Some(Step::Requeue(seq));
                                break;
                            }
                            cands.push(Self::candidate(seq, *node, delivery));
                        }
                        _ => {
                            // Hardware progress at an instant commutes
                            // with software observation order; drain it
                            // before offering any choice.
                            step = Some(Step::Run(seq));
                            break;
                        }
                    }
                }
                step.unwrap_or(Step::Offer(cands))
            };
            match step {
                Step::Run(seq) => {
                    let (t, ev) = self.queue.pop_seq(seq).expect("due event vanished");
                    self.stats.events += 1;
                    self.recorder.set_now(t.as_nanos());
                    self.handle_internal(t, ev);
                }
                Step::Discard(seq) => {
                    let _ = self.queue.pop_seq(seq).expect("due event vanished");
                    self.stats.events += 1;
                }
                Step::Requeue(seq) => {
                    let (_, ev) = self.queue.pop_seq(seq).expect("due event vanished");
                    self.stats.events += 1;
                    let Ev::Deliver { node, delivery } = ev else {
                        unreachable!("requeue step only selects deliveries");
                    };
                    let at = self.nodes[node.index()].cpu_free_at;
                    self.stats.cpu_requeues += 1;
                    self.queue.schedule_at(at, Ev::Deliver { node, delivery });
                }
                Step::Offer(cands) => {
                    debug_assert!(!cands.is_empty(), "due instant with no events");
                    let idx = if cands.len() == 1 {
                        0
                    } else {
                        let sched = self.scheduler.clone().expect("scheduled mode");
                        crate::sched::pick(
                            &sched,
                            &crate::sched::ChoicePoint {
                                time_ns: t.as_nanos(),
                                kind: crate::sched::PointKind::Delivery,
                                candidates: &cands,
                            },
                        )
                    };
                    let (t, ev) = self
                        .queue
                        .pop_seq(cands[idx].seq)
                        .expect("chosen event vanished");
                    self.stats.events += 1;
                    self.recorder.set_now(t.as_nanos());
                    let Ev::Deliver { node, delivery } = ev else {
                        unreachable!("candidates are deliveries");
                    };
                    let overhead = self.nodes[node.index()].profile.completion_overhead;
                    self.charge_cpu(node, overhead);
                    return Some((t, node, delivery));
                }
            }
        }
    }

    /// Completes every flow due at or before `now`. Uses the flow net's
    /// removal-tolerant due query, so a batch of same-instant completions
    /// is retired under one deferred rate recomputation; anything that
    /// became due only under the post-batch rates is caught by the
    /// follow-up NetWake re-aim (still at `now`).
    fn process_due_flows(&mut self, now: SimTime) {
        while let Some((_, flow)) = self.net.next_due(now) {
            let path = self.net.complete_flow(now, flow);
            let Some((conn_idx, dir)) = self.find_inflight(flow) else {
                continue;
            };
            let conn = &mut self.conns[conn_idx as usize];
            let (_, send, claimed_recv) = conn.dirs[dir as usize]
                .inflight
                .take()
                .expect("inflight send vanished");
            let latency = conn.latency[dir as usize];
            let nic_op = self.params.nic_op_overhead;
            // The wire fault model gets one verdict per traversal. Note
            // a dropped two-sided send already consumed its claimed
            // receive at flow start — exactly like a real RC NIC, whose
            // RQE is gone once the first packet matches it; software
            // above sees one fewer receive completion, never an RNR.
            let outcome = self.fault_outcome(now, &path, conn_idx, dir);
            // Receiver-side hardware completion: one-way latency + NIC
            // processing after the last byte left the sender.
            let recv_wr = match (&send.kind, outcome) {
                (_, simnet::FaultOutcome::Drop) => None,
                (SendKind::TwoSided { imm }, simnet::FaultOutcome::Deliver) => {
                    Some(CompletedWr::Recv {
                        wr_id: claimed_recv.expect("two-sided send without claimed recv"),
                        len: send.bytes,
                        imm: *imm,
                    })
                }
                (SendKind::TwoSided { imm }, simnet::FaultOutcome::Corrupt) => {
                    Some(CompletedWr::RecvCorrupt {
                        wr_id: claimed_recv.expect("two-sided send without claimed recv"),
                        len: send.bytes,
                        imm: *imm,
                    })
                }
                (SendKind::Write { tag, payload }, simnet::FaultOutcome::Deliver) => {
                    Some(CompletedWr::WriteRemote {
                        tag: *tag,
                        payload: payload.clone(),
                    })
                }
                // A corrupted one-sided write never surfaces: the
                // target's software checks the region's integrity and
                // ignores garbage, which is indistinguishable from the
                // write not having landed.
                (SendKind::Write { .. }, simnet::FaultOutcome::Corrupt) => None,
            };
            if outcome != simnet::FaultOutcome::Deliver {
                let dropped = outcome == simnet::FaultOutcome::Drop;
                if dropped {
                    self.stats.payload_drops += 1;
                } else {
                    self.stats.payload_corruptions += 1;
                }
                let receiver = self.conns[conn_idx as usize].nodes[1 - dir as usize];
                let imm = match &send.kind {
                    SendKind::TwoSided { imm } => *imm,
                    SendKind::Write { .. } => 0,
                };
                self.recorder.record_at(
                    now.as_nanos(),
                    trace::Scope::node(receiver.index() as u32),
                    || {
                        let (conn, end, wr) = (conn_idx, 1 - dir, send.wr_id.0);
                        if dropped {
                            trace::EventKind::PayloadDropped { conn, end, wr, imm }
                        } else {
                            trace::EventKind::PayloadCorrupted { conn, end, wr, imm }
                        }
                    },
                );
            }
            if let Some(recv_wr) = recv_wr {
                self.queue.schedule_at(
                    now + latency + nic_op,
                    Ev::HwComplete {
                        conn: conn_idx,
                        dir,
                        side: Side::Receiver,
                        wr: recv_wr,
                    },
                );
            }
            // Sender-side completion: the hardware ack makes the round trip.
            let send_wr = match &send.kind {
                SendKind::TwoSided { .. } => CompletedWr::Send { wr_id: send.wr_id },
                SendKind::Write { .. } => CompletedWr::WriteLocal { wr_id: send.wr_id },
            };
            self.queue.schedule_at(
                now + latency + latency + nic_op,
                Ev::HwComplete {
                    conn: conn_idx,
                    dir,
                    side: Side::Sender,
                    wr: send_wr,
                },
            );
            // The wire is free: start the next queued send.
            self.kick(conn_idx, dir);
        }
    }

    fn find_inflight(&mut self, flow: FlowId) -> Option<(u32, u8)> {
        self.stats.inflight_scans += 1;
        self.inflight_index.remove(&flow)
    }

    /// Decides the fate of one completed transfer: a scheduler with
    /// loss-choice budget gets an explicit deliver-or-drop choice
    /// point; otherwise the fault profile samples; otherwise (the
    /// lossless default) the payload is delivered.
    fn fault_outcome(
        &mut self,
        now: SimTime,
        path: &[LinkId],
        conn_idx: u32,
        dir: u8,
    ) -> simnet::FaultOutcome {
        use simnet::FaultOutcome as O;
        if self.loss_choices > 0 {
            if let Some(sched) = self.scheduler.clone() {
                self.loss_choices -= 1;
                let receiver = self.conns[conn_idx as usize].nodes[1 - dir as usize];
                let cand = |i, drop| crate::sched::Candidate {
                    seq: i,
                    node: receiver.index() as u32,
                    conn: Some(conn_idx),
                    kind: crate::sched::CandidateKind::Loss { drop },
                };
                let cands = [cand(0, false), cand(1, true)];
                let idx = crate::sched::pick(
                    &sched,
                    &crate::sched::ChoicePoint {
                        time_ns: now.as_nanos(),
                        kind: crate::sched::PointKind::LossSite,
                        candidates: &cands,
                    },
                );
                return if idx == 1 { O::Drop } else { O::Deliver };
            }
        }
        match &mut self.faults {
            Some(f) => f.sample(path),
            None => O::Deliver,
        }
    }

    /// Attempts to start the head-of-line send on `(conn, dir)`.
    fn kick(&mut self, conn_idx: u32, dir: u8) {
        self.stats.kicks += 1;
        enum Decision {
            Nothing,
            ArmRnr { epoch: u64 },
            LengthError,
            Start,
        }
        let now = self.queue.now();
        let decision = {
            let conn = &self.conns[conn_idx as usize];
            // A crashed endpoint means the wire is already dead even if the
            // survivor has not yet been told; nothing new may start.
            if self.nodes[conn.nodes[0].index()].crashed
                || self.nodes[conn.nodes[1].index()].crashed
            {
                return;
            }
            let conn = &mut self.conns[conn_idx as usize];
            if conn.broken || conn.dirs[dir as usize].inflight.is_some() {
                return;
            }
            let Some(head) = conn.dirs[dir as usize].queue.front() else {
                return;
            };
            if head.ready_at > now {
                // A Kick is already scheduled at ready_at by post().
                return;
            }
            // Cross-channel dependency: the send waits in hardware until
            // the named WR completes; hw_complete() re-kicks us.
            let waiting = if let Some(wait) = &head.wait_for {
                let sender = conn.nodes[dir as usize];
                let key = (wait.qp.conn, wait.qp.end, wait.wr_id.0);
                !self.nodes[sender.index()].hw_completed.contains(&key)
            } else {
                false
            };
            let conn = &mut self.conns[conn_idx as usize];
            if waiting {
                Decision::Nothing
            } else if matches!(
                conn.dirs[dir as usize].queue.front().unwrap().kind,
                SendKind::TwoSided { .. }
            ) {
                let receiver_end = 1 - dir as usize;
                match conn.recvs[receiver_end].front().copied() {
                    Some((_, max_len)) => {
                        if conn.dirs[dir as usize].queue.front().unwrap().bytes > max_len {
                            Decision::LengthError
                        } else {
                            Decision::Start
                        }
                    }
                    None => {
                        let d = &mut conn.dirs[dir as usize];
                        if d.rnr_armed {
                            Decision::Nothing
                        } else {
                            d.rnr_armed = true;
                            self.stats.rnr_arms += 1;
                            Decision::ArmRnr { epoch: d.rnr_epoch }
                        }
                    }
                }
            } else {
                Decision::Start
            }
        };
        match decision {
            Decision::Nothing => {}
            Decision::ArmRnr { epoch } => {
                let sender = self.conns[conn_idx as usize].nodes[dir as usize];
                self.recorder.record_at(
                    now.as_nanos(),
                    trace::Scope::node(sender.index() as u32),
                    || trace::EventKind::RnrArmed {
                        conn: conn_idx,
                        dir,
                    },
                );
                self.queue.schedule_in(
                    self.params.rnr_timer,
                    Ev::RnrRetry {
                        conn: conn_idx,
                        dir,
                        epoch,
                    },
                );
            }
            Decision::LengthError => self.break_conn(conn_idx),
            Decision::Start
                if self.conns[conn_idx as usize].dirs[dir as usize]
                    .queue
                    .front()
                    .expect("head exists")
                    .bytes
                    <= TINY_BYPASS_BYTES =>
            {
                // Control-sized transfers (ready-for-block notices, SST
                // counters) occupy the wire for well under a nanosecond at
                // these link speeds; deliver them at pure latency instead
                // of churning the bandwidth allocator.
                let retry_limit = self.params.rnr_retry_limit;
                let conn = &mut self.conns[conn_idx as usize];
                let two_sided = matches!(
                    conn.dirs[dir as usize].queue.front().unwrap().kind,
                    SendKind::TwoSided { .. }
                );
                let claimed_recv = if two_sided {
                    conn.recvs[1 - dir as usize].pop_front().map(|(wr, _)| wr)
                } else {
                    None
                };
                let d = &mut conn.dirs[dir as usize];
                d.rnr_armed = false;
                d.rnr_epoch += 1;
                d.rnr_remaining = retry_limit;
                let send = d.queue.pop_front().expect("head vanished");
                let latency = conn.latency[dir as usize];
                let nic_op = self.params.nic_op_overhead;
                let recv_wr = match &send.kind {
                    SendKind::TwoSided { imm } => CompletedWr::Recv {
                        wr_id: claimed_recv.expect("two-sided send without claimed recv"),
                        len: send.bytes,
                        imm: *imm,
                    },
                    SendKind::Write { tag, payload } => CompletedWr::WriteRemote {
                        tag: *tag,
                        payload: payload.clone(),
                    },
                };
                let send_wr = match &send.kind {
                    SendKind::TwoSided { .. } => CompletedWr::Send { wr_id: send.wr_id },
                    SendKind::Write { .. } => CompletedWr::WriteLocal { wr_id: send.wr_id },
                };
                self.queue.schedule_at(
                    now + latency + nic_op,
                    Ev::HwComplete {
                        conn: conn_idx,
                        dir,
                        side: Side::Receiver,
                        wr: recv_wr,
                    },
                );
                self.queue.schedule_at(
                    now + latency + latency + nic_op,
                    Ev::HwComplete {
                        conn: conn_idx,
                        dir,
                        side: Side::Sender,
                        wr: send_wr,
                    },
                );
                // The wire was barely touched: the next queued send may
                // start immediately.
                self.kick(conn_idx, dir);
            }
            Decision::Start => {
                let retry_limit = self.params.rnr_retry_limit;
                let conn = &mut self.conns[conn_idx as usize];
                let two_sided = matches!(
                    conn.dirs[dir as usize].queue.front().unwrap().kind,
                    SendKind::TwoSided { .. }
                );
                let claimed_recv = if two_sided {
                    conn.recvs[1 - dir as usize].pop_front().map(|(wr, _)| wr)
                } else {
                    None
                };
                let path = conn.paths[dir as usize].clone();
                let d = &mut conn.dirs[dir as usize];
                // Starting successfully disarms any pending RNR countdown.
                d.rnr_armed = false;
                d.rnr_epoch += 1;
                d.rnr_remaining = retry_limit;
                let send = d.queue.pop_front().expect("head vanished");
                let bytes = send.bytes as f64;
                let flow = self.net.start_flow(now, path, bytes);
                self.inflight_index.insert(flow, (conn_idx, dir));
                self.conns[conn_idx as usize].dirs[dir as usize].inflight =
                    Some((flow, send, claimed_recv));
                self.net_stale = true;
            }
        }
    }

    fn rnr_retry(&mut self, conn_idx: u32, dir: u8, epoch: u64) {
        let exhausted = {
            let conn = &mut self.conns[conn_idx as usize];
            let d = &mut conn.dirs[dir as usize];
            if conn.broken || !d.rnr_armed || d.rnr_epoch != epoch {
                return;
            }
            if d.rnr_remaining == 0 {
                true
            } else {
                d.rnr_remaining -= 1;
                // Retry now: if a receive appeared, kick() starts the
                // transfer and disarms; otherwise re-arm below.
                d.rnr_armed = false;
                d.rnr_epoch += 1;
                false
            }
        };
        if exhausted {
            self.break_conn(conn_idx);
            return;
        }
        self.kick(conn_idx, dir);
        let rearm = {
            let conn = &self.conns[conn_idx as usize];
            let d = &conn.dirs[dir as usize];
            !conn.broken && d.inflight.is_none() && !d.queue.is_empty() && !d.rnr_armed
        };
        if rearm {
            let conn = &mut self.conns[conn_idx as usize];
            let d = &mut conn.dirs[dir as usize];
            d.rnr_armed = true;
            let epoch = d.rnr_epoch;
            self.queue.schedule_in(
                self.params.rnr_timer,
                Ev::RnrRetry {
                    conn: conn_idx,
                    dir,
                    epoch,
                },
            );
        }
    }

    /// Registers a hardware completion: resolves cross-channel
    /// dependencies, then forwards it to software with the node's
    /// completion-mode delay.
    fn hw_complete(&mut self, t: SimTime, conn_idx: u32, dir: u8, side: Side, wr: CompletedWr) {
        let conn = &self.conns[conn_idx as usize];
        if conn.broken {
            return;
        }
        let (node, end) = match side {
            Side::Sender => (conn.nodes[dir as usize], dir),
            Side::Receiver => (conn.nodes[1 - dir as usize], 1 - dir),
        };
        if self.nodes[node.index()].crashed {
            return;
        }
        self.recorder.record_at(
            t.as_nanos(),
            trace::Scope::node(node.index() as u32),
            || match &wr {
                CompletedWr::Send { wr_id } | CompletedWr::WriteLocal { wr_id } => {
                    trace::EventKind::WrCompleted {
                        conn: conn_idx,
                        end,
                        wr: wr_id.0,
                        recv: false,
                    }
                }
                CompletedWr::Recv { wr_id, .. } | CompletedWr::RecvCorrupt { wr_id, .. } => {
                    trace::EventKind::WrCompleted {
                        conn: conn_idx,
                        end,
                        wr: wr_id.0,
                        recv: true,
                    }
                }
                CompletedWr::WriteRemote { tag, .. } => trace::EventKind::WriteDelivered {
                    conn: conn_idx,
                    end,
                    tag: *tag,
                },
            },
        );
        // Record for cross-channel waiters, then give all of this node's
        // connections a chance to release dependent sends.
        let dep_key = match &wr {
            CompletedWr::Send { wr_id } | CompletedWr::WriteLocal { wr_id } => {
                Some((conn_idx, end, wr_id.0))
            }
            CompletedWr::Recv { wr_id, .. } | CompletedWr::RecvCorrupt { wr_id, .. } => {
                Some((conn_idx, end, wr_id.0))
            }
            CompletedWr::WriteRemote { .. } => None,
        };
        if let Some(key) = dep_key {
            self.nodes[node.index()].hw_completed.insert(key);
            let mut conns = std::mem::take(&mut self.conn_scratch);
            conns.clear();
            conns.extend_from_slice(&self.nodes[node.index()].conns);
            for &c in &conns {
                for d in 0..2u8 {
                    if self.conns[c as usize].nodes[d as usize] == node {
                        self.kick(c, d);
                    }
                }
            }
            self.conn_scratch = conns;
        }
        let qp = QpHandle {
            conn: conn_idx,
            end,
        };
        let delivery = match wr {
            CompletedWr::Send { wr_id } => Delivery::SendDone { qp, wr_id },
            CompletedWr::Recv { wr_id, len, imm } => Delivery::RecvDone {
                qp,
                wr_id,
                len,
                imm,
            },
            CompletedWr::RecvCorrupt { wr_id, len, imm } => Delivery::RecvCorrupted {
                qp,
                wr_id,
                len,
                imm,
            },
            CompletedWr::WriteLocal { wr_id } => Delivery::WriteDone { qp, wr_id },
            CompletedWr::WriteRemote { tag, payload } => {
                Delivery::WriteArrived { qp, tag, payload }
            }
        };
        // One-sided writes are observed by memory polling, not via the
        // completion queue, so they skip interrupt wakeup latency.
        let visible = if matches!(delivery, Delivery::WriteArrived { .. }) {
            t
        } else {
            t + self.completion_delay(node, t)
        };
        let jitter = self.nodes[node.index()].jitter.sample();
        self.queue
            .schedule_at(visible + jitter, Ev::Deliver { node, delivery });
    }

    /// Completion-mode signalling delay, with hybrid poll-window
    /// bookkeeping.
    fn completion_delay(&mut self, node: NodeId, hw_time: SimTime) -> SimDuration {
        let n = &mut self.nodes[node.index()];
        match n.mode {
            CompletionMode::Polling => SimDuration::ZERO,
            CompletionMode::Interrupt => n.profile.interrupt_wakeup,
            CompletionMode::Hybrid => {
                let delay = if hw_time <= n.poll_until {
                    SimDuration::ZERO
                } else {
                    n.profile.interrupt_wakeup
                };
                let visible = hw_time + delay;
                let window_end = visible + n.profile.poll_window;
                // Accumulate the (union of) poll-window busy time.
                let extend_from = if n.poll_until > visible {
                    n.poll_until
                } else {
                    visible
                };
                n.poll_busy += window_end.saturating_since(extend_from);
                n.poll_until = window_end;
                delay
            }
        }
    }

    /// Forcibly breaks the connection a queue pair belongs to, as if the
    /// link failed: outstanding work requests are flushed as
    /// [`Delivery::WrFlushed`] error completions and both surviving
    /// endpoints receive [`Delivery::QpBroken`]. Idempotent. Drivers use
    /// this for deliberate teardown (epoch reconfiguration) and fault
    /// injection (link flaps).
    pub fn break_qp(&mut self, qp: QpHandle) {
        self.break_conn(qp.conn);
    }

    /// Breaks a connection: aborts in-flight transfers, flushes all
    /// outstanding work requests as error completions, and notifies both
    /// (surviving) endpoints.
    fn break_conn(&mut self, conn_idx: u32) {
        let now = self.queue.now();
        if self.conns[conn_idx as usize].broken {
            return;
        }
        self.conns[conn_idx as usize].broken = true;
        // Collect every outstanding WR per endpoint, in posting order:
        // WRs torn off earlier (peer crash), the in-flight op with its
        // claimed receive, queued sends, then unconsumed posted receives.
        let mut flushes: Vec<(u8, WrId, bool)> =
            std::mem::take(&mut self.conns[conn_idx as usize].pending_flush);
        for dir in 0..2 {
            if let Some((flow, send, claimed_recv)) =
                self.conns[conn_idx as usize].dirs[dir].inflight.take()
            {
                self.inflight_index.remove(&flow);
                self.net.abort_flow(now, flow);
                flushes.push((dir as u8, send.wr_id, false));
                if let Some(wr) = claimed_recv {
                    flushes.push((1 - dir as u8, wr, true));
                }
            }
            for send in self.conns[conn_idx as usize].dirs[dir].queue.drain(..) {
                flushes.push((dir as u8, send.wr_id, false));
            }
            for (wr, _) in self.conns[conn_idx as usize].recvs[dir].drain(..) {
                flushes.push((dir as u8, wr, true));
            }
        }
        self.net_stale = true;
        self.recorder
            .record_at(now.as_nanos(), trace::Scope::none(), || {
                trace::EventKind::QpBroken { conn: conn_idx }
            });
        for end in 0..2u8 {
            let node = self.conns[conn_idx as usize].nodes[end as usize];
            if self.nodes[node.index()].crashed {
                continue;
            }
            let qp = QpHandle {
                conn: conn_idx,
                end,
            };
            // Flush errors drain through the CQ ahead of the break notice
            // (same instant, FIFO), mirroring IBV_WC_WR_FLUSH_ERR order.
            for &(_, wr_id, recv) in flushes.iter().filter(|&&(e, _, _)| e == end) {
                self.recorder.record_at(
                    now.as_nanos(),
                    trace::Scope::node(node.index() as u32),
                    || trace::EventKind::WrFlushed {
                        conn: conn_idx,
                        end,
                        wr: wr_id.0,
                        recv,
                    },
                );
                self.queue.schedule_at(
                    now,
                    Ev::Deliver {
                        node,
                        delivery: Delivery::WrFlushed { qp, wr_id, recv },
                    },
                );
            }
            self.queue.schedule_at(
                now,
                Ev::Deliver {
                    node,
                    delivery: Delivery::QpBroken { qp },
                },
            );
        }
    }

    /// Re-aims the single NetWake event at the earliest flow completion.
    fn resync_net(&mut self) {
        if let Some(tok) = self.net_wake.take() {
            self.queue.cancel(tok);
        }
        if let Some((t, _)) = self.net.next_completion() {
            let at = if t > self.queue.now() {
                t
            } else {
                self.queue.now()
            };
            self.net_wake = Some(self.queue.schedule_at(at, Ev::NetWake));
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        let r = self.net.realloc_stats();
        crate::perf::record(crate::perf::KernelPerf {
            fabrics: 1,
            events: self.stats.events,
            kicks: self.stats.kicks,
            realloc_count: r.count,
            realloc_nanos: r.nanos,
            flows_visited: r.flows_visited,
            heap_pushes: r.heap_pushes,
            rate_changes: r.rate_changes,
            full_reallocs: r.full,
            link_visits: r.link_visits,
            coalesced: r.coalesced,
            heap_compactions: r.heap_compactions,
            sim_nanos: self.queue.now().as_nanos(),
        });
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("now", &self.now())
            .field("nodes", &self.nodes.len())
            .field("conns", &self.conns.len())
            .finish()
    }
}
