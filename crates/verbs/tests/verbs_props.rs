//! Property-based tests of the simulated verbs semantics: RC ordering,
//! exactly-once completion accounting, and immediate fidelity under
//! random workloads.

use proptest::prelude::*;
use simnet::{FlowNet, HostProfile, SimDuration, Topology};
use verbs::{CompletionMode, Delivery, Fabric, FabricParams, NodeId, WrId};

fn fabric(n: usize) -> Fabric {
    let mut net = FlowNet::new();
    let topo = Topology::flat(&mut net, n, 25.0, SimDuration::from_micros(2));
    let mut f = Fabric::new(net, topo, FabricParams::default());
    for i in 0..n {
        f.set_completion_mode(NodeId(i as u32), CompletionMode::Polling);
        f.set_profile(NodeId(i as u32), HostProfile::default());
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random sends (with pre-posted receives) on one connection: receives
    /// complete in posting order, immediates are faithful, every send gets
    /// exactly one completion at each side.
    #[test]
    fn rc_is_fifo_and_exactly_once(sizes in prop::collection::vec(1u64..500_000, 1..30)) {
        let mut f = fabric(2);
        let (q0, q1) = f.connect(NodeId(0), NodeId(1));
        for (i, &s) in sizes.iter().enumerate() {
            f.post_recv(q1, WrId(i as u64), s).unwrap();
            f.post_send(q0, WrId(1000 + i as u64), s, i as u64, None).unwrap();
        }
        let mut recvs = Vec::new();
        let mut send_dones = 0usize;
        while let Some((_, node, d)) = f.advance() {
            match d {
                Delivery::RecvDone { wr_id, len, imm, .. } => {
                    prop_assert_eq!(node, NodeId(1));
                    recvs.push((wr_id.0, len, imm));
                }
                Delivery::SendDone { .. } => {
                    prop_assert_eq!(node, NodeId(0));
                    send_dones += 1;
                }
                other => prop_assert!(false, "unexpected delivery {other:?}"),
            }
        }
        prop_assert_eq!(send_dones, sizes.len());
        prop_assert_eq!(recvs.len(), sizes.len());
        for (i, &(wr, len, imm)) in recvs.iter().enumerate() {
            prop_assert_eq!(wr, i as u64, "receive order violated");
            prop_assert_eq!(len, sizes[i]);
            prop_assert_eq!(imm, i as u64, "immediate corrupted");
        }
    }

    /// Interleaved traffic over random pairs: total completions balance
    /// total posts, regardless of contention patterns.
    #[test]
    fn completions_balance_posts(
        ops in prop::collection::vec((0usize..4, 0usize..4, 1u64..200_000), 1..40)
    ) {
        let mut f = fabric(4);
        let mut qps = std::collections::BTreeMap::new();
        let mut posted = 0usize;
        for (i, &(a, b, size)) in ops.iter().enumerate() {
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let (qlo, qhi) = *qps.entry(key).or_insert_with(|| {
                f.connect(NodeId(key.0 as u32), NodeId(key.1 as u32))
            });
            let (qa, qb) = if a < b { (qlo, qhi) } else { (qhi, qlo) };
            f.post_recv(qb, WrId(i as u64), size).unwrap();
            f.post_send(qa, WrId(i as u64), size, 0, None).unwrap();
            posted += 1;
        }
        let mut recv_done = 0usize;
        let mut send_done = 0usize;
        while let Some((_, _, d)) = f.advance() {
            match d {
                Delivery::RecvDone { .. } => recv_done += 1,
                Delivery::SendDone { .. } => send_done += 1,
                _ => {}
            }
        }
        prop_assert_eq!(recv_done, posted);
        prop_assert_eq!(send_done, posted);
    }

    /// One-sided writes arrive exactly once, in order, with their payloads
    /// intact, and never consume receives.
    #[test]
    fn writes_preserve_payload_and_order(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..64), 1..20)
    ) {
        let mut f = fabric(2);
        let (q0, _q1) = f.connect(NodeId(0), NodeId(1));
        for (i, p) in payloads.iter().enumerate() {
            f.post_write(q0, WrId(i as u64), i as u64, bytes::Bytes::from(p.clone()), None)
                .unwrap();
        }
        let mut arrived = Vec::new();
        while let Some((_, node, d)) = f.advance() {
            if let Delivery::WriteArrived { tag, payload, .. } = d {
                prop_assert_eq!(node, NodeId(1));
                arrived.push((tag, payload.to_vec()));
            }
        }
        prop_assert_eq!(arrived.len(), payloads.len());
        for (i, (tag, p)) in arrived.iter().enumerate() {
            prop_assert_eq!(*tag, i as u64, "write order violated");
            prop_assert_eq!(p, &payloads[i], "payload corrupted");
        }
    }

    /// The simulation is deterministic: identical workloads produce
    /// identical delivery timelines.
    #[test]
    fn fabric_is_deterministic(sizes in prop::collection::vec(1u64..300_000, 1..16)) {
        let run = || {
            let mut f = fabric(3);
            let (q01, q10) = f.connect(NodeId(0), NodeId(1));
            let (q02, q20) = f.connect(NodeId(0), NodeId(2));
            let _ = (q10, q20);
            for (i, &s) in sizes.iter().enumerate() {
                let (qs, qr) = if i % 2 == 0 { (q01, q10) } else { (q02, q20) };
                f.post_recv(qr, WrId(i as u64), s).unwrap();
                f.post_send(qs, WrId(i as u64), s, 0, None).unwrap();
            }
            let mut log = Vec::new();
            while let Some((t, node, d)) = f.advance() {
                log.push((t.as_nanos(), node.0, format!("{d:?}")));
            }
            log
        };
        prop_assert_eq!(run(), run());
    }
}
